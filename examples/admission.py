"""Untrusted-input admission: the verify -> repair -> degrade ladder.

A solver compiled at width 1 (Theorem 4.5: compile once, solve many)
is handed progressively worse inputs: a clean path with a valid
decomposition, the same path with a corrupted decomposition (alien bag
elements, a broken connectedness run), a clique outside the width
envelope, and a structure whose facts escape its own domain.  The
admission layer repairs what it can, re-decomposes what it must,
serves the over-width clique by budgeted direct MSO evaluation, and
rejects only the genuinely unservable input -- with a machine-readable
report at every step.

Run:  python examples/admission.py
"""

from repro.admission import admit
from repro.core import CourcelleSolver, undirected_graph_filter
from repro.errors import AdmissionRejected
from repro.mso import formulas
from repro.structures import GRAPH_SIGNATURE, Graph, graph_to_structure
from repro.treewidth import RootedTree, TreeDecomposition, decompose_structure


def corrupted_copy(td):
    """A broken variant of a valid decomposition: an alien element in
    one bag, a connectedness run severed in the middle.  Built with
    the constructors bypassed -- they would (rightly) refuse."""
    tree = RootedTree.__new__(RootedTree)
    tree.root = td.tree.root
    tree._children = {n: list(c) for n, c in td.tree._children.items()}
    tree._parent = dict(td.tree._parent)
    tree._next_id = td.tree._next_id
    bad = TreeDecomposition.__new__(TreeDecomposition)
    bad.tree = tree
    bad.bags = dict(td.bags)
    nodes = sorted(bad.bags)
    bad.bags[nodes[0]] = bad.bags[nodes[0]] | {999}  # alien element
    middle = nodes[len(nodes) // 2]
    bad.bags[middle] = frozenset(list(bad.bags[middle])[:1])  # sever a run
    return bad


def show(title, report):
    print(f"  {title}")
    print(f"    verdict:    {report.verdict}")
    if report.violations:
        codes = sorted({v.code for v in report.violations})
        print(f"    violations: {', '.join(codes)}")
    if report.repairs:
        print(f"    repairs:    {', '.join(report.repairs)}")
    if report.degrade_reason:
        print(f"    degraded:   {report.degrade_reason}")
    print()


def main() -> None:
    solver = CourcelleSolver(
        formulas.has_neighbor("x"),
        GRAPH_SIGNATURE,
        width=1,
        free_var="x",
        structure_filter=undirected_graph_filter,
    )
    print("Compiled has_neighbor(x) at width 1.\n")

    # 1. clean input: the fast path, nothing touched
    path = graph_to_structure(Graph.path(6))
    td = decompose_structure(path)
    answer, report = solver.solve_admitted(path, td, policy="repair")
    show("path-6 with its valid decomposition", report)
    assert answer == frozenset(path.domain)

    # 2. corrupted decomposition: repaired in place, same answer
    answer, report = solver.solve_admitted(
        path, corrupted_copy(td), policy="repair"
    )
    show("path-6 with a corrupted decomposition", report)
    assert answer == frozenset(path.domain)

    # 3. over the width envelope: degrade to budgeted direct MSO eval
    clique = graph_to_structure(Graph.complete(4))
    answer, report = solver.solve_admitted(clique, policy="degrade")
    show("K4 (treewidth 3) through the width-1 program", report)
    assert answer == frozenset(clique.domain)

    # 4. unservable: facts escape the declared domain -> typed reject
    from repro.admission import RawStructure

    broken = RawStructure(GRAPH_SIGNATURE, [0, 1], {"e": [(0, 7), (7, 0)]})
    try:
        solver.solve_admitted(broken, policy="degrade")
    except AdmissionRejected as exc:
        show("edge to a vertex outside the domain", exc.report)
        print(f"    raised: {type(exc).__name__} "
              f"(still a ValueError: {isinstance(exc, ValueError)})")

    print("\nEvery input resolved: two served as-is or repaired, one")
    print("degraded, one rejected with a full report -- and the same")
    print("ladder guards SolverService workers (admission= on the")
    print("service or per request).")


if __name__ == "__main__":
    main()
