"""Database-design workflow: keys, primality, third normal form.

The paper's motivation for PRIMALITY (Section 2.1): "an efficient
algorithm for testing the primality of an attribute is crucial in
database design since it is an indispensable prerequisite for testing
if a schema is in third normal form."  This example runs that workflow
on a small order-management schema whose incidence graph has small
treewidth -- exactly the situation where the Figure 6 algorithm shines.

Run:  python examples/schema_design.py
"""

from repro.problems import prime_attributes_direct
from repro.structures import RelationalSchema, gaifman_graph
from repro.treewidth import decompose_structure, treewidth_exact


def main() -> None:
    # o=order, c=customer, n=customer name, p=product, q=quantity,
    # w=warehouse, s=shipping zone, t=tracking id
    schema = RelationalSchema.parse(
        "R = ocnpqwst;"
        " o -> c, c -> n, op -> q, p -> w, w -> s, o -> t, t -> o"
    )
    print("Order-management schema:")
    print(schema.describe())
    print()

    structure = schema.to_structure()
    print(f"Treewidth of the schema structure: "
          f"{treewidth_exact(gaifman_graph(structure))}")
    td = decompose_structure(structure)
    print(f"Decomposition used: {td}")
    print()

    keys = sorted("".join(sorted(k)) for k in schema.candidate_keys())
    print(f"Candidate keys: {keys}")

    primes = prime_attributes_direct(schema, td)
    print(f"Prime attributes (treewidth algorithm): {''.join(sorted(primes))}")
    assert primes == schema.prime_attributes_bruteforce()

    print()
    print("3NF check, FD by FD:")
    for f in schema.fds:
        if f.rhs in f.lhs:
            verdict = "trivial"
        elif schema.is_superkey(f.lhs):
            verdict = "lhs is a superkey"
        elif f.rhs in primes:
            verdict = "rhs is prime"
        else:
            verdict = "VIOLATES 3NF"
        print(f"  {f}: {verdict}")
    print()
    print(f"Schema in third normal form: {schema.is_third_normal_form()}")


if __name__ == "__main__":
    main()
