"""Quickstart: the paper's running example, end to end.

Builds the Example 2.1 schema, decomposes it (Example 2.2 / Figure 1:
treewidth 2), and answers the PRIMALITY question along every route the
library offers -- brute force, the Figure 6 dynamic program, the
Section 5.3 enumeration, the datalog-interpreted program, and direct
MSO evaluation of the Example 2.6 query.

Run:  python examples/quickstart.py
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.mso import evaluate, formulas
from repro.problems import (
    PrimalityDatalog,
    prime_attributes_direct,
    primality_direct,
)
from repro.structures import gaifman_graph, running_example
from repro.treewidth import decompose_structure, treewidth_exact


def main() -> None:
    schema = running_example()
    print("Schema (Example 2.1):")
    print(schema.describe())
    print()

    keys = sorted("".join(sorted(k)) for k in schema.candidate_keys())
    print(f"Candidate keys: {keys}  (the paper: abd and acd)")

    structure = schema.to_structure()
    print(f"As a tau-structure: {structure}")
    print(f"Exact treewidth: {treewidth_exact(gaifman_graph(structure))}"
          "  (Example 2.2: tw = 2)")
    td = decompose_structure(structure)
    print(f"Heuristic decomposition: {td}")
    print()

    print("PRIMALITY, attribute by attribute (Figure 6 dynamic program):")
    for attribute in schema.attributes:
        verdict = "prime" if primality_direct(schema, attribute, td) else "not prime"
        print(f"  {attribute}: {verdict}")
    print()

    primes = prime_attributes_direct(schema, td)
    print(f"All primes via the Section 5.3 enumeration: "
          f"{''.join(sorted(primes))}  (the paper: a, b, c, d)")

    datalog = PrimalityDatalog(schema)
    print(f"Datalog interpreter agrees on 'a': {datalog.decide('a', td)}")
    goal_directed = PrimalityDatalog(schema, backend="magic")
    print(f"Magic-set backend agrees on 'a': {goal_directed.decide('a', td)}"
          "  (see examples/evaluation_backends.py)")
    print(f"Datalog interpreter agrees on 'e': {not datalog.decide('e', td)}")

    phi = formulas.primality("x")
    print(f"MSO query of Example 2.6 on 'a': "
          f"{evaluate(structure, phi, {'x': 'a'})}")
    print(f"Brute force agrees: "
          f"{''.join(sorted(schema.prime_attributes_bruteforce()))}")


if __name__ == "__main__":
    main()
