"""Abduction as primality: the paper's closing application, runnable.

The conclusion relates PRIMALITY to the relevance problem of
propositional abduction over definite Horn theories.  This example
diagnoses a small device: given observed symptoms and a causal theory,
which hypotheses participate in some minimal explanation?  The
treewidth route answers through the extended Figure 6 program
(primality in a subschema); brute force confirms.

Run:  python examples/abduction_diagnosis.py
"""

from repro.problems import AbductionProblem


def main() -> None:
    problem = AbductionProblem.parse(
        "vars: power_fault pump_worn valve_stuck no_flow overheat alarm"
        " pressure_low;"
        " hyp: power_fault pump_worn valve_stuck;"
        " obs: alarm;"
        " power_fault -> no_flow;"
        " pump_worn -> pressure_low;"
        " valve_stuck -> pressure_low;"
        " pressure_low -> no_flow;"
        " no_flow -> overheat;"
        " overheat -> alarm"
    )
    print(f"Diagnosis problem: {problem}")
    print(f"Observed: {sorted(problem.manifestations)}")
    print(f"Hypotheses: {sorted(problem.hypotheses)}")
    print()

    print("Minimal explanations (brute force):")
    for explanation in problem.minimal_explanations():
        print(f"  {sorted(explanation)}")
    print()

    schema = problem.relevance_schema()
    print(f"Reduction schema: {schema}  "
          f"(|R| = {len(schema.attributes)}, |F| = {len(schema.fds)})")
    print()

    print("Relevance, hypothesis by hypothesis:")
    for hypothesis in sorted(problem.hypotheses):
        treewidth_route = problem.relevant(hypothesis)
        brute = problem.relevant_bruteforce(hypothesis)
        necessary = problem.necessary_bruteforce(hypothesis)
        assert treewidth_route == brute, "route disagreement!"
        tags = []
        if treewidth_route:
            tags.append("relevant")
        if necessary:
            tags.append("necessary")
        print(f"  {hypothesis:<14} {', '.join(tags) or 'irrelevant'}")


if __name__ == "__main__":
    main()
