"""Pluggable evaluation backends: naive, semi-naive (set-at-a-time and
tuple-at-a-time), and magic sets.

The engine evaluates any program through a named backend
(``repro.datalog.backends``).  This example runs single-source
reachability -- the query-driven workload where the difference is
asymptotic -- on all of them, shows the magic-set rewrite itself, and
demonstrates the compiled-program cache amortizing planning across
structures, which is exactly how Theorem 4.5 amortizes compilation
"over any number of structures".

Run:  python examples/evaluation_backends.py
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench import compare_backends, format_ms, format_table
from repro.datalog import (
    Database,
    ProgramCache,
    atom,
    const,
    magic_rewrite,
    parse_program,
    solve,
    var,
)

TC = parse_program(
    """
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
    """
)


def chain(n: int) -> Database:
    db = Database()
    for i in range(n - 1):
        db.add("edge", (i, i + 1))
    return db


def main() -> None:
    query = atom("path", const(0), var("Y"))

    print("The magic-set rewrite of transitive closure w.r.t.", query)
    print("-" * 60)
    print(magic_rewrite(TC, query).program)
    print()

    n = 80  # naive is cubic on this workload; keep the demo snappy
    print(f"Head-to-head on a {n}-node chain, query {query}:")
    rows = [
        [run.backend, run.facts_derived, run.rule_firings, format_ms(run.ms)]
        for run in compare_backends(TC, chain(n), query, repeat=2)
    ]
    print(format_table(["backend", "facts", "firings", "ms"], rows))
    print()

    print("Compiled-program cache across structures:")
    cache = ProgramCache()
    for size in (50, 100, 150):
        answers = solve(
            TC, chain(size), backend="magic", query=query, cache=cache
        )
        reached = len(answers.relation("path"))
        print(
            f"  chain({size:3}): {reached:3} reachable   "
            f"cache hits={cache.stats.hits} misses={cache.stats.misses}"
        )
    print("  (one miss compiles; every further structure reuses the plan)")


if __name__ == "__main__":
    main()
