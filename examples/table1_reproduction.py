"""Regenerate Table 1 (Section 6) and print it next to the paper's.

Every row of the paper's experiment: PRIMALITY at treewidth 3 with
#Att = 3 ... 93.  The MD column is the Figure 6 dynamic program, the
MD-datalog column the interpreted program, and the MONA stand-in is
budgeted naive MSO evaluation (DESIGN.md §5) whose '-' entries mirror
the paper's out-of-memory dashes.

Run:  python examples/table1_reproduction.py [--fast]
"""

import sys

from repro.bench import md_linearity, render_table1, run_table1


def main() -> None:
    fast = "--fast" in sys.argv
    rows = run_table1(
        max_rows=5 if fast else None,
        repeat=1 if fast else 3,
        include_datalog=not fast,
        mona_budget_steps=300_000 if fast else 3_000_000,
    )
    print(render_table1(rows))
    print()
    fit = md_linearity(rows)
    print(
        f"MD column linear fit vs #tn: slope {fit.slope:.3f} ms/node, "
        f"R^2 = {fit.r_squared:.3f}"
    )
    print(
        "Paper's claim: 'an essentially linear increase of the processing "
        "time with the size of the input' -- and no big hidden constant."
    )


if __name__ == "__main__":
    main()
