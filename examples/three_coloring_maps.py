"""3-Colorability on graph families (Section 5.1), with witnesses.

Checks several graph families with the Figure 5 program (datalog and
direct), extracts an explicit coloring where one exists, and verifies
it.  Also shows the fixed, data-independent program text.

Run:  python examples/three_coloring_maps.py
"""

import random

from repro.problems import (
    ThreeColoringDatalog,
    is_valid_coloring,
    random_partial_ktree,
    three_coloring_direct,
    three_coloring_program,
)
from repro.structures import Graph


def show(graph: Graph, name: str, solver: ThreeColoringDatalog) -> None:
    colorable, witness = three_coloring_direct(graph, want_witness=True)
    datalog_says = solver.decide(graph)
    assert datalog_says == colorable, "solver disagreement!"
    line = f"  {name:<24} n={graph.vertex_count():<4} m={graph.edge_count():<4}"
    if colorable:
        assert witness is not None and is_valid_coloring(graph, witness)
        sample = ", ".join(
            f"{v}={witness[v]}" for v in sorted(witness, key=repr)[:5]
        )
        print(f"{line} 3-colorable  e.g. {sample}, ...")
    else:
        print(f"{line} NOT 3-colorable")


def main() -> None:
    print("The Figure 5 program (fixed for every input):\n")
    print(three_coloring_program())
    print()

    solver = ThreeColoringDatalog()
    print("Families:")
    show(Graph.cycle(7), "odd cycle C7", solver)
    show(Graph.cycle(8), "even cycle C8", solver)
    show(Graph.complete(3), "triangle K3", solver)
    show(Graph.complete(4), "clique K4", solver)
    show(Graph.grid(4, 5), "grid 4x5", solver)

    wheel = Graph.cycle(5)
    for v in range(5):
        wheel.add_edge("hub", v)
    show(wheel, "odd wheel W5", solver)

    print("\nRandom partial 2-trees (bounded treewidth inputs):")
    rng = random.Random(2007)
    for i in range(4):
        graph, td = random_partial_ktree(rng, 30, 2, edge_probability=0.7)
        colorable, witness = three_coloring_direct(graph, td, want_witness=True)
        status = "3-colorable" if colorable else "NOT 3-colorable"
        print(f"  instance {i}: n=30 width<={td.width}  {status}")
        if witness is not None:
            assert is_valid_coloring(graph, witness)


if __name__ == "__main__":
    main()
