"""The Theorem 4.5 compiler in action: MSO query -> monadic datalog.

Compiles the unary query ``has_neighbor(x) = ∃y e(x, y)`` for
undirected graphs of treewidth 1, prints a sample of the generated
quasi-guarded monadic program, runs it on a tree via the Theorem 4.4
pipeline, and contrasts with the MSO-to-FTA route's state count.

Run:  python examples/mso_compile.py
"""

from repro.core import (
    ANSWER_PREDICATE,
    CourcelleSolver,
    undirected_graph_filter,
)
from repro.datalog import is_quasi_guarded
from repro.mso import formulas, query
from repro.structures import GRAPH_SIGNATURE, Graph, graph_to_structure


def main() -> None:
    phi = formulas.has_neighbor("x")
    print(f"Query: phi(x) = {phi}   (quantifier depth "
          f"{phi.quantifier_depth()})")
    print("Compiling for undirected graphs of treewidth 1 ...")
    solver = CourcelleSolver(
        phi,
        GRAPH_SIGNATURE,
        width=1,
        free_var="x",
        structure_filter=undirected_graph_filter,
    )
    compiled = solver.compiled
    print(f"  bottom-up types (Θ↑): {compiled.up_type_count}")
    print(f"  top-down types  (Θ↓): {compiled.down_type_count}")
    print(f"  datalog rules:        {len(compiled.program)}")
    print(f"  monadic:              {compiled.program.is_monadic()}")
    print(f"  quasi-guarded:        "
          f"{is_quasi_guarded(compiled.program, compiled.dependencies())}")
    print()

    print("A few generated rules (base case, transition, selection):")
    shown = {"leaf": None, "child1": None, ANSWER_PREDICATE: None}
    for rule in compiled.program.rules:
        if rule.head.predicate == ANSWER_PREDICATE and shown[ANSWER_PREDICATE] is None:
            shown[ANSWER_PREDICATE] = rule
        body_preds = {lit.atom.predicate for lit in rule.body}
        if "leaf" in body_preds and shown["leaf"] is None:
            shown["leaf"] = rule
        if "child1" in body_preds and shown["child1"] is None:
            shown["child1"] = rule
    for rule in shown.values():
        if rule is not None:
            print(f"  {rule}")
    print()

    caterpillar = Graph(range(8))
    for v in range(1, 6):
        caterpillar.add_edge(v - 1, v)
    # two isolated vertices: 6 and 7
    structure = graph_to_structure(caterpillar)
    answers = solver.query(structure)
    print(f"Answers on a path-with-isolated-vertices graph: "
          f"{sorted(answers, key=repr)}")
    print(f"Direct MSO evaluation agrees: "
          f"{answers == query(structure, phi, 'x')}")
    print()

    print("The MSO-to-FTA route on the same type space:")
    from repro.fta import build_type_automaton
    from repro.mso import ExistsInd, RelAtom

    # depth-1 sentence over the same filtered class
    sentence = ExistsInd("x", RelAtom("e", ("x", "x")))
    automaton = build_type_automaton(
        sentence, GRAPH_SIGNATURE, 1, structure_filter=undirected_graph_filter
    )
    print(f"  {automaton}")
    print("  (Unfiltered directed graphs blow past any practical budget --")
    print("   run benchmarks/bench_state_explosion.py for the numbers.)")


if __name__ == "__main__":
    main()
