"""The fault-injection harness: grammar, counters, determinism.

Pure-parent tests of :mod:`repro.service.faults` -- no service, no
processes.  The chaos suite (``test_chaos.py``) exercises the same
plans through a live :class:`~repro.service.SolverService`.
"""

import threading

import pytest

from repro.service import FAULTS_ENV, FaultPlan, FaultSpec


class TestGrammar:
    def test_minimal_spec(self):
        spec = FaultSpec.parse("crash@worker.solve")
        assert spec.action == "crash"
        assert spec.site == "worker.solve"
        assert spec.times == 1
        assert spec.skip == 0

    def test_full_spec(self):
        spec = FaultSpec.parse("slow@worker.solve:12.5ms*4+2")
        assert spec.delay_ms == 12.5
        assert spec.times == 4
        assert spec.skip == 2

    def test_inf_times(self):
        spec = FaultSpec.parse("drop@worker.result*inf")
        assert spec.times > 10**9

    def test_round_trip_through_str(self):
        for text in (
            "crash@worker.solve+1",
            "slow@worker.solve:50ms*3",
            "drop@worker.result*inf",
            "stall@collector.result:5ms",
        ):
            assert str(FaultSpec.parse(text)) == text

    def test_plan_parses_semicolon_separated_specs(self):
        plan = FaultPlan.parse(
            "crash@worker.solve+1; slow@worker.solve:50ms*3"
        )
        assert len(plan.specs) == 2
        assert bool(plan)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse("  ;  ")
        assert not FaultPlan()

    def test_from_env(self):
        assert FaultPlan.from_env({}).specs == ()
        plan = FaultPlan.from_env({FAULTS_ENV: "stall@collector.result:5ms"})
        assert plan.specs[0].site == "collector.result"

    @pytest.mark.parametrize(
        "bad",
        [
            "zap@worker.solve",  # unknown action
            "crash@nowhere",  # unknown site
            "crash@collector.result",  # crash only fires in workers
            "slow@worker.solve",  # slow needs a delay
            "crash@worker.solve:5ms",  # crash takes no delay
            "crash@worker.solve*0",  # times must be >= 1
            "not a spec",
        ],
    )
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)


class TestCounters:
    def test_skip_then_times_window(self):
        plan = FaultPlan.parse("crash@worker.solve*2+1")
        hits = [plan.trigger("worker.solve") for _ in range(5)]
        assert [h.action if h else None for h in hits] == [
            None,
            "crash",
            "crash",
            None,
            None,
        ]

    def test_sites_count_independently(self):
        plan = FaultPlan.parse("drop@worker.result")
        assert plan.trigger("worker.solve") is None  # other site: no count
        assert plan.trigger("worker.result").action == "drop"
        assert plan.trigger("worker.result") is None  # spent

    def test_cosited_specs_share_the_arrival_sequence(self):
        # first match in plan order wins, but both specs see arrivals
        plan = FaultPlan.parse(
            "crash@worker.solve+1; slow@worker.solve:1ms*3"
        )
        actions = [
            hit.action if hit else None
            for hit in (plan.trigger("worker.solve") for _ in range(5))
        ]
        # arrival 1: crash still skipping -> slow; arrival 2: crash;
        # arrival 3: slow's window (1..3) is still open; then spent
        assert actions == ["slow", "crash", "slow", None, None]

    def test_inf_never_exhausts(self):
        plan = FaultPlan.parse("drop@worker.result*inf")
        assert all(
            plan.trigger("worker.result") is not None for _ in range(500)
        )

    def test_trigger_is_thread_safe(self):
        # 8 threads x 100 arrivals against a *150 window: exactly 150
        # triggers must be handed out, no more, no fewer
        plan = FaultPlan.parse("drop@worker.result*150")
        hits = []
        lock = threading.Lock()

        def hammer():
            mine = sum(
                plan.trigger("worker.result") is not None for _ in range(100)
            )
            with lock:
                hits.append(mine)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(hits) == 150

    def test_induce_serves_sleeps_and_returns_actions(self):
        plan = FaultPlan.parse("slow@worker.solve:1ms; crash@worker.solve+1")
        assert plan.induce("worker.solve") is None  # slow: slept, no action
        assert plan.induce("worker.solve") == "crash"
        assert plan.induce("worker.solve") is None  # both spent
