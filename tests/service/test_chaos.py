"""Chaos suite: the service under injected and real failures.

The fault-tolerance battery ISSUE 7 demanded: poison-input quarantine
(a batch with one always-crashing structure completes, the poison
request fails with ``PoisonInput`` after exactly ``max_retries``
attempts and the pool stays healthy), deadline enforcement at every
stage (submit, queue, in-flight via the overdue-kill backstop),
injected crash/slow/drop/stall faults, cooperative budgets over the
service with fallback conformance, crash-during-drain, and shutdown
escalation for hung workers.

Fault recipes here use ``+SKIP`` windows deliberately: worker-side
arrival counters reset when a crashed worker is respawned, so a bare
``crash@worker.solve`` crashes *every* worker's first solve (that is
the poison scenario), while ``crash@worker.solve+1`` lets the
replacement's first solve through (transparent recovery).
"""

import os
import time

import pytest

from repro.core import CourcelleSolver, undirected_graph_filter
from repro.datalog import BudgetExceeded, SolveBudget
from repro.mso import formulas
from repro.service import (
    DeadlineExceeded,
    PoisonInput,
    ShardFailed,
    SolverService,
    structure_fingerprint,
)
from repro.structures import GRAPH_SIGNATURE, Graph, Structure, graph_to_structure


@pytest.fixture(scope="module")
def solver():
    return CourcelleSolver(
        formulas.has_neighbor("x"),
        GRAPH_SIGNATURE,
        width=1,
        free_var="x",
        structure_filter=undirected_graph_filter,
    )


def chain(n):
    return graph_to_structure(Graph.path(n))


# -- worker-killing structures (pickle-borne, module-level for pickling)

_POISON_EXIT = 41


def _rebuild_boom():
    """Unpickled in the worker: die, every single time."""
    os._exit(_POISON_EXIT)


class AlwaysCrash(Structure):
    """A structure whose every worker-side unpickle kills the worker --
    the canonical poison input."""

    __slots__ = ()

    def __reduce__(self):
        return (_rebuild_boom, ())


def poison(n=13):
    base = chain(n)
    return AlwaysCrash(
        base.signature,
        base.domain,
        {name: base.relation(name) for name in base.signature},
    )


def _rebuild_crash_once(latch, signature, domain, relations):
    if latch is not None and not os.path.exists(latch):
        open(latch, "w").close()
        os._exit(42)
    return Structure(signature, domain, relations)


class CrashOnce(Structure):
    """First worker-side unpickle kills the worker; retries succeed."""

    __slots__ = ("latch",)

    def __init__(self, base, latch):
        super().__init__(
            base.signature,
            base.domain,
            {name: base.relation(name) for name in base.signature},
        )
        object.__setattr__(self, "latch", latch)

    def __reduce__(self):
        return (
            _rebuild_crash_once,
            (
                self.latch,
                self.signature,
                tuple(self.domain),
                {
                    name: tuple(self.relation(name))
                    for name in self.signature
                },
            ),
        )


def _rebuild_nap(seconds, signature, domain, relations):
    time.sleep(seconds)
    return Structure(signature, domain, relations)


class Napper(Structure):
    """Worker-side unpickle sleeps ``nap`` seconds first: a
    deterministic slow solve / hung worker."""

    __slots__ = ("nap",)

    def __init__(self, base, nap):
        super().__init__(
            base.signature,
            base.domain,
            {name: base.relation(name) for name in base.signature},
        )
        object.__setattr__(self, "nap", nap)

    def __reduce__(self):
        return (
            _rebuild_nap,
            (
                self.nap,
                self.signature,
                tuple(self.domain),
                {
                    name: tuple(self.relation(name))
                    for name in self.signature
                },
            ),
        )


# ----------------------------------------------------------------------
# poison quarantine: the ISSUE acceptance scenario
# ----------------------------------------------------------------------


class TestPoisonQuarantine:
    def test_batch_with_poison_completes(self, solver):
        goods = [chain(10), chain(8), chain(6)]
        bad = poison(13)
        serial = [solver.query(s) for s in goods]
        with SolverService(
            workers=2, max_retries=3, retry_backoff=0.01
        ) as service:
            handle = service.register(solver)
            futures = handle.submit_many([goods[0], bad, goods[1], goods[2]])

            exc = futures[1].exception(timeout=120)
            assert isinstance(exc, PoisonInput)
            # ... after exactly max_retries attempts, with the history
            assert exc.crashes == 3
            assert len(exc.history) == 3
            assert all("worker died" in line for line in exc.history)
            assert exc.fingerprint == structure_fingerprint(bad)
            assert exc.program_key == handle.key

            # the other requests complete with answers identical to a
            # serial loop, even if they shared the poison's first shard
            answers = [
                futures[i].result(timeout=120) for i in (0, 2, 3)
            ]
            assert answers == serial

            # the pool is healthy: new work still solves
            assert handle.submit(chain(4)).result(timeout=120) == frozenset(
                range(4)
            )

            stats = service.stats
            assert stats.worker_restarts == 3  # one per poison attempt
            assert stats.poisoned == 1
            assert stats.quarantine_size == 1
            assert stats.failed >= 1

    def test_quarantine_fast_fails_and_evicts(self, solver):
        bad = poison(11)
        with SolverService(
            workers=1, max_retries=2, retry_backoff=0.01
        ) as service:
            handle = service.register(solver)
            first = handle.submit(bad)
            assert isinstance(first.exception(timeout=120), PoisonInput)

            # same fingerprint again: rejected instantly, no dispatch
            again = handle.submit(bad)
            assert again.done()
            exc = again.exception(0)
            assert isinstance(exc, PoisonInput)
            assert exc.fingerprint == structure_fingerprint(bad)

            records = service.quarantined()
            assert len(records) == 1
            assert records[0].rejections == 1
            assert records[0].crashes == 2
            assert service.stats.quarantine_rejections == 1

            assert service.evict_quarantine(records[0].fingerprint) == 1
            assert service.quarantined() == ()
            assert service.stats.quarantine_size == 0
            assert service.evict_quarantine() == 0  # idempotent


# ----------------------------------------------------------------------
# injected faults
# ----------------------------------------------------------------------


class TestInjectedFaults:
    def test_injected_crash_recovers_transparently(self, solver):
        # +1: each worker's first solve passes, its second crashes --
        # so every respawned replacement completes one shard before
        # dying, and the batch converges.  Each generation charges one
        # crash to one request, so max_retries=6 gives ample headroom
        # for 4 requests (worst observed: 3 crashes on one request).
        structures = [chain(n) for n in (9, 7, 5, 11)]
        serial = [solver.query(s) for s in structures]
        with SolverService(
            workers=1,
            faults="crash@worker.solve+1",
            max_retries=6,
            retry_backoff=0.01,
        ) as service:
            handle = service.register(solver)
            answers = handle.solve_many(structures, timeout=120)
            stats = service.stats
        assert answers == serial
        assert stats.worker_restarts >= 1
        assert stats.shards_resubmitted >= 1
        assert stats.retries >= 1
        assert stats.failed == 0
        assert stats.recovery_ms  # resubmitted shards report latency

    def test_slow_and_stall_are_harmless(self, solver):
        structures = [chain(n) for n in (6, 8, 10)]
        serial = [solver.query(s) for s in structures]
        plan = (
            "slow@worker.solve:20ms*2; "
            "stall@scheduler.dispatch:10ms; "
            "stall@collector.result:10ms"
        )
        with SolverService(workers=2, faults=plan) as service:
            handle = service.register(solver)
            assert handle.solve_many(structures, timeout=120) == serial
            assert service.stats.failed == 0

    def test_dropped_result_recovered_by_overdue_kill(self, solver):
        # the worker solves but never sends: only the deadline backstop
        # can recover the shard (kill the worker holding it)
        with SolverService(
            workers=1, faults="drop@worker.result*inf", retry_backoff=0.01
        ) as service:
            handle = service.register(solver)
            future = handle.submit(chain(10), timeout=1.0)
            assert isinstance(
                future.exception(timeout=120), DeadlineExceeded
            )
            assert service.stats.workers_killed_overdue >= 1
            assert service.stats.deadline_expired >= 1

    def test_fault_plan_validated_at_construction(self):
        with pytest.raises(ValueError):
            SolverService(workers=1, faults="zap@worker.solve")


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------


class TestDeadlines:
    def test_already_expired_submit_fails_fast(self, solver):
        with SolverService(workers=1) as service:
            handle = service.register(solver)
            future = handle.submit(
                chain(5), deadline=time.monotonic() - 1.0
            )
            assert future.done()
            assert isinstance(future.exception(0), DeadlineExceeded)
            stats = service.stats
            assert stats.deadline_expired == 1
            assert stats.submitted == 0  # rejected before intake

    def test_timeout_and_deadline_are_mutually_exclusive(self, solver):
        with SolverService(workers=1) as service:
            handle = service.register(solver)
            with pytest.raises(ValueError):
                handle.submit(chain(3), timeout=1.0, deadline=1.0)
            with pytest.raises(ValueError):
                handle.submit_many([chain(3)], timeout=1.0, deadline=1.0)

    def test_request_expires_while_queued(self, solver):
        # a deterministic 0.6s blocker occupies the only worker; the
        # victim's 0.15s deadline lapses while it is still queued
        with SolverService(workers=1, max_shard=1) as service:
            handle = service.register(solver)
            blocker = handle.submit(Napper(chain(4), 0.6))
            victim = handle.submit(chain(5), timeout=0.15)
            assert isinstance(
                victim.exception(timeout=120), DeadlineExceeded
            )
            assert blocker.result(timeout=120) == frozenset(range(4))
            assert service.stats.deadline_expired >= 1

    def test_solve_many_shares_one_deadline(self, solver):
        # the satellite fix: timeout= bounds the whole batch, not
        # N x timeout.  With every result dropped, nothing ever
        # resolves normally -- the batch must still fail out in ~one
        # timeout, not twelve.
        structures = [chain(6)] * 12
        with SolverService(
            workers=1, faults="drop@worker.result*inf", retry_backoff=0.01
        ) as service:
            handle = service.register(solver)
            start = time.monotonic()
            with pytest.raises((DeadlineExceeded, TimeoutError)):
                handle.solve_many(structures, timeout=1.0)
            elapsed = time.monotonic() - start
        assert elapsed < 8.0  # the N x timeout bug would take >= 12s


# ----------------------------------------------------------------------
# budgets over the service
# ----------------------------------------------------------------------


class TestServiceBudgets:
    def test_over_budget_solve_raises_not_crashes(self, solver):
        tight = SolveBudget(max_ground_rules=5)
        with SolverService(workers=1, budget=tight) as service:
            handle = service.register(solver)
            exc = handle.submit(chain(40)).exception(timeout=120)
            assert isinstance(exc, BudgetExceeded)
            assert exc.dimension == "ground_rules"
            assert exc.consumed["ground_rules"] > 5
            # cooperative enforcement: the worker survived
            assert service.stats.worker_restarts == 0
            assert service.stats.budget_exceeded == 1
            # and keeps serving work that fits the (very tight) cap:
            # a 1-vertex chain takes the below-threshold direct path
            assert handle.submit(chain(1)).result(timeout=120) == frozenset()
            assert service.stats.worker_restarts == 0

    def test_fallback_backend_answers_over_budget_solves(self, solver):
        structures = [chain(n) for n in (40, 25, 33)]
        serial = [solver.query(s) for s in structures]
        with SolverService(
            workers=1,
            budget=SolveBudget(max_ground_rules=5),
            fallback_backend="quasi-guarded-eager",
        ) as service:
            handle = service.register(solver)
            assert handle.solve_many(structures, timeout=120) == serial
            stats = service.stats
        assert stats.fallback_solves == 3
        assert stats.failed == 0

    def test_fallback_backend_validated_at_construction(self):
        with pytest.raises(ValueError):
            SolverService(workers=1, fallback_backend="no-such-backend")

    def test_budget_type_checked(self):
        with pytest.raises(TypeError):
            SolverService(workers=1, budget=30.0)


# ----------------------------------------------------------------------
# shutdown under failure
# ----------------------------------------------------------------------


class TestShutdownUnderFailure:
    def test_crash_during_drain_still_drains(self, solver, tmp_path):
        # the worker dies while shutdown(drain=True) is waiting: crash
        # recovery keeps running during the drain, so every accepted
        # request still resolves and the drain terminates
        latch = str(tmp_path / "drain-crash")
        structures = [chain(7), CrashOnce(chain(5), latch), chain(9)]
        service = SolverService(workers=1, retry_backoff=0.01)
        try:
            handle = service.register(solver)
            futures = handle.submit_many(structures)
            service.shutdown(drain=True)
            assert all(f.done() for f in futures)
            assert [f.result(0) for f in futures] == [
                solver.query(s) for s in structures
            ]
            assert service.stats.worker_restarts >= 1
            assert os.path.exists(latch)
        finally:
            service.shutdown()

    def test_hung_worker_is_escalated(self, solver):
        # a worker stuck in a 30s solve ignores the stop sentinel; the
        # drain times out, and shutdown escalates terminate() instead
        # of leaking the process
        service = SolverService(workers=1, shutdown_grace=0.3)
        try:
            handle = service.register(solver)
            hung = handle.submit(Napper(chain(4), 30.0))
            # wait for dispatch so the nap is actually in flight
            deadline = time.monotonic() + 10
            while service.queue_depth and time.monotonic() < deadline:
                time.sleep(0.01)
            start = time.monotonic()
            service.shutdown(drain=True, timeout=0.4)
            elapsed = time.monotonic() - start
            assert service.stats.shutdown_escalations >= 1
            assert elapsed < 10.0  # never waited out the 30s nap
            assert hung.done()
        finally:
            service.shutdown()


# ----------------------------------------------------------------------
# failure metadata
# ----------------------------------------------------------------------


class TestFailureMetadata:
    def test_shard_failed_carries_fingerprint_and_program(self, solver):
        with SolverService(workers=1, max_shard=1) as service:
            handle = service.register(solver)
            exc = handle.submit(None).exception(timeout=120)
        assert isinstance(exc, ShardFailed)
        assert exc.program_key == handle.key
        assert exc.fingerprint == structure_fingerprint(None)
        assert "worker traceback" in str(exc)
        assert exc.fingerprint in str(exc)

    def test_structure_fingerprint_is_stable_and_content_based(self):
        a, b = chain(9), chain(9)
        assert structure_fingerprint(a) == structure_fingerprint(b)
        assert structure_fingerprint(a) != structure_fingerprint(chain(10))
        fp = structure_fingerprint(chain(3))
        assert len(fp) == 16
        assert all(c in "0123456789abcdef" for c in fp)
