"""The persistent solver service: the concurrency suite.

This is the test battery ISSUE 6 demanded alongside the serving layer:
1-vs-N answer identity, input-order stability when shards complete out
of order, coalescing shapes, backpressure, worker-crash resubmission,
and shutdown semantics (drain with a non-empty queue, cancel without).
The matching ProgramCache race-regression tests live in
``tests/datalog/test_program_cache.py``.

Everything here runs on the cheap width-1 ``has_neighbor`` program
(compile ~70 ms, chain solves in tens of ms) with 2 workers, so the
suite stays tier-1-fast even on one core.
"""

import os
import random
import time

import pytest

from repro.core import (
    CourcelleSolver,
    default_worker_count,
    undirected_graph_filter,
)
from repro.mso import formulas
from repro.problems import random_tree_graph
from repro.service import (
    ProgramHandle,
    ServiceClosed,
    ServiceSaturated,
    ShardFailed,
    SolverService,
    coalesce,
)
from repro.structures import GRAPH_SIGNATURE, Graph, Structure, graph_to_structure


@pytest.fixture(scope="module")
def solver():
    return CourcelleSolver(
        formulas.has_neighbor("x"),
        GRAPH_SIGNATURE,
        width=1,
        free_var="x",
        structure_filter=undirected_graph_filter,
    )


def chain(n):
    return graph_to_structure(Graph.path(n))


def tree(n, seed=7):
    return graph_to_structure(random_tree_graph(random.Random(seed), n))


# ----------------------------------------------------------------------
# coalesce: the pure scheduling policy
# ----------------------------------------------------------------------


class TestCoalesce:
    def test_burst_spreads_across_idle_workers(self):
        pending = [("p", i) for i in range(10)]
        shards = coalesce(pending, idle_workers=2, max_shard=64)
        assert [len(reqs) for _key, reqs in shards] == [5, 5]

    def test_max_shard_caps_shard_size(self):
        pending = [("p", i) for i in range(10)]
        shards = coalesce(pending, idle_workers=1, max_shard=3)
        assert [len(reqs) for _key, reqs in shards] == [3, 3, 3, 1]

    def test_groups_per_program_preserving_arrival_order(self):
        pending = [("a", 0), ("b", 1), ("a", 2), ("b", 3), ("a", 4)]
        shards = dict(coalesce(pending, idle_workers=1, max_shard=64))
        assert shards == {"a": [0, 2, 4], "b": [1, 3]}

    def test_trickle_stays_one_small_shard(self):
        assert coalesce([("p", 0)], idle_workers=4, max_shard=64) == [
            ("p", [0])
        ]

    def test_needs_an_idle_worker(self):
        with pytest.raises(ValueError):
            coalesce([("p", 0)], idle_workers=0, max_shard=64)


# ----------------------------------------------------------------------
# default_worker_count (the satellite cap fix)
# ----------------------------------------------------------------------


class TestDefaultWorkerCount:
    def test_capped_by_batch_size(self):
        assert default_worker_count(batch_size=1) == 1

    def test_never_below_one(self):
        assert default_worker_count(batch_size=0) == 1

    def test_uncapped_matches_affinity(self):
        cpus = len(os.sched_getaffinity(0))
        assert default_worker_count() == max(1, cpus)
        assert default_worker_count(batch_size=10**6) == max(1, cpus)


# ----------------------------------------------------------------------
# answer identity and ordering
# ----------------------------------------------------------------------


class TestIdentity:
    def test_service_matches_serial_loop(self, solver):
        structures = [chain(20), tree(15), chain(7), tree(9, seed=11)]
        serial = [solver.query(s) for s in structures]
        with SolverService(workers=2) as service:
            handle = service.register(solver)
            assert handle.solve_many(structures) == serial

    def test_solve_many_routes_through_service(self, solver):
        structures = [chain(12), tree(10), chain(5)]
        serial = solver.solve_many(structures, workers=1)
        with SolverService(workers=2) as service:
            assert solver.solve_many(structures, service=service) == serial

    def test_input_order_stable_under_out_of_order_completion(self, solver):
        # max_shard=1 makes every request its own shard on 2 workers;
        # wildly uneven sizes make completion order scramble.  The
        # answer for a path of n (n >= 2) is all n vertices, so a
        # misassigned future would change the answer's cardinality.
        sizes = [200, 3, 150, 4, 100, 5, 80, 6]
        structures = [chain(n) for n in sizes]
        with SolverService(workers=2, max_shard=1) as service:
            futures = service.register(solver).submit_many(structures)
            answers = [f.result(timeout=120) for f in futures]
        assert [len(a) for a in answers] == sizes

    def test_tds_length_mismatch(self, solver):
        with SolverService(workers=1) as service:
            handle = service.register(solver)
            with pytest.raises(ValueError):
                handle.submit_many([chain(5), chain(6)], tds=[None])


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------


class TestRegister:
    def test_idempotent_same_handle(self, solver):
        with SolverService(workers=1) as service:
            first = service.register(solver)
            second = service.register(solver)
            assert first is second

    def test_unregistered_program_rejected(self, solver):
        with SolverService(workers=1) as service:
            bogus = ProgramHandle(service, "no-such-program")
            with pytest.raises(KeyError):
                bogus.submit(chain(5))

    def test_stats_count_requests_and_shards(self, solver):
        with SolverService(workers=2) as service:
            handle = service.register(solver)
            handle.solve_many([chain(10)] * 6)
            stats = service.stats
        assert stats.submitted == 6
        assert stats.completed == 6
        assert stats.failed == 0
        assert stats.shards_dispatched >= 1
        assert stats.peak_queue_depth >= 1


# ----------------------------------------------------------------------
# failure paths
# ----------------------------------------------------------------------


class TestShardFailure:
    def test_worker_exception_sets_shard_failed(self, solver):
        # max_shard=1: a failure poisons its whole shard by design, so
        # keep the bad request from coalescing with the good ones
        with SolverService(workers=1, max_shard=1) as service:
            handle = service.register(solver)
            good = handle.submit(chain(8))
            # None pickles fine but explodes inside the worker's solve
            bad = handle.submit(None)
            assert good.result(timeout=120) == frozenset(range(8))
            exc = bad.exception(timeout=120)
            assert isinstance(exc, ShardFailed)
            assert "worker traceback" in str(exc)
            # the worker survives a failed shard
            assert handle.submit(chain(4)).result(timeout=120) == frozenset(
                range(4)
            )
            assert service.stats.failed >= 1


# -- crash recovery ----------------------------------------------------

_LATCH = None  # set per-test via the fixture; forked workers inherit it


def _rebuild_crash_once(latch, signature, domain, relations):
    """Unpickled in the worker: first time (no latch file) simulate a
    worker crash; after resubmission build the structure normally."""
    if latch is not None and not os.path.exists(latch):
        open(latch, "w").close()
        os._exit(42)
    return Structure(signature, domain, relations)


class CrashOnce(Structure):
    """A structure whose first worker-side unpickle kills the worker."""

    __slots__ = ("latch",)

    def __init__(self, base, latch):
        super().__init__(
            base.signature,
            base.domain,
            {name: base.relation(name) for name in base.signature},
        )
        object.__setattr__(self, "latch", latch)

    def __reduce__(self):
        return (
            _rebuild_crash_once,
            (
                self.latch,
                self.signature,
                tuple(self.domain),
                {
                    name: tuple(self.relation(name))
                    for name in self.signature
                },
            ),
        )


class TestCrashRecovery:
    def test_dead_worker_is_replaced_and_shard_resubmitted(
        self, solver, tmp_path
    ):
        latch = str(tmp_path / "crashed-once")
        structures = [
            chain(10),
            CrashOnce(chain(6), latch),
            chain(8),
        ]
        with SolverService(workers=2, max_shard=1) as service:
            handle = service.register(solver)
            futures = handle.submit_many(structures)
            answers = [f.result(timeout=120) for f in futures]
            stats = service.stats
        assert answers == [solver.query(s) for s in structures]
        assert stats.worker_restarts >= 1
        assert stats.shards_resubmitted >= 1
        assert os.path.exists(latch)


# ----------------------------------------------------------------------
# shutdown semantics
# ----------------------------------------------------------------------


class TestShutdown:
    def test_drain_completes_a_non_empty_queue(self, solver):
        # one worker + a slow head-of-line request: the rest are still
        # queued when shutdown starts, and must all resolve anyway
        service = SolverService(workers=1)
        try:
            handle = service.register(solver)
            futures = handle.submit_many([chain(300)] + [chain(i + 2) for i in range(5)])
            service.shutdown(drain=True)
            assert all(f.done() for f in futures)
            assert [len(f.result(0)) for f in futures] == [300, 2, 3, 4, 5, 6]
        finally:
            service.shutdown()

    def test_submit_and_register_after_shutdown_raise(self, solver):
        service = SolverService(workers=1)
        handle = service.register(solver)
        service.shutdown()
        with pytest.raises(ServiceClosed):
            handle.submit(chain(5))
        with pytest.raises(ServiceClosed):
            service.register(solver)

    def test_shutdown_is_idempotent(self, solver):
        service = SolverService(workers=1)
        service.shutdown()
        service.shutdown()  # no-op, no hang

    def test_no_drain_resolves_every_future(self, solver):
        # a slow poll interval keeps the queue undispatched long enough
        # for shutdown(drain=False) to see it; every future must end up
        # done -- cancelled, ServiceClosed, or (if it won the race to a
        # worker) resolved with the real answer
        service = SolverService(workers=1, poll_interval=0.2)
        handle = service.register(solver)
        futures = handle.submit_many([chain(i + 5) for i in range(8)])
        service.shutdown(drain=False)
        for future in futures:
            assert future.done()
            if not future.cancelled() and future.exception() is not None:
                assert isinstance(future.exception(), ServiceClosed)

    def test_context_manager_drains_on_clean_exit(self, solver):
        with SolverService(workers=1) as service:
            future = service.register(solver).submit(chain(9))
        assert future.result(0) == frozenset(range(9))


# ----------------------------------------------------------------------
# backpressure
# ----------------------------------------------------------------------


class TestBackpressure:
    def test_saturated_submit_raises_without_blocking(self, solver):
        with SolverService(workers=1, max_pending=2) as service:
            handle = service.register(solver)
            blocker = handle.submit(chain(600))  # occupies the worker
            # wait until the blocker has been handed to the worker, so
            # the bounded queue is empty again
            for _ in range(400):
                if not service.queue_depth:
                    break
                time.sleep(0.01)
            fillers = [handle.submit(chain(5)), handle.submit(chain(6))]
            if not blocker.done():
                # queue full while the worker is busy: shed load
                with pytest.raises(ServiceSaturated):
                    handle.submit(chain(7), block=False)
                assert service.stats.peak_queue_depth >= 2
            for future in [blocker, *fillers]:
                assert future.result(timeout=120)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SolverService(workers=0)
        with pytest.raises(ValueError):
            SolverService(workers=1, max_pending=0)
        with pytest.raises(ValueError):
            SolverService(workers=1, max_shard=0)
