"""Tests for repro.service: the persistent solver service."""
