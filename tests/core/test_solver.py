"""Tests for the CourcelleSolver facade (Corollary 4.6 end-to-end)."""

import pytest

from repro.core import CourcelleSolver, undirected_graph_filter
from repro.mso import formulas, query
from repro.structures import GRAPH_SIGNATURE, Graph, graph_to_structure


@pytest.fixture(scope="module")
def solver():
    return CourcelleSolver(
        formulas.has_neighbor("x"),
        GRAPH_SIGNATURE,
        width=1,
        free_var="x",
        structure_filter=undirected_graph_filter,
    )


class TestQuery:
    def test_on_path(self, solver):
        s = graph_to_structure(Graph.path(6))
        assert solver.query(s) == frozenset(range(6))

    def test_with_isolated_vertices(self, solver):
        g = Graph(vertices=[0, 1, 2, 3], edges=[(1, 2)])
        s = graph_to_structure(g)
        want = query(s, formulas.has_neighbor("x"), "x")
        assert solver.query(s) == want == frozenset({1, 2})

    def test_small_structure_fallback(self, solver):
        """|dom| < w + 1 falls back to direct evaluation (the paper's
        'w.l.o.g.')."""
        s = graph_to_structure(Graph(vertices=[0]))
        assert solver.query(s) == frozenset()

    def test_narrow_decomposition_is_widened(self, solver):
        # stars have width 1 already; a 2-vertex graph needs widening? no --
        # it *is* width 1.  An edgeless 3-vertex graph has width 0.
        g = Graph(vertices=[0, 1, 2])
        s = graph_to_structure(g)
        assert solver.query(s) == frozenset()

    def test_decide_on_unary_solver_raises(self, solver):
        with pytest.raises(ValueError):
            solver.decide(graph_to_structure(Graph.path(2)))

    def test_too_wide_decomposition_rejected(self, solver):
        from repro.treewidth import decompose_structure

        g = Graph.complete(4)  # width 3 > compiled width 1
        s = graph_to_structure(g)
        td = decompose_structure(s)
        with pytest.raises(ValueError, match="exceeds"):
            solver.query(s, td)

    def test_explicit_decomposition_accepted(self, solver):
        from repro.treewidth import decompose_structure

        g = Graph.path(5)
        s = graph_to_structure(g)
        td = decompose_structure(s)
        assert solver.query(s, td) == frozenset(range(5))


class TestIsolatedQuery:
    def test_isolated(self):
        isolated_solver = CourcelleSolver(
            formulas.isolated("x"),
            GRAPH_SIGNATURE,
            width=1,
            free_var="x",
            structure_filter=undirected_graph_filter,
        )
        g = Graph(vertices=[0, 1, 2, 3], edges=[(0, 1)])
        s = graph_to_structure(g)
        assert isolated_solver.query(s) == frozenset({2, 3})


class TestPluggableBackends:
    """The solver's backend= threading: every evaluation backend must
    return the same answers as the quasi-guarded default."""

    @pytest.mark.parametrize("backend", ["naive", "semi-naive", "magic"])
    def test_query_agrees_with_quasi_guarded(self, solver, backend):
        alt = CourcelleSolver(
            formulas.has_neighbor("x"),
            GRAPH_SIGNATURE,
            width=1,
            free_var="x",
            structure_filter=undirected_graph_filter,
            backend=backend,
        )
        for g in [
            Graph.path(6),
            Graph(vertices=[0, 1, 2, 3], edges=[(1, 2)]),
            Graph(vertices=[0, 1, 2]),
        ]:
            s = graph_to_structure(g)
            assert alt.query(s) == solver.query(s), backend

    @pytest.mark.parametrize("backend", ["semi-naive", "magic"])
    def test_decide_sentence_across_backends(self, backend):
        """The 0-ary answer path: φ holds iff some p and some non-p."""
        from repro.mso import And, ExistsInd, Not, RelAtom, evaluate
        from repro.structures import Signature, Structure

        psig = Signature.of(p=1)
        sentence = ExistsInd(
            "x",
            And(RelAtom("p", ("x",)), ExistsInd("y", Not(RelAtom("p", ("y",))))),
        )
        s = CourcelleSolver(sentence, psig, width=1, backend=backend)
        mixed = Structure(psig, [0, 1, 2], {"p": {(0,)}})
        empty = Structure(psig, [0, 1, 2], {"p": set()})
        assert s.decide(mixed) == evaluate(mixed, sentence) is True
        assert s.decide(empty) == evaluate(empty, sentence) is False

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown evaluation backend"):
            CourcelleSolver(
                formulas.has_neighbor("x"),
                GRAPH_SIGNATURE,
                width=1,
                free_var="x",
                structure_filter=undirected_graph_filter,
                backend="quantum",
            )
