"""Tests for the Theorem 4.4 evaluation pipeline."""

import pytest

from repro.core import QuasiGuardedEvaluator
from repro.datalog import Database, least_fixpoint, parse_program
from repro.structures import Fact


def tree_db():
    db = Database()
    db.add("root", ("n0",))
    db.add("leaf", ("n2",))
    db.add("child1", ("n1", "n0"))
    db.add("child1", ("n2", "n1"))
    db.add("bag", ("n0", "a", "b"))
    db.add("bag", ("n1", "b", "c"))
    db.add("bag", ("n2", "c", "d"))
    db.add("e", ("c", "d"))
    return db


PROG = parse_program(
    """
    t(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).
    t(V) :- bag(V, X0, X1), child1(V1, V), t(V1).
    ok :- root(V), t(V).
    """
)


class TestEvaluator:
    def test_requires_quasi_guardedness(self):
        tc = parse_program(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        with pytest.raises(ValueError, match="quasi-guarded"):
            QuasiGuardedEvaluator(tc, bag_arity=3)

    def test_check_can_be_disabled(self):
        tc = parse_program("path(X, Y) :- edge(X, Y).")
        QuasiGuardedEvaluator(tc, require_quasi_guarded=False)

    def test_matches_semi_naive(self):
        evaluator = QuasiGuardedEvaluator(PROG, bag_arity=3)
        result = evaluator.evaluate(tree_db())
        reference = least_fixpoint(PROG, tree_db())
        for predicate in ("t", "ok"):
            assert {
                f.args for f in result.facts if f.predicate == predicate
            } == reference.relation(predicate)

    def test_result_api(self):
        evaluator = QuasiGuardedEvaluator(PROG, bag_arity=3)
        result = evaluator.evaluate(tree_db())
        assert result.holds("ok")
        assert result.holds("t", "n1")
        assert not result.holds("t", "missing")
        assert result.unary_answers("t") == frozenset({"n0", "n1", "n2"})
        assert result.ground_rules == 4

    def test_all_three_modes_agree(self):
        results = {
            mode: QuasiGuardedEvaluator(
                PROG, bag_arity=3, mode=mode
            ).evaluate(tree_db())
            for mode in ("streamed", "eager", "raw")
        }
        reference = results["eager"]
        for mode, result in results.items():
            assert result.facts == reference.facts, mode
            assert result.unary_answers("t") == reference.unary_answers(
                "t"
            ), mode
        # eager and raw materialize the same ground program; on this
        # fully-live program the streamed emitter matches it too
        assert (
            results["eager"].ground_rules == results["raw"].ground_rules
        )
        assert results["streamed"].ground_rules <= (
            results["eager"].ground_rules
        )

    def test_default_mode_is_streamed_and_legacy_flag_maps_to_raw(self):
        assert QuasiGuardedEvaluator(PROG, bag_arity=3).mode == "streamed"
        assert (
            QuasiGuardedEvaluator(PROG, bag_arity=3, interned=False).mode
            == "raw"
        )
        with pytest.raises(ValueError, match="contradicts"):
            QuasiGuardedEvaluator(
                PROG, bag_arity=3, mode="streamed", interned=False
            )
        with pytest.raises(ValueError, match="unknown mode"):
            QuasiGuardedEvaluator(PROG, bag_arity=3, mode="batched")

    def test_demand_requires_streamed_mode(self):
        with pytest.raises(ValueError, match="streamed"):
            QuasiGuardedEvaluator(
                PROG, bag_arity=3, mode="eager", demand="ok"
            )

    def test_demand_pruned_solve_is_exact_on_the_demanded_cone(self):
        demanded = QuasiGuardedEvaluator(
            PROG, bag_arity=3, demand="ok"
        ).evaluate(tree_db())
        full = QuasiGuardedEvaluator(PROG, bag_arity=3).evaluate(tree_db())
        assert demanded.holds("ok")
        assert demanded.unary_answers("t") == full.unary_answers("t")
        assert demanded.stats is not None

    def test_facts_decode_lazily_and_cache(self):
        evaluator = QuasiGuardedEvaluator(PROG, bag_arity=3)
        result = evaluator.evaluate(tree_db())
        assert result._facts is None  # nothing decoded yet
        first = result.facts
        assert first is result.facts  # cached on first access
        assert {f.args for f in first if f.predicate == "t"} == {
            ("n0",),
            ("n1",),
            ("n2",),
        }

    @pytest.mark.parametrize("interned", [True, False])
    def test_unary_answers_validates_arity(self, interned):
        """A non-unary fact under the queried predicate must raise, not
        be silently truncated to its first argument."""
        binary = parse_program(
            """
            t(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).
            pair(V, X0) :- bag(V, X0, X1), t(V).
            """
        )
        evaluator = QuasiGuardedEvaluator(
            binary, bag_arity=3, interned=interned
        )
        result = evaluator.evaluate(tree_db())
        assert result.holds("pair", "n2", "c")
        with pytest.raises(ValueError, match="arity 2, not 1"):
            result.unary_answers("pair")
        # nullary facts are rejected the same way
        full = QuasiGuardedEvaluator(
            PROG, bag_arity=3, interned=interned
        ).evaluate(tree_db())
        with pytest.raises(ValueError, match="arity 0, not 1"):
            full.unary_answers("ok")
        # absent predicates simply have no answers
        assert full.unary_answers("nothing") == frozenset()
