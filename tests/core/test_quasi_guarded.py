"""Tests for the Theorem 4.4 evaluation pipeline."""

import pytest

from repro.core import QuasiGuardedEvaluator
from repro.datalog import Database, least_fixpoint, parse_program
from repro.structures import Fact


def tree_db():
    db = Database()
    db.add("root", ("n0",))
    db.add("leaf", ("n2",))
    db.add("child1", ("n1", "n0"))
    db.add("child1", ("n2", "n1"))
    db.add("bag", ("n0", "a", "b"))
    db.add("bag", ("n1", "b", "c"))
    db.add("bag", ("n2", "c", "d"))
    db.add("e", ("c", "d"))
    return db


PROG = parse_program(
    """
    t(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).
    t(V) :- bag(V, X0, X1), child1(V1, V), t(V1).
    ok :- root(V), t(V).
    """
)


class TestEvaluator:
    def test_requires_quasi_guardedness(self):
        tc = parse_program(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        with pytest.raises(ValueError, match="quasi-guarded"):
            QuasiGuardedEvaluator(tc, bag_arity=3)

    def test_check_can_be_disabled(self):
        tc = parse_program("path(X, Y) :- edge(X, Y).")
        QuasiGuardedEvaluator(tc, require_quasi_guarded=False)

    def test_matches_semi_naive(self):
        evaluator = QuasiGuardedEvaluator(PROG, bag_arity=3)
        result = evaluator.evaluate(tree_db())
        reference = least_fixpoint(PROG, tree_db())
        for predicate in ("t", "ok"):
            assert {
                f.args for f in result.facts if f.predicate == predicate
            } == reference.relation(predicate)

    def test_result_api(self):
        evaluator = QuasiGuardedEvaluator(PROG, bag_arity=3)
        result = evaluator.evaluate(tree_db())
        assert result.holds("ok")
        assert result.holds("t", "n1")
        assert not result.holds("t", "missing")
        assert result.unary_answers("t") == frozenset({"n0", "n1", "n2"})
        assert result.ground_rules == 4
