"""End-to-end regression tests for the fully interned solve pipeline.

The quasi-guarded default of :class:`CourcelleSolver` now threads one
shared intern pool from structure load through grounding, unit
resolution, and (lazy) answer decoding; the PR 2-era raw-value pipeline
survives as ``backend="quasi-guarded-raw"``.  These tests pin down that
the switch changed *nothing observable*: identical ``unary_answers`` on
3-coloring and primality instances, and exactly one interning context
per solve.

Scope note: the generic Theorem 4.5 compiler's practical envelope is
width 1 (wider signatures blow past its witness limits), so the
3-coloring instances run through compiled MSO queries on width-1
partial k-trees, and the primality instances -- whose schema structures
have width 2 over the richer ``SCHEMA_SIGNATURE`` -- run a Figure-style
quasi-guarded program over their ``A_td`` encoding directly.
"""

import random

import pytest

from repro.bench import atd_cover_program
from repro.core import (
    ANSWER_PREDICATE,
    CourcelleSolver,
    QuasiGuardedEvaluator,
    undirected_graph_filter,
)
from repro.datalog import td_key_dependencies
from repro.mso import formulas, query as direct_query
from repro.problems import random_partial_ktree
from repro.structures import (
    GRAPH_SIGNATURE,
    RelationalSchema,
    graph_to_structure,
    running_example,
)
from repro.treewidth import decompose_structure, encode_normalized, normalize


class TestThreeColoringInstances:
    """3-coloring instances (random partial k-trees, the graphs the
    3-coloring suite runs on) through the full CourcelleSolver."""

    @pytest.mark.parametrize("formula_name", ["has_neighbor", "isolated"])
    def test_unary_answers_identical_before_and_after_interning(
        self, formula_name
    ):
        formula = getattr(formulas, formula_name)("x")
        solvers = {
            backend: CourcelleSolver(
                formula,
                GRAPH_SIGNATURE,
                width=1,
                free_var="x",
                structure_filter=undirected_graph_filter,
                backend=backend,
            )
            for backend in (
                "quasi-guarded",
                "quasi-guarded-eager",
                "quasi-guarded-raw",
            )
        }
        rng = random.Random(0x3C01)
        for _ in range(4):
            graph, td = random_partial_ktree(rng, rng.randint(3, 9), 1)
            s = graph_to_structure(graph)
            streamed = solvers["quasi-guarded"].query(s, td)
            eager = solvers["quasi-guarded-eager"].query(s, td)
            raw = solvers["quasi-guarded-raw"].query(s, td)
            assert streamed == eager == raw
            assert streamed == direct_query(s, formula, "x")


class TestPrimalityInstances:
    """Primality instances (relational schema structures, width 2) via
    the quasi-guarded pipeline over their ``A_td`` encoding."""

    SCHEMAS = [
        running_example(),
        RelationalSchema.parse("R = abcd; a -> b, b -> c, c -> d"),
        RelationalSchema.parse("R = abcde; ab -> c, cd -> e, e -> a"),
    ]

    @pytest.mark.parametrize(
        "schema", SCHEMAS, ids=lambda s: "".join(s.attributes)
    )
    def test_unary_answers_identical_before_and_after_interning(
        self, schema
    ):
        structure = schema.to_structure()
        td = decompose_structure(structure)
        encoded = encode_normalized(structure, normalize(td))
        program = atd_cover_program(td.width + 2)
        dependencies = td_key_dependencies(td.width + 2)
        answers = {}
        for interned in (True, False):
            evaluator = QuasiGuardedEvaluator(
                program, dependencies=dependencies, interned=interned
            )
            result = evaluator.evaluate(encoded)
            assert result.holds("ok")
            answers[interned] = result.unary_answers("covered")
        assert answers[True] == answers[False]
        # every element of the schema structure occurs in some bag
        assert answers[True] == frozenset(structure.domain)


class TestOneInternPoolPerSolve:
    """The tentpole invariant: one shared interning context per solve,
    and decoding never re-interns."""

    @pytest.fixture()
    def solver(self):
        return CourcelleSolver(
            formulas.has_neighbor("x"),
            GRAPH_SIGNATURE,
            width=1,
            free_var="x",
            structure_filter=undirected_graph_filter,
        )

    def test_pool_and_interner_created_once_per_solve(
        self, solver, monkeypatch
    ):
        import repro.datalog.interning as interning
        import repro.datalog.setengine as setengine

        pools = []
        original_pool_init = interning.InternPool.__init__

        def counting_pool_init(self, interner=None):
            original_pool_init(self, interner)
            pools.append(self)

        monkeypatch.setattr(
            interning.InternPool, "__init__", counting_pool_init
        )

        loads = []
        original_from_edb = setengine.SetDatabase.from_edb.__func__

        def counting_from_edb(cls, edb):
            db = original_from_edb(cls, edb)
            loads.append(db)
            return db

        monkeypatch.setattr(
            setengine.SetDatabase,
            "from_edb",
            classmethod(counting_from_edb),
        )

        from repro.structures import Graph

        s = graph_to_structure(Graph.path(6))
        assert solver.query(s) == frozenset(range(6))
        assert len(pools) == 1, "expected exactly one InternPool per solve"
        assert len(loads) == 1, "expected exactly one interning load"
        assert pools[0].interner is loads[0].interner

    def test_decoding_never_reinterns(self, solver):
        from repro.structures import Graph

        s = graph_to_structure(Graph.path(5))
        encoded = solver._prepare(s, None)
        result = solver.evaluator.evaluate(encoded)
        pool = result.pool
        assert pool is not None
        values_before, atoms_before = len(pool.interner), len(pool)
        # decode every way the result can be read
        result.unary_answers(ANSWER_PREDICATE)
        result.holds(ANSWER_PREDICATE, 0)
        result.holds(ANSWER_PREDICATE, "never-interned")
        _ = result.facts
        assert len(pool.interner) == values_before
        assert len(pool) == atoms_before
