"""End-to-end tests for the Theorem 4.5 compiler.

The construction is exponential in the quantifier depth and the width
(the paper says so explicitly), so the tests stay at k = 1 over
undirected graphs and k <= 2 over a tiny unary signature -- enough to
exercise every part of the construction: base cases, permutation /
element-replacement / branch transitions, Θ↓, element selection, and
the decision-variant simplification.
"""

import pytest
from hypothesis import given, settings

from repro.core import (
    CompilerLimitError,
    compile_sentence,
    compile_unary_query,
    undirected_graph_filter,
)
from repro.datalog import is_quasi_guarded
from repro.mso import ExistsInd, Not, RelAtom, And, evaluate, formulas, query
from repro.structures import GRAPH_SIGNATURE, Graph, Signature, Structure, graph_to_structure

from ..conftest import small_trees

PSIG = Signature.of(p=1)


@pytest.fixture(scope="module")
def neighbor_query():
    return compile_unary_query(
        formulas.has_neighbor("x"),
        GRAPH_SIGNATURE,
        width=1,
        free_var="x",
        structure_filter=undirected_graph_filter,
    )


class TestCompiledProgramShape:
    def test_is_monadic(self, neighbor_query):
        assert neighbor_query.program.is_monadic()

    def test_is_quasi_guarded(self, neighbor_query):
        """Theorem 4.5 promises the quasi-guarded fragment."""
        assert is_quasi_guarded(
            neighbor_query.program, neighbor_query.dependencies()
        )

    def test_type_tables_populated(self, neighbor_query):
        assert neighbor_query.up_type_count > 0
        assert neighbor_query.down_type_count > 0

    def test_metadata(self, neighbor_query):
        assert neighbor_query.width == 1
        assert neighbor_query.quantifier_depth == 1
        assert not neighbor_query.is_sentence


_NQ_CACHE: list = []


def _cached_neighbor_query():
    if not _NQ_CACHE:
        _NQ_CACHE.append(
            compile_unary_query(
                formulas.has_neighbor("x"),
                GRAPH_SIGNATURE,
                width=1,
                free_var="x",
                structure_filter=undirected_graph_filter,
            )
        )
    return _NQ_CACHE[0]


class TestUnaryQueryCorrectness:
    @given(small_trees(max_vertices=7))
    @settings(max_examples=15, deadline=None)
    def test_has_neighbor_on_random_trees(self, g):
        nq = _cached_neighbor_query()
        structure = graph_to_structure(g)
        want = query(structure, formulas.has_neighbor("x"), "x")
        from repro.core import ANSWER_PREDICATE, QuasiGuardedEvaluator
        from repro.treewidth import (
            decompose_structure,
            encode_normalized,
            normalize,
            widen,
        )

        if len(structure.domain) < 2:
            return
        td = decompose_structure(structure)
        if td.width < 1:
            td = widen(td, 1)
        encoded = encode_normalized(structure, normalize(td))
        evaluator = QuasiGuardedEvaluator(nq.program, dependencies=nq.dependencies())
        got = evaluator.evaluate(encoded).unary_answers(ANSWER_PREDICATE)
        assert got == want


class TestSentenceVariant:
    def test_decision_simplification_over_unary_signature(self):
        """∃x (p(x) ∧ ∃y ¬p(y)) -- depth 2, tiny signature."""
        sentence = ExistsInd(
            "x", And(RelAtom("p", ("x",)), ExistsInd("y", Not(RelAtom("p", ("y",)))))
        )
        compiled = compile_sentence(sentence, PSIG, width=1)
        assert compiled.is_sentence
        assert compiled.down_type_count == 0  # Θ↓ skipped for sentences
        assert any(r.head.predicate == "phi" for r in compiled.program.rules)

    def test_sentence_correctness(self):
        import random

        from repro.core import ANSWER_PREDICATE, QuasiGuardedEvaluator
        from repro.treewidth import (
            decompose_structure,
            encode_normalized,
            normalize,
            widen,
        )

        sentence = ExistsInd(
            "x", And(RelAtom("p", ("x",)), ExistsInd("y", Not(RelAtom("p", ("y",)))))
        )
        compiled = compile_sentence(sentence, PSIG, width=1)
        evaluator = QuasiGuardedEvaluator(
            compiled.program, dependencies=compiled.dependencies()
        )
        rng = random.Random(11)
        for _ in range(6):
            n = rng.randint(2, 6)
            dom = list(range(n))
            pset = {(x,) for x in dom if rng.random() < 0.5}
            structure = Structure(PSIG, dom, {"p": pset})
            want = evaluate(structure, sentence)
            td = decompose_structure(structure)
            if td.width < 1:
                td = widen(td, 1)
            encoded = encode_normalized(structure, normalize(td))
            assert evaluator.evaluate(encoded).holds(ANSWER_PREDICATE) == want


class TestLimits:
    def test_max_types_raises(self):
        with pytest.raises(CompilerLimitError):
            compile_unary_query(
                formulas.has_neighbor("x"),
                GRAPH_SIGNATURE,
                width=1,
                max_types=3,
                structure_filter=undirected_graph_filter,
            )

    def test_width_zero_rejected(self):
        with pytest.raises(ValueError):
            compile_unary_query(formulas.has_neighbor("x"), GRAPH_SIGNATURE, width=0)

    def test_unfiltered_graph_compilation_exceeds_small_budget(self):
        """Without the class filter the type space explodes -- the very
        state explosion the paper describes (Sections 1, 6)."""
        with pytest.raises(CompilerLimitError):
            compile_unary_query(
                formulas.has_neighbor("x"),
                GRAPH_SIGNATURE,
                width=1,
                max_types=200,
            )
