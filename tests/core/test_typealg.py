"""Tests for the interned type algebra (typealg.py).

The load-bearing property is Lemma 3.5/3.6 soundness of witness
reduction: the reduced witness must have *exactly* the same rank-k
type as the original, which the hypothesis property below checks both
through the canonical-type computation and -- independently -- through
the Ehrenfeucht-Fraïssé game of :mod:`repro.mso.games` (a genuinely
separate implementation of the same equivalence).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CompilerLimitError, TypeAlgebra, TypeTable, reduce_witness
from repro.mso import duplicator_wins, mso_type
from repro.mso.types import TypeContext
from repro.structures import Graph, graph_to_structure

from ..conftest import small_graphs


def g2s(g):
    return graph_to_structure(g)


class TestWitnessReduction:
    @given(small_graphs(max_vertices=5), st.data())
    @settings(max_examples=25, deadline=None)
    def test_reduction_preserves_type_and_ef_equivalence(self, g, data):
        """Reduction must preserve the canonical rank-1 type -- and the
        duplicator must win the 1-round MSO game between the original
        and the reduced witness (the independent cross-check)."""
        structure = g2s(g)
        domain = sorted(structure.domain, key=repr)
        if not domain:
            return
        bag_size = data.draw(
            st.integers(min_value=1, max_value=min(2, len(domain)))
        )
        bag = tuple(
            data.draw(
                st.lists(
                    st.sampled_from(domain),
                    min_size=bag_size,
                    max_size=bag_size,
                    unique=True,
                )
            )
        )
        k = 1
        reduced = reduce_witness(structure, bag, k)
        assert bag[0] in reduced.domain  # bag elements are never deleted
        assert mso_type(structure, bag, k) == mso_type(reduced, bag, k)
        assert duplicator_wins(structure, bag, reduced, bag, k)

    def test_reduction_shrinks_redundant_witnesses(self):
        """Two non-bag vertices with the same attachment profile: one
        of them must go (the minimal representative keeps one vertex
        per rank-0 extension type)."""
        g = Graph(vertices=[0, 1, 2, 3], edges=[(0, 1), (0, 2), (0, 3)])
        reduced = reduce_witness(g2s(g), (0,), 1)
        # 1, 2, 3 all have profile {0}; exactly one survives
        assert len(reduced.domain) == 2

    def test_reduction_is_deterministic(self):
        g = Graph(vertices=[0, 1, 2, 3, 4], edges=[(0, 1), (0, 2), (3, 4)])
        s = g2s(g)
        assert reduce_witness(s, (0,), 1) == reduce_witness(s, (0,), 1)

    def test_reduction_respects_structure_filter(self):
        """A filter rejecting every proper deletion keeps the witness
        intact (degrades to less reduction, never out-of-class)."""
        g = Graph(vertices=[0, 1, 2], edges=[(0, 1)])
        s = g2s(g)
        frozen = reduce_witness(
            s, (0,), 1, structure_filter=lambda c: c == s
        )
        assert frozen == s


class TestTypeTable:
    def test_dense_ids_and_decoding(self):
        table = TypeTable(max_types=10)
        s = g2s(Graph(vertices=[0], edges=[]))
        t_a = ("t", "a")
        t_b = ("t", "b")
        entry_a = table.add(t_a, s, (0,), frozenset())
        entry_b = table.add(t_b, s, (0,), frozenset())
        assert (entry_a.type_id, entry_b.type_id) == (0, 1)
        assert table.get(t_a) is entry_a
        assert table.entry_of(1) is entry_b
        assert table.get(("t", "c")) is None
        assert [e.type_id for e in table] == [0, 1]

    def test_duplicate_type_rejected(self):
        table = TypeTable(max_types=10)
        s = g2s(Graph(vertices=[0], edges=[]))
        table.add(("t",), s, (0,), frozenset())
        with pytest.raises(ValueError):
            table.add(("t",), s, (0,), frozenset())

    def test_max_types_enforced(self):
        table = TypeTable(max_types=1)
        s = g2s(Graph(vertices=[0], edges=[]))
        table.add(("t", "a"), s, (0,), frozenset())
        with pytest.raises(CompilerLimitError):
            table.add(("t", "b"), s, (0,), frozenset())


class TestTypeAlgebra:
    def test_canonicalize_renames_bag_first(self):
        algebra = TypeAlgebra(k=1, max_witness_size=16)
        g = Graph(vertices=["a", "b", "c"], edges=[("a", "b"), ("b", "c")])
        s = g2s(g)
        canon, cbag = algebra.canonicalize(s, ("b", "c"))
        assert cbag == (0, 1)
        assert canon.domain == frozenset({0, 1, 2})
        # type is invariant under the canonical renaming
        assert mso_type(s, ("b", "c"), 1) == mso_type(canon, (0, 1), 1)

    def test_transient_typing_matches_and_does_not_memoize(self):
        algebra = TypeAlgebra(k=1, max_witness_size=16)
        s = g2s(Graph(vertices=[0, 1], edges=[(0, 1)]))
        t_stored = algebra.type_of(s, (0,))
        t_transient = algebra.type_of(s, (0,), transient=True)
        assert t_stored == t_transient
        assert len(algebra._contexts) == 1  # only the stored path memoizes

    def test_oversized_transient_witness_raises(self):
        algebra = TypeAlgebra(k=1, max_witness_size=2)
        s = g2s(Graph.path(5))
        with pytest.raises(CompilerLimitError):
            algebra.type_of(s, (0,))

    def test_shared_context_agrees_with_fresh_context(self):
        """The structure-scoped memo must be semantics-neutral: typing
        under a shared context equals typing from scratch."""
        algebra = TypeAlgebra(k=1, max_witness_size=16)
        s = g2s(Graph(vertices=[0, 1, 2], edges=[(0, 1), (1, 2)]))
        for bag in ((0,), (1,), (0, 2), (2, 1)):
            assert algebra.type_of(s, bag) == TypeContext(s).type_of(bag, 1)
