"""Tests for the benchmark harness utilities and the engine baseline."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.bench import fit_linear, format_ms, format_table, time_ms

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestTiming:
    def test_time_ms_positive(self):
        assert time_ms(lambda: sum(range(1000))) > 0

    def test_repeat_takes_best(self):
        calls = []

        def fn():
            calls.append(1)

        time_ms(fn, repeat=4)
        assert len(calls) == 4


class TestFormatting:
    def test_format_ms_dash_for_none(self):
        assert format_ms(None) == "-"

    def test_format_ms_precision(self):
        assert format_ms(0.123) == "0.1"
        assert format_ms(123.4) == "123"

    def test_format_table_aligns(self):
        table = format_table(["a", "bb"], [[1, 2], [33, 444]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(map(len, lines))) == 1  # all lines equal width


def _bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_datalog_engine",
        REPO_ROOT / "benchmarks" / "bench_datalog_engine.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _runs(streamed_ms, eager_ms, raw_ms, pruned=100):
    return {
        "quasi-guarded": {
            "ms": streamed_ms,
            "rules_pruned": pruned,
            "peak_live_rules": 10,
        },
        "quasi-guarded-eager": {"ms": eager_ms},
        "quasi-guarded-raw": {"ms": raw_ms},
    }


class TestEngineBaseline:
    """The checked-in BENCH_engine.json baseline and the CI gate logic
    around its quasi-guarded solver entries (schema v6: streamed vs
    eager vs raw, the solve_many shard record, the planner section, and
    the service sections owned by bench_solver_service.py)."""

    @pytest.fixture(scope="class")
    def payload(self):
        return json.loads((REPO_ROOT / "BENCH_engine.json").read_text())

    def test_schema_version(self, payload):
        bench = _bench_module()
        assert payload["schema"] == "bench-engine/v8"
        assert payload["schema"] == bench.SCHEMA_VERSION
        assert payload["benchmark"] == "benchmarks/bench_datalog_engine.py"

    def test_engine_workloads_shape(self, payload):
        for name, backends in payload["workloads"].items():
            for backend, run in backends.items():
                assert run["ms"] > 0, (name, backend)
                assert run["facts_derived"] > 0, (name, backend)

    def test_quasi_guarded_solver_entries(self, payload):
        solver = payload["solver_workloads"]
        assert any(n.startswith("solve-grid-") for n in solver)
        assert any(n.startswith("solve-grid2x-") for n in solver)
        assert any(n.startswith("solve-chain-") for n in solver)
        assert any(n.startswith("solve-tree-") for n in solver)
        for name, backends in solver.items():
            if name.startswith("solve-grid2x-"):
                # the width-2 Theorem 4.5 workload runs the streamed
                # production form plus the passes=() ablation (the
                # eager/raw forms ground the full 1.4M-rule cross
                # product)
                assert set(backends) == {
                    "quasi-guarded",
                    "quasi-guarded-nopasses",
                }
            else:
                assert set(backends) == {
                    "quasi-guarded",
                    "quasi-guarded-eager",
                    "quasi-guarded-raw",
                }
            for run in backends.values():
                assert run["ms"] > 0, name
                assert run["answers"] > 0, name
                assert run["ground_rules"] > 0, name
            streamed = backends["quasi-guarded"]
            assert streamed["rules_pruned"] > 0 or name.startswith(
                "solve-grid-"
            ), name
            assert streamed["peak_live_rules"] >= 0, name
            if "quasi-guarded-eager" not in backends:
                continue
            # the three pipelines agreed when the baseline was written
            eager = backends["quasi-guarded-eager"]
            raw = backends["quasi-guarded-raw"]
            assert (
                streamed["answers"] == eager["answers"] == raw["answers"]
            ), name
            # eager and raw materialize the same ground program; the
            # streamed emitter instantiates at most that many rules
            assert eager["ground_rules"] == raw["ground_rules"], name
            assert streamed["ground_rules"] <= eager["ground_rules"], name

    def test_recorded_speedups_meet_the_gates(self, payload):
        chains_and_trees = [
            n
            for n in payload["solver_speedups"]
            if n.startswith(("solve-chain-", "solve-tree-"))
        ]
        assert chains_and_trees
        for name in chains_and_trees:
            # streamed over the eager materializing ablation: >= 2x on
            # the tree solve, >= 1.3x on the chain solve (the minimized
            # Theorem 4.5 programs shrank eager's dead weight)
            required = 2 if name.startswith("solve-tree-") else 1.3
            assert payload["solver_speedups"][name] >= required, name

    def test_solve_many_record(self, payload):
        record = payload["solve_many"]
        assert record["identical"] is True
        assert record["batch_size"] > 1
        assert record["workers"] >= 2
        assert record["ms_workers_1"] > 0

    def test_solver_contract_gate_fires_below_2x_on_tree(self):
        bench = _bench_module()
        failures = bench.check_solver_contracts(
            "solve-tree-100", _runs(10.0, 15.0, 30.0)
        )
        assert any("2x" in f for f in failures)

    def test_solver_contract_gate_fires_below_1_3x_on_chain(self):
        bench = _bench_module()
        failures = bench.check_solver_contracts(
            "solve-chain-120", _runs(10.0, 12.0, 30.0)
        )
        assert any("1.3x" in f for f in failures)

    def test_solver_contract_gate_requires_pruning_on_grid2x(self):
        bench = _bench_module()
        failures = bench.check_solver_contracts(
            "solve-grid2x-20",
            {
                "quasi-guarded": {
                    "ms": 5.0,
                    "rules_pruned": 0,
                    "peak_live_rules": 10,
                }
            },
        )
        assert any("pruned no rules" in f for f in failures)

    def test_solver_contract_gate_passes_at_2x(self):
        bench = _bench_module()
        assert (
            bench.check_solver_contracts(
                "solve-chain-120", _runs(5.0, 15.0, 30.0)
            )
            == []
        )

    def test_solver_contract_gate_rejects_streamed_slower_than_raw(self):
        bench = _bench_module()
        failures = bench.check_solver_contracts(
            "solve-grid-8", _runs(40.0, 15.0, 30.0)
        )
        assert any("slower" in f for f in failures)

    def test_solver_contract_gate_requires_pruning(self):
        bench = _bench_module()
        failures = bench.check_solver_contracts(
            "solve-tree-100", _runs(5.0, 15.0, 30.0, pruned=0)
        )
        assert any("pruned no rules" in f for f in failures)

    def test_solver_contract_gate_keeps_eager_vs_raw_on_grid(self):
        bench = _bench_module()
        failures = bench.check_solver_contracts(
            "solve-grid-8", _runs(5.0, 20.0, 30.0)
        )
        assert any("2x" in f for f in failures)

    def test_quick_run_exercises_the_solver_gate(self):
        """The CI --quick invocation must include all three workload
        families, so every gate is actually exercised."""
        bench = _bench_module()
        names = [w["name"] for w in bench.solver_workloads(quick=True)]
        assert any(n.startswith("solve-grid-") for n in names)
        assert any(n.startswith("solve-grid2x-") for n in names)
        assert any(n.startswith("solve-chain-") for n in names)
        assert any(n.startswith("solve-tree-") for n in names)


class TestBaselineDrift:
    """The schema/shape drift gate between the harness and the
    checked-in BENCH_engine.json."""

    @staticmethod
    def _payload(schema="bench-engine/v8", quick=True):
        return {
            "schema": schema,
            "quick": quick,
            "workloads": {"chain-100": {}},
            "solver_workloads": {
                "solve-chain-120": {
                    "quasi-guarded": {},
                    "quasi-guarded-eager": {},
                    "quasi-guarded-raw": {},
                }
            },
            "planner": {"skew-join": {}, "nested-sigs": {}},
        }

    def test_no_previous_baseline_is_fine(self):
        bench = _bench_module()
        assert bench.check_baseline_drift(None, self._payload()) == []

    def test_identical_shapes_pass(self):
        bench = _bench_module()
        assert (
            bench.check_baseline_drift(self._payload(), self._payload())
            == []
        )

    def test_schema_mismatch_fails(self):
        bench = _bench_module()
        failures = bench.check_baseline_drift(
            self._payload(schema="bench-engine/v2"), self._payload()
        )
        assert any("schema" in f for f in failures)

    def test_workload_set_change_fails_same_quickness(self):
        bench = _bench_module()
        old = self._payload()
        old["workloads"] = {"chain-999": {}}
        failures = bench.check_baseline_drift(old, self._payload())
        assert any("workloads" in f for f in failures)

    def test_workload_set_change_tolerated_across_quickness(self):
        bench = _bench_module()
        old = self._payload(quick=False)
        old["workloads"] = {"chain-800": {}}
        old["solver_workloads"] = {}
        assert bench.check_baseline_drift(old, self._payload()) == []

    def test_solver_backend_set_change_fails(self):
        bench = _bench_module()
        old = self._payload()
        old["solver_workloads"]["solve-chain-120"] = {"quasi-guarded": {}}
        failures = bench.check_baseline_drift(old, self._payload())
        assert any("backends" in f for f in failures)

    def test_planner_workload_set_change_fails(self):
        bench = _bench_module()
        old = self._payload()
        old["planner"] = {"skew-join": {}}
        failures = bench.check_baseline_drift(old, self._payload())
        assert any("planner" in f for f in failures)

    def test_checked_in_baseline_matches_harness_schema(self):
        bench = _bench_module()
        checked_in = json.loads(
            (REPO_ROOT / "BENCH_engine.json").read_text()
        )
        assert checked_in["schema"] == bench.SCHEMA_VERSION


def _planner_record(
    static_ms=30.0,
    replanned_ms=10.0,
    bindings_static=1000,
    bindings_replanned=100,
    indexes_before=3,
    indexes_after=1,
    covered=True,
):
    return {
        "static_ms": static_ms,
        "replanned_ms": replanned_ms,
        "speedup": round(static_ms / replanned_ms, 2),
        "bindings_static": bindings_static,
        "bindings_replanned": bindings_replanned,
        "indexes_before": indexes_before,
        "indexes_after": indexes_after,
        "lex_indexes": indexes_after,
        "covered": covered,
    }


class TestPlannerBaseline:
    """The planner section of BENCH_engine.json (the schema-v6
    feedback-directed replanning comparison) and its CI gate logic."""

    @pytest.fixture(scope="class")
    def planner(self):
        payload = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
        return payload["planner"]

    def test_checked_in_records_shape(self, planner):
        assert set(planner) == {"skew-join", "nested-sigs"}
        for name, record in planner.items():
            assert record["static_ms"] > 0, name
            assert record["replanned_ms"] > 0, name
            assert record["bindings_static"] > 0, name
            assert record["covered"] is True, name
            assert (
                record["indexes_after"] <= record["indexes_before"]
            ), name

    def test_checked_in_records_pass_the_gates(self, planner):
        bench = _bench_module()
        for name, record in planner.items():
            assert bench.check_planner_contracts(name, record) == [], name

    def test_gate_fails_when_replanned_is_slower(self):
        bench = _bench_module()
        failures = bench.check_planner_contracts(
            "nested-sigs",
            _planner_record(static_ms=10.0, replanned_ms=20.0),
        )
        assert any("slower" in f for f in failures)

    def test_gate_requires_1_5x_on_the_skewed_join(self):
        bench = _bench_module()
        failures = bench.check_planner_contracts(
            "skew-join", _planner_record(static_ms=12.0, replanned_ms=10.0)
        )
        assert any("1.5x" in f for f in failures)

    def test_gate_requires_fewer_bindings_on_the_skewed_join(self):
        bench = _bench_module()
        failures = bench.check_planner_contracts(
            "skew-join", _planner_record(bindings_replanned=1000)
        )
        assert any("bindings" in f for f in failures)

    def test_gate_requires_index_sharing_on_nested_sigs(self):
        bench = _bench_module()
        failures = bench.check_planner_contracts(
            "nested-sigs",
            _planner_record(indexes_before=2, indexes_after=2),
        )
        assert any("sharing" in f for f in failures)

    def test_gate_requires_signature_coverage(self):
        bench = _bench_module()
        failures = bench.check_planner_contracts(
            "skew-join", _planner_record(covered=False)
        )
        assert any("uncovered" in f for f in failures)


def _service_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_solver_service",
        REPO_ROOT / "benchmarks" / "bench_solver_service.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _service_record(
    identical=True, p50=10.0, p95=40.0, speedup=3.5, applied=True, workers=4
):
    return {
        "identical": identical,
        "workers": workers,
        "speedup": speedup,
        "latency_ms": {"p50": p50, "p95": p95},
        "gate": {"applied": applied, "required_speedup": 3.0},
    }


class TestServiceThroughput:
    """The service_throughput section of BENCH_engine.json (owned by
    bench_solver_service.py) and its CI gate logic."""

    @pytest.fixture(scope="class")
    def record(self):
        payload = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
        return payload["service_throughput"]

    def test_harness_schemas_agree(self):
        # both harnesses write sections of the same baseline file; a
        # schema bump in one without the other silently forks them
        assert (
            _service_bench_module().ENGINE_SCHEMA
            == _bench_module().SCHEMA_VERSION
        )

    def test_checked_in_record_shape(self, record):
        assert record["identical"] is True
        assert record["workers"] >= 2
        assert record["requests"] > 0
        assert record["serial_ms"] > 0
        assert record["service_ms"] > 0
        assert record["latency_ms"]["p50"] > 0
        assert record["latency_ms"]["p95"] >= record["latency_ms"]["p50"]
        assert set(record["traffic"]) >= {"chain", "tree", "ladder"}
        warm = record["warm_vs_cold"]
        assert warm["warm_service_ms"] > 0
        assert warm["cold_pool_ms"] > 0

    def test_checked_in_record_passes_the_gate(self, record):
        bench = _service_bench_module()
        assert bench.check_service_contracts(record) == []

    def test_gate_passes_on_good_record(self):
        bench = _service_bench_module()
        assert bench.check_service_contracts(_service_record()) == []

    def test_gate_fails_on_answer_divergence(self):
        bench = _service_bench_module()
        failures = bench.check_service_contracts(
            _service_record(identical=False)
        )
        assert any("differ" in f for f in failures)

    def test_gate_fails_on_inverted_percentiles(self):
        bench = _service_bench_module()
        failures = bench.check_service_contracts(
            _service_record(p50=40.0, p95=10.0)
        )
        assert any("p95" in f for f in failures)

    def test_gate_fails_on_zero_p50(self):
        bench = _service_bench_module()
        failures = bench.check_service_contracts(_service_record(p50=0.0))
        assert any("p50" in f for f in failures)

    def test_gate_fails_below_3x_when_applied(self):
        bench = _service_bench_module()
        failures = bench.check_service_contracts(
            _service_record(speedup=2.1)
        )
        assert any("below the required" in f for f in failures)

    def test_speedup_recorded_but_not_gated_on_small_machines(self):
        # a pool cannot beat a serial loop without cores to run on; on
        # a 1-core runner the speedup is trend data, not a contract
        bench = _service_bench_module()
        assert (
            bench.check_service_contracts(
                _service_record(speedup=0.1, applied=False)
            )
            == []
        )

    def test_skipped_gate_records_an_explicit_reason(self):
        # a skipped gate must say why -- never look like a silently
        # waived contract
        bench = _service_bench_module()
        assert bench.gate_skipped_reason(4, 4) is None
        low_cores = bench.gate_skipped_reason(2, 4)
        assert "2 effective cores" in low_cores
        few_workers = bench.gate_skipped_reason(8, 2)
        assert "2 workers" in few_workers

    def test_checked_in_gate_reason_consistent(self, record):
        gate = record["gate"]
        assert "skipped_reason" in gate
        assert (gate["skipped_reason"] is None) == gate["applied"]

    def test_traffic_capped_on_low_core_machines(self):
        # below the gate's core count the run is trend data only, so
        # the default request volume is halved
        bench = _service_bench_module()
        full, full_shape = bench.build_traffic(True, cpus=8)
        capped, capped_shape = bench.build_traffic(True, cpus=2)
        assert not full_shape["capped_for_low_cores"]
        assert capped_shape["capped_for_low_cores"]
        assert len(capped) < len(full)


def _resilience_record(
    identical=True,
    failed=0,
    poisoned=0,
    restarts=3,
    recovery_count=3,
    p50=60.0,
    p95=200.0,
):
    return {
        "identical": identical,
        "requests": 10,
        "fault_plan": "crash@worker.solve+1",
        "clean_ms": 500.0,
        "faulty_ms": 900.0,
        "goodput": {
            "clean_solves_per_sec": 20.0,
            "faulty_solves_per_sec": 11.1,
            "degradation": 1.8,
        },
        "recovery_ms": {"count": recovery_count, "p50": p50, "p95": p95},
        "scheduler": {
            "worker_restarts": restarts,
            "shards_resubmitted": restarts,
            "retries": restarts,
            "completed": 10,
            "failed": failed,
            "poisoned": poisoned,
        },
    }


class TestServiceResilience:
    """The service_resilience section of BENCH_engine.json (the v5
    --faults mode of bench_solver_service.py) and its CI gate."""

    @pytest.fixture(scope="class")
    def record(self):
        payload = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
        return payload["service_resilience"]

    def test_checked_in_record_shape(self, record):
        assert record["identical"] is True
        assert record["requests"] > 0
        assert record["fault_plan"]  # the run really injected faults
        assert record["clean_ms"] > 0
        assert record["faulty_ms"] > 0
        assert record["goodput"]["degradation"] is not None
        assert record["recovery_ms"]["count"] >= 1
        assert record["recovery_ms"]["p50"] > 0
        assert (
            record["recovery_ms"]["p95"] >= record["recovery_ms"]["p50"]
        )
        scheduler = record["scheduler"]
        assert scheduler["worker_restarts"] >= 1
        assert scheduler["failed"] == 0
        assert scheduler["poisoned"] == 0
        assert scheduler["completed"] == record["requests"]

    def test_checked_in_record_passes_the_gate(self, record):
        bench = _service_bench_module()
        assert bench.check_resilience_contracts(record) == []

    def test_gate_passes_on_good_record(self):
        bench = _service_bench_module()
        assert (
            bench.check_resilience_contracts(_resilience_record()) == []
        )

    def test_gate_fails_on_answer_divergence(self):
        bench = _service_bench_module()
        failures = bench.check_resilience_contracts(
            _resilience_record(identical=False)
        )
        assert any("differ" in f for f in failures)

    def test_gate_fails_on_lost_requests(self):
        bench = _service_bench_module()
        failures = bench.check_resilience_contracts(
            _resilience_record(failed=1)
        )
        assert any("lost" in f for f in failures)
        failures = bench.check_resilience_contracts(
            _resilience_record(poisoned=1)
        )
        assert any("lost" in f for f in failures)

    def test_gate_fails_when_faults_never_fired(self):
        bench = _service_bench_module()
        failures = bench.check_resilience_contracts(
            _resilience_record(restarts=0)
        )
        assert any("never fired" in f for f in failures)

    def test_gate_fails_on_missing_or_bad_recovery_latency(self):
        bench = _service_bench_module()
        failures = bench.check_resilience_contracts(
            _resilience_record(recovery_count=0)
        )
        assert any("recovery" in f for f in failures)
        failures = bench.check_resilience_contracts(
            _resilience_record(p50=200.0, p95=60.0)
        )
        assert any("p95" in f for f in failures)


def _admission_record(
    ratio=1.01,
    identical=True,
    requests=11,
    resolved=11,
    rejected=2,
    expected_rejected=2,
    verdicts_ok=True,
    restarts=0,
):
    return {
        "overhead": {
            "requests": 10,
            "repeats": 3,
            "legacy_ms": 100.0,
            "admission_ms": 100.0 * ratio,
            "ratio": ratio,
            "limit": 1.05,
            "identical": identical,
        },
        "containment": {
            "corpus": "tests/data/malformed",
            "requests": requests,
            "resolved": resolved,
            "rejected": rejected,
            "expected_rejected": expected_rejected,
            "verdicts_as_declared": verdicts_ok,
            "worker_restarts": restarts,
            "stats": {
                "admitted": 1,
                "repaired": 7,
                "degraded": 1,
                "admission_rejected": rejected,
            },
        },
    }


class TestAdmissionSection:
    """The admission section of BENCH_engine.json (the v7 --admission
    mode of bench_solver_service.py) and its CI gate."""

    @pytest.fixture(scope="class")
    def record(self):
        payload = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
        return payload["admission"]

    def test_checked_in_record_shape(self, record):
        overhead = record["overhead"]
        assert overhead["identical"] is True
        assert overhead["legacy_ms"] > 0
        assert overhead["admission_ms"] > 0
        assert overhead["ratio"] <= overhead["limit"]
        containment = record["containment"]
        assert containment["requests"] >= 10
        assert containment["resolved"] == containment["requests"]
        assert containment["rejected"] == containment["expected_rejected"]
        assert containment["verdicts_as_declared"] is True
        assert containment["worker_restarts"] == 0

    def test_checked_in_record_passes_the_gate(self, record):
        bench = _service_bench_module()
        assert bench.check_admission_contracts(record) == []

    def test_gate_passes_on_good_record(self):
        bench = _service_bench_module()
        assert bench.check_admission_contracts(_admission_record()) == []

    def test_gate_fails_over_the_overhead_limit(self):
        bench = _service_bench_module()
        failures = bench.check_admission_contracts(
            _admission_record(ratio=1.2)
        )
        assert any("overhead" in f for f in failures)

    def test_gate_fails_on_answer_divergence(self):
        bench = _service_bench_module()
        failures = bench.check_admission_contracts(
            _admission_record(identical=False)
        )
        assert any("differ" in f for f in failures)

    def test_gate_fails_on_hung_requests(self):
        bench = _service_bench_module()
        failures = bench.check_admission_contracts(
            _admission_record(resolved=9)
        )
        assert any("hung" in f for f in failures)

    def test_gate_fails_on_wrong_verdicts(self):
        bench = _service_bench_module()
        failures = bench.check_admission_contracts(
            _admission_record(rejected=3)
        )
        assert any("rejections" in f for f in failures)
        failures = bench.check_admission_contracts(
            _admission_record(verdicts_ok=False)
        )
        assert any("verdicts" in f for f in failures)

    def test_gate_fails_on_worker_deaths(self):
        bench = _service_bench_module()
        failures = bench.check_admission_contracts(
            _admission_record(restarts=1)
        )
        assert any("kill a worker" in f for f in failures)


class TestLinearFit:
    def test_exact_line(self):
        fit = fit_linear([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2)
        assert fit.intercept == pytest.approx(1)
        assert fit.r_squared == pytest.approx(1)
        assert fit.is_convincingly_linear

    def test_noise_lowers_r_squared(self):
        fit = fit_linear([1, 2, 3, 4], [1, 10, 2, 12])
        assert fit.r_squared < 0.9

    def test_degenerate_inputs_raise(self):
        with pytest.raises(ValueError):
            fit_linear([1], [1])
        with pytest.raises(ValueError):
            fit_linear([2, 2], [1, 3])
