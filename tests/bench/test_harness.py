"""Tests for the benchmark harness utilities."""

import pytest

from repro.bench import fit_linear, format_ms, format_table, time_ms


class TestTiming:
    def test_time_ms_positive(self):
        assert time_ms(lambda: sum(range(1000))) > 0

    def test_repeat_takes_best(self):
        calls = []

        def fn():
            calls.append(1)

        time_ms(fn, repeat=4)
        assert len(calls) == 4


class TestFormatting:
    def test_format_ms_dash_for_none(self):
        assert format_ms(None) == "-"

    def test_format_ms_precision(self):
        assert format_ms(0.123) == "0.1"
        assert format_ms(123.4) == "123"

    def test_format_table_aligns(self):
        table = format_table(["a", "bb"], [[1, 2], [33, 444]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(map(len, lines))) == 1  # all lines equal width


class TestLinearFit:
    def test_exact_line(self):
        fit = fit_linear([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2)
        assert fit.intercept == pytest.approx(1)
        assert fit.r_squared == pytest.approx(1)
        assert fit.is_convincingly_linear

    def test_noise_lowers_r_squared(self):
        fit = fit_linear([1, 2, 3, 4], [1, 10, 2, 12])
        assert fit.r_squared < 0.9

    def test_degenerate_inputs_raise(self):
        with pytest.raises(ValueError):
            fit_linear([1], [1])
        with pytest.raises(ValueError):
            fit_linear([2, 2], [1, 3])
