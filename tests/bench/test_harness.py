"""Tests for the benchmark harness utilities and the engine baseline."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.bench import fit_linear, format_ms, format_table, time_ms

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestTiming:
    def test_time_ms_positive(self):
        assert time_ms(lambda: sum(range(1000))) > 0

    def test_repeat_takes_best(self):
        calls = []

        def fn():
            calls.append(1)

        time_ms(fn, repeat=4)
        assert len(calls) == 4


class TestFormatting:
    def test_format_ms_dash_for_none(self):
        assert format_ms(None) == "-"

    def test_format_ms_precision(self):
        assert format_ms(0.123) == "0.1"
        assert format_ms(123.4) == "123"

    def test_format_table_aligns(self):
        table = format_table(["a", "bb"], [[1, 2], [33, 444]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(map(len, lines))) == 1  # all lines equal width


def _bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_datalog_engine",
        REPO_ROOT / "benchmarks" / "bench_datalog_engine.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestEngineBaseline:
    """The checked-in BENCH_engine.json baseline and the CI gate logic
    around its new quasi-guarded solver entries."""

    @pytest.fixture(scope="class")
    def payload(self):
        return json.loads((REPO_ROOT / "BENCH_engine.json").read_text())

    def test_schema_version(self, payload):
        assert payload["schema"] == "bench-engine/v2"
        assert payload["benchmark"] == "benchmarks/bench_datalog_engine.py"

    def test_engine_workloads_shape(self, payload):
        for name, backends in payload["workloads"].items():
            for backend, run in backends.items():
                assert run["ms"] > 0, (name, backend)
                assert run["facts_derived"] > 0, (name, backend)

    def test_quasi_guarded_solver_entries(self, payload):
        solver = payload["solver_workloads"]
        assert any(n.startswith("solve-grid-") for n in solver)
        assert any(n.startswith("solve-chain-") for n in solver)
        assert any(n.startswith("solve-tree-") for n in solver)
        for name, backends in solver.items():
            assert set(backends) == {"quasi-guarded", "quasi-guarded-raw"}
            for run in backends.values():
                assert run["ms"] > 0, name
                assert run["answers"] > 0, name
                assert run["ground_rules"] > 0, name
            # the two pipelines agreed when the baseline was written
            assert (
                backends["quasi-guarded"]["answers"]
                == backends["quasi-guarded-raw"]["answers"]
            ), name
            assert (
                backends["quasi-guarded"]["ground_rules"]
                == backends["quasi-guarded-raw"]["ground_rules"]
            ), name

    def test_recorded_grid_speedup_meets_the_gate(self, payload):
        grids = [
            n
            for n in payload["solver_speedups"]
            if n.startswith("solve-grid-")
        ]
        assert grids
        for name in grids:
            assert payload["solver_speedups"][name] >= 2, name

    def test_solver_contract_gate_fires_below_2x_on_grid(self):
        bench = _bench_module()
        runs = {
            "quasi-guarded": {"ms": 10.0},
            "quasi-guarded-raw": {"ms": 15.0},
        }
        failures = bench.check_solver_contracts("solve-grid-8", runs)
        assert any("2x" in f for f in failures)

    def test_solver_contract_gate_passes_at_2x_on_grid(self):
        bench = _bench_module()
        runs = {
            "quasi-guarded": {"ms": 5.0},
            "quasi-guarded-raw": {"ms": 15.0},
        }
        assert bench.check_solver_contracts("solve-grid-8", runs) == []

    def test_solver_contract_gate_rejects_interned_slower_anywhere(self):
        bench = _bench_module()
        runs = {
            "quasi-guarded": {"ms": 20.0},
            "quasi-guarded-raw": {"ms": 15.0},
        }
        failures = bench.check_solver_contracts("solve-chain-120", runs)
        assert any("slower" in f for f in failures)

    def test_quick_run_exercises_the_solver_gate(self):
        """The CI --quick invocation must include a grid solver
        workload, so the 2x gate is actually exercised."""
        bench = _bench_module()
        names = [w[0] for w in bench.solver_workloads(quick=True)]
        assert any(n.startswith("solve-grid-") for n in names)
        assert any(n.startswith("solve-chain-") for n in names)
        assert any(n.startswith("solve-tree-") for n in names)


class TestLinearFit:
    def test_exact_line(self):
        fit = fit_linear([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2)
        assert fit.intercept == pytest.approx(1)
        assert fit.r_squared == pytest.approx(1)
        assert fit.is_convincingly_linear

    def test_noise_lowers_r_squared(self):
        fit = fit_linear([1, 2, 3, 4], [1, 10, 2, 12])
        assert fit.r_squared < 0.9

    def test_degenerate_inputs_raise(self):
        with pytest.raises(ValueError):
            fit_linear([1], [1])
        with pytest.raises(ValueError):
            fit_linear([2, 2], [1, 3])
