"""Tests for the Table 1 experiment driver."""

from repro.bench import (
    PAPER_MD_MS,
    PAPER_MONA_MS,
    md_linearity,
    render_table1,
    run_table1,
)


class TestDriver:
    def test_paper_columns_well_formed(self):
        assert len(PAPER_MD_MS) == len(PAPER_MONA_MS) == 11
        # the paper's MONA column has measurements only for the first 3 rows
        assert all(v is None for v in PAPER_MONA_MS[3:])

    def test_small_run_shape(self):
        rows = run_table1(max_rows=2, repeat=1, include_datalog=False,
                          mona_budget_steps=50_000)
        assert len(rows) == 2
        first = rows[0]
        assert first.num_attributes == 3 and first.num_fds == 1
        assert first.md_ms > 0
        assert first.paper_md_ms == 0.1

    def test_mona_budget_exhaustion_yields_dash(self):
        rows = run_table1(max_rows=2, repeat=1, include_datalog=False,
                          mona_budget_steps=10)
        assert all(row.mona_ms is None for row in rows)

    def test_render_contains_all_columns(self):
        rows = run_table1(max_rows=1, repeat=1, include_datalog=False,
                          mona_budget_steps=10)
        text = render_table1(rows)
        for token in ("tw", "#Att", "#FD", "#tn", "MD (ms)", "paper MONA"):
            assert token in text
        assert "-" in text  # the dash for the exhausted MONA stand-in

    def test_linearity_fit_runs(self):
        rows = run_table1(max_rows=3, repeat=1, include_datalog=False,
                          mona_budget_steps=10)
        fit = md_linearity(rows)
        assert fit.slope == fit.slope  # not NaN
