"""Tests for the MSO-to-FTA baseline route."""

import random

import pytest

from repro.fta import (
    FTAConstructionBudgetExceeded,
    build_type_automaton,
    decomposition_to_tree,
)
from repro.mso import And, ExistsInd, Not, RelAtom, evaluate
from repro.structures import Signature, Structure
from repro.treewidth import decompose_structure, encode_normalized, normalize, widen

PSIG = Signature.of(p=1)
SENTENCE = ExistsInd(
    "x", And(RelAtom("p", ("x",)), ExistsInd("y", Not(RelAtom("p", ("y",)))))
)


@pytest.fixture(scope="module")
def automaton():
    return build_type_automaton(SENTENCE, PSIG, width=1)


class TestConstruction:
    def test_states_are_types_with_accepting_subset(self, automaton):
        assert 0 < len(automaton.accepting) < automaton.state_count()

    def test_budget_raises(self):
        with pytest.raises(FTAConstructionBudgetExceeded):
            build_type_automaton(SENTENCE, PSIG, width=1, max_states=3)


class TestAgreement:
    def test_matches_direct_evaluation(self, automaton):
        rng = random.Random(99)
        for _ in range(10):
            n = rng.randint(2, 6)
            dom = list(range(n))
            pset = {(x,) for x in dom if rng.random() < 0.5}
            structure = Structure(PSIG, dom, {"p": pset})
            want = evaluate(structure, SENTENCE)
            td = decompose_structure(structure)
            if td.width < 1:
                td = widen(td, 1)
            ntd = normalize(td)
            tree = decomposition_to_tree(structure, ntd)
            assert automaton.accepts(tree) == want

    def test_matches_compiled_datalog(self, automaton):
        """FTA route == Theorem 4.5 route on the same inputs."""
        from repro.core import (
            ANSWER_PREDICATE,
            QuasiGuardedEvaluator,
            compile_sentence,
        )

        compiled = compile_sentence(SENTENCE, PSIG, width=1)
        evaluator = QuasiGuardedEvaluator(
            compiled.program, dependencies=compiled.dependencies()
        )
        rng = random.Random(5)
        for _ in range(6):
            n = rng.randint(2, 6)
            dom = list(range(n))
            pset = {(x,) for x in dom if rng.random() < 0.4}
            structure = Structure(PSIG, dom, {"p": pset})
            td = decompose_structure(structure)
            if td.width < 1:
                td = widen(td, 1)
            ntd = normalize(td)
            datalog_answer = evaluator.evaluate(
                encode_normalized(structure, ntd)
            ).holds(ANSWER_PREDICATE)
            fta_answer = automaton.accepts(
                decomposition_to_tree(structure, ntd)
            )
            assert datalog_answer == fta_answer

    def test_state_count_matches_compiler_up_table(self):
        """Both routes enumerate the same Θ↑ type space."""
        from repro.core import compile_sentence

        compiled = compile_sentence(SENTENCE, PSIG, width=1)
        automaton = build_type_automaton(SENTENCE, PSIG, width=1)
        assert automaton.state_count() == compiled.up_type_count
