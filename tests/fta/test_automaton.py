"""Tests for bottom-up finite tree automata."""

import pytest

from repro.fta import LabeledTree, TreeAutomaton


def leaf(label="a"):
    return LabeledTree(label)


def node(label, *children):
    return LabeledTree(label, tuple(children))


@pytest.fixture
def parity_automaton():
    """Accepts trees with an odd number of 'x' leaves (binary 'n' nodes)."""
    transitions = {
        ("x",): {"odd"},
        ("o",): {"even"},
        ("n", "odd", "odd"): {"even"},
        ("n", "even", "even"): {"even"},
        ("n", "odd", "even"): {"odd"},
        ("n", "even", "odd"): {"odd"},
    }
    return TreeAutomaton({"odd", "even"}, {"odd"}, transitions)


class TestLabeledTree:
    def test_size_and_depth(self):
        t = node("n", leaf("x"), node("n", leaf("x"), leaf("o")))
        assert t.size() == 5
        assert t.depth() == 3
        assert list(t.labels()).count("x") == 2

    def test_rejects_ternary(self):
        with pytest.raises(ValueError):
            LabeledTree("n", (leaf(), leaf(), leaf()))


class TestRuns:
    def test_accepts_odd(self, parity_automaton):
        assert parity_automaton.accepts(leaf("x"))
        assert parity_automaton.accepts(
            node("n", leaf("x"), node("n", leaf("x"), leaf("x")))
        )

    def test_rejects_even(self, parity_automaton):
        assert not parity_automaton.accepts(leaf("o"))
        assert not parity_automaton.accepts(node("n", leaf("x"), leaf("x")))

    def test_missing_transition_rejects(self, parity_automaton):
        assert not parity_automaton.accepts(leaf("unknown"))

    def test_run_states(self, parity_automaton):
        assert parity_automaton.run_states(leaf("x")) == frozenset({"odd"})

    def test_nondeterministic_union(self):
        fta = TreeAutomaton(
            {"q1", "q2"},
            {"q2"},
            {("a",): {"q1", "q2"}, ("f", "q1"): {"q1"}},
        )
        assert fta.accepts(leaf("a"))  # via q2
        assert not fta.accepts(node("f", leaf("a")))  # q2 dies, q1 not accepting


class TestValidation:
    def test_unknown_accepting_state_rejected(self):
        with pytest.raises(ValueError):
            TreeAutomaton({"q"}, {"r"}, {})

    def test_unknown_transition_target_rejected(self):
        with pytest.raises(ValueError):
            TreeAutomaton({"q"}, set(), {("a",): {"zz"}})


class TestDeterminization:
    def test_preserves_language(self, parity_automaton):
        det = parity_automaton.determinize()
        trees = [
            leaf("x"),
            leaf("o"),
            node("n", leaf("x"), leaf("o")),
            node("n", leaf("x"), leaf("x")),
            node("n", node("n", leaf("x"), leaf("x")), leaf("x")),
        ]
        for t in trees:
            assert det.accepts(t) == parity_automaton.accepts(t)

    def test_deterministic_runs_are_singletons(self, parity_automaton):
        det = parity_automaton.determinize()
        t = node("n", leaf("x"), leaf("o"))
        assert len(det.run_states(t)) == 1

    def test_subset_blowup_possible(self):
        """Determinisation can grow the state count -- the mechanism
        behind the paper's 'state explosion' (Section 1)."""
        nfa = TreeAutomaton(
            {"a1", "a2", "b"},
            {"b"},
            {
                ("l",): {"a1", "a2"},
                ("u", "a1"): {"a1", "b"},
                ("u", "a2"): {"a2"},
            },
        )
        det = nfa.determinize()
        assert det.state_count() >= nfa.state_count()
