"""Tests for the decomposition-to-labeled-tree encoding."""

from repro.fta import bag_pattern, decomposition_to_tree
from repro.structures import Graph, graph_to_structure
from repro.treewidth import decompose_graph, normalize
from repro.treewidth.normalize import NormalizedNodeKind


def encoded(graph):
    structure = graph_to_structure(graph)
    ntd = normalize(decompose_graph(graph))
    return structure, ntd, decomposition_to_tree(structure, ntd)


class TestBagPattern:
    def test_pattern_abstracts_to_positions(self):
        s = graph_to_structure(Graph.path(2))
        pattern = bag_pattern(s, (0, 1))
        assert ("e", (0, 1)) in pattern
        assert ("e", (1, 0)) in pattern
        assert ("e", (0, 0)) not in pattern

    def test_pattern_is_label_invariant(self):
        s1 = graph_to_structure(Graph(vertices=[0, 1], edges=[(0, 1)]))
        s2 = graph_to_structure(Graph(vertices=["u", "v"], edges=[("u", "v")]))
        assert bag_pattern(s1, (0, 1)) == bag_pattern(s2, ("u", "v"))


class TestTreeShape:
    def test_node_count_matches(self):
        _, ntd, tree = encoded(Graph.cycle(6))
        assert tree.size() == ntd.node_count()

    def test_labels_match_node_kinds(self):
        _, ntd, tree = encoded(Graph.grid(2, 3))
        kinds = {ntd.node_kind(n) for n in ntd.tree.nodes()}
        labels = {lbl[0] for lbl in tree.labels()}
        expected = set()
        if NormalizedNodeKind.LEAF in kinds:
            expected.add("leaf")
        if NormalizedNodeKind.BRANCH in kinds:
            expected.add("branch")
        if NormalizedNodeKind.PERMUTATION in kinds:
            expected.add("perm")
        if NormalizedNodeKind.ELEMENT_REPLACEMENT in kinds:
            expected.add("repl")
        assert labels == expected

    def test_perm_label_orients_parent_from_child(self):
        _, ntd, _ = encoded(Graph.cycle(5))
        structure = graph_to_structure(Graph.cycle(5))
        for n in ntd.tree.nodes():
            if ntd.node_kind(n) is NormalizedNodeKind.PERMUTATION:
                (child,) = ntd.tree.children(n)
                child_bag, bag = ntd.bag(child), ntd.bag(n)
                position = {x: i for i, x in enumerate(child_bag)}
                pi = tuple(position[x] for x in bag)
                assert tuple(child_bag[pi[i]] for i in range(len(pi))) == bag
