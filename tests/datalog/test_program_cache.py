"""The compiled-program cache: hits, misses, isolation."""

from repro.datalog import (
    BuiltinRegistry,
    Database,
    ProgramCache,
    atom,
    const,
    default_cache,
    make_check,
    parse_program,
    program_fingerprint,
    solve,
    var,
)

from ..conftest import TC_TEXT, chain_edges as chain_db


class TestFingerprint:
    def test_reparsed_program_same_fingerprint(self):
        assert program_fingerprint(parse_program(TC_TEXT)) == (
            program_fingerprint(parse_program(TC_TEXT))
        )

    def test_changed_program_different_fingerprint(self):
        other = parse_program(TC_TEXT + "\nloop(X) :- path(X, X).")
        assert program_fingerprint(parse_program(TC_TEXT)) != (
            program_fingerprint(other)
        )


class TestFingerprintCollisions:
    """str()-alike programs must not share cache entries."""

    def test_constant_type_distinguished(self):
        from repro.datalog import Atom, Constant, Literal, Program, Rule, Variable

        X = Variable("X")
        int_zero = Program(
            [Rule(Atom("q", (X,)), (Literal(Atom("edge", (X, Constant(0)))),))]
        )
        str_zero = Program(
            [Rule(Atom("q", (X,)), (Literal(Atom("edge", (X, Constant("0")))),))]
        )
        assert program_fingerprint(int_zero) != program_fingerprint(str_zero)
        db = Database()
        db.add("edge", (1, "0"))
        db.add("edge", (2, 0))
        cache = ProgramCache()
        assert solve(int_zero, db, cache=cache).relation("q") == {(2,)}
        assert solve(str_zero, db, cache=cache).relation("q") == {(1,)}

    def test_variable_vs_constant_query_key(self):
        from repro.datalog import Atom, Constant, Literal, Program, Rule, Variable

        X = Variable("X")
        program = Program(
            [Rule(Atom("q", (X,)), (Literal(Atom("edge", (X, Variable("A")))),))]
        )
        db = Database()
        db.add("edge", (1, "x"))
        cache = ProgramCache()
        free = solve(
            program, db, backend="magic",
            query=Atom("q", (Variable("A"),)), cache=cache,
        )
        bound = solve(
            program, db, backend="magic",
            query=Atom("q", (Constant("A"),)), cache=cache,
        )
        assert free.relation("q") == {(1,)}
        assert bound.relation("q") == set()


class TestCacheHits:
    def test_resolve_different_structure_hits(self):
        """Same program text, new Program object, new structure: the
        planning work is reused, only the data half re-runs."""
        cache = ProgramCache()
        first = solve(
            parse_program(TC_TEXT), chain_db(5), backend="semi-naive",
            cache=cache,
        )
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        second = solve(
            parse_program(TC_TEXT), chain_db(9), backend="semi-naive",
            cache=cache,
        )
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert len(first.relation("path")) == 5 * 4 // 2
        assert len(second.relation("path")) == 9 * 8 // 2

    def test_magic_rewrite_cached_per_query(self):
        cache = ProgramCache()
        query = atom("path", const(0), var("Y"))
        for n in (4, 7, 11):
            solve(
                parse_program(TC_TEXT), chain_db(n), backend="magic",
                query=query, cache=cache,
            )
        assert cache.stats.misses == 1 and cache.stats.hits == 2
        # a different binding pattern is a different rewrite
        solve(
            parse_program(TC_TEXT), chain_db(4), backend="magic",
            query="path", cache=cache,
        )
        assert cache.stats.misses == 2

    def test_program_change_misses(self):
        cache = ProgramCache()
        solve(parse_program(TC_TEXT), chain_db(4), cache=cache)
        solve(
            parse_program(TC_TEXT + "\nloop(X) :- path(X, X)."),
            chain_db(4),
            cache=cache,
        )
        assert cache.stats.misses == 2 and cache.stats.hits == 0

    def test_eviction_is_bounded(self):
        cache = ProgramCache(maxsize=1)
        solve(parse_program(TC_TEXT), chain_db(4), cache=cache)
        solve(
            parse_program("p(X) :- edge(X, Y)."), chain_db(4), cache=cache
        )
        assert len(cache) == 1
        assert cache.stats.evictions == 1


class TestNoCrossContamination:
    def test_interleaved_programs_keep_their_answers(self):
        cache = ProgramCache()
        forward = parse_program("next(X, Y) :- edge(X, Y).")
        backward = parse_program("next(X, Y) :- edge(Y, X).")
        db = Database()
        db.add("edge", (1, 2))
        for _ in range(2):
            assert solve(forward, db, cache=cache).relation("next") == {
                (1, 2)
            }
            assert solve(backward, db, cache=cache).relation("next") == {
                (2, 1)
            }
        assert cache.stats.hits == 2 and cache.stats.misses == 2

    def test_same_named_builtins_different_semantics_do_not_collide(self):
        """Registries enter the key by identity: primality_registry-
        style schema-specific built-ins must not share plans/results."""
        program_text = "even(X) :- node(X), test(X)."
        db = Database()
        for i in range(6):
            db.add("node", (i,))
        cache = ProgramCache()

        def registry_with(test):
            registry = BuiltinRegistry()
            registry.register(make_check("test", 1, test))
            return registry

        evens = solve(
            parse_program(program_text),
            db,
            cache=cache,
            registry=registry_with(lambda x: x % 2 == 0),
        )
        odds = solve(
            parse_program(program_text),
            db,
            cache=cache,
            registry=registry_with(lambda x: x % 2 == 1),
        )
        assert evens.relation("even") == {(0,), (2,), (4,)}
        assert odds.relation("even") == {(1,), (3,), (5,)}
        assert cache.stats.misses == 2

    def test_evaluations_do_not_leak_facts_between_structures(self):
        cache = ProgramCache()
        program = parse_program(TC_TEXT)
        solve(program, chain_db(9), cache=cache)
        small = solve(program, chain_db(3), cache=cache)
        assert small.relation("path") == {(0, 1), (1, 2), (0, 2)}


class TestGroundingCache:
    def test_quasi_guarded_evaluators_share_plans(self):
        from repro.core import QuasiGuardedEvaluator
        from repro.datalog import td_key_dependencies

        program = parse_program(
            """
            solve(V) :- leaf(V).
            solve(V) :- child1(V, W), solve(W).
            """
        )
        deps = td_key_dependencies(1)
        cache = ProgramCache()
        QuasiGuardedEvaluator(program, dependencies=deps, cache=cache)
        assert cache.stats.misses == 1
        QuasiGuardedEvaluator(program, dependencies=deps, cache=cache)
        assert cache.stats.hits == 1

    def test_single_pass_variants_never_alias(self):
        """The single-pass flag is part of the grounding cache key: the
        same program prepared with and without the deferred-sink route
        must get *distinct* entries (a collision would hand the
        multi-pass evaluator plans whose sink rules fire only once, or
        vice versa), and both variants stay warm side by side."""
        from repro.core import QuasiGuardedEvaluator
        from repro.datalog import td_key_dependencies

        program = parse_program(
            """
            solve(V) :- leaf(V).
            solve(V) :- child1(V, W), solve(W).
            top(V) :- leaf(V), solve(V).
            """
        )
        deps = td_key_dependencies(1)
        cache = ProgramCache()
        fast = QuasiGuardedEvaluator(
            program, dependencies=deps, cache=cache, single_pass=True
        )
        slow = QuasiGuardedEvaluator(
            program, dependencies=deps, cache=cache, single_pass=False
        )
        assert cache.stats.misses == 2
        assert fast._prepared is not slow._prepared
        assert fast._prepared.deferred == frozenset({"top"})
        assert slow._prepared.deferred == frozenset()
        # a repeat of each variant hits its own entry, not the other's
        again_fast = QuasiGuardedEvaluator(
            program, dependencies=deps, cache=cache, single_pass=True
        )
        again_slow = QuasiGuardedEvaluator(
            program, dependencies=deps, cache=cache, single_pass=False
        )
        assert cache.stats.hits == 2
        assert again_fast._prepared is fast._prepared
        assert again_slow._prepared is slow._prepared

    def test_differently_optimized_solvers_share_one_cache(self):
        """Fold/unfold solver variants cached side by side answer
        identically: their programs have different fingerprints, and
        clones via with_backend/replanned keep the variant's own
        single-pass grounding (the satellite regression for pass-config
        fingerprinting)."""
        from repro.core import CourcelleSolver, undirected_graph_filter
        from repro.mso import formulas
        from repro.structures import GRAPH_SIGNATURE, Graph, graph_to_structure

        cache = ProgramCache()

        def build(passes):
            return CourcelleSolver(
                formulas.has_neighbor("x"),
                GRAPH_SIGNATURE,
                width=1,
                free_var="x",
                structure_filter=undirected_graph_filter,
                cache=cache,
                passes=passes,
            )

        optimized = build(None)
        ablated = build(())
        assert optimized._single_pass and not ablated._single_pass
        structure = graph_to_structure(Graph.path(6))
        want = optimized.query(structure)
        assert ablated.query(structure) == want
        # backend clones inherit their parent's pass configuration and
        # answer the same; nothing leaks across the shared cache
        assert optimized.with_backend("semi-naive").query(structure) == want
        assert ablated.with_backend("semi-naive").query(structure) == want
        assert optimized.query(structure) == want
        assert ablated.query(structure) == want


class TestDefaultCache:
    def test_default_cache_is_shared(self):
        assert default_cache() is default_cache()


class TestThreadSafety:
    """The PR 6 race-regression suite.

    The solver service's scheduler/collector threads turned the
    previously latent single-threaded assumptions of ``ProgramCache``
    into real races: unlocked ``OrderedDict`` mutation, unaccounted
    double builds, torn LRU state.  These tests fail under the
    pre-lock implementation (no ``duplicate_builds`` accounting, and
    the lookup/build ledger below does not balance) and must keep
    passing under the locked one.
    """

    def test_concurrent_cold_lookups_balance_the_ledger(self):
        import threading
        import time

        cache = ProgramCache()
        build_calls = []
        start = threading.Event()
        keys = [("race", i) for i in range(4)]
        threads_per_key = 5
        returned = []

        def build_for(key):
            def build():
                build_calls.append(key)
                time.sleep(0.01)  # widen the miss->insert window
                return ("entry", key)

            return build

        def worker(key):
            start.wait()
            for _ in range(10):
                returned.append((key, cache._get_or_build(key, build_for(key))))

        threads = [
            threading.Thread(target=worker, args=(key,))
            for key in keys
            for _ in range(threads_per_key)
        ]
        for thread in threads:
            thread.start()
        start.set()
        for thread in threads:
            thread.join()

        # every lookup observed exactly one winning entry per key
        for key, entry in returned:
            assert entry == ("entry", key)
        assert len(cache) == len(keys)
        # the ledger: every lookup is a hit or a miss ...
        total = len(keys) * threads_per_key * 10
        assert cache.stats.lookups == total
        # ... and every build beyond one-per-key was detected, counted,
        # and discarded (pre-lock: extra builds went unreported and
        # this identity does not hold)
        assert len(build_calls) == len(keys) + cache.stats.duplicate_builds
        assert cache.stats.misses == len(build_calls)
        assert cache.stats.hits == total - len(build_calls)

    def test_concurrent_eviction_churn_keeps_the_cache_bounded(self):
        import threading

        cache = ProgramCache(maxsize=3)
        start = threading.Event()
        errors = []

        def worker(seed):
            start.wait()
            try:
                for i in range(200):
                    key = ("churn", (seed * 7 + i) % 11)
                    entry = cache._get_or_build(key, lambda k=key: ("e", k))
                    assert entry == ("e", key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(6)
        ]
        for thread in threads:
            thread.start()
        start.set()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 3
        assert cache.stats.evictions > 0

    def test_concurrent_solves_share_one_plan(self):
        import threading

        cache = ProgramCache()
        start = threading.Event()
        results = []

        def worker(n):
            start.wait()
            results.append(
                len(
                    solve(
                        parse_program(TC_TEXT),
                        chain_db(n),
                        backend="semi-naive",
                        cache=cache,
                    ).relation("path")
                )
            )

        sizes = [4, 5, 6, 7]
        threads = [
            threading.Thread(target=worker, args=(n,)) for n in sizes
        ]
        for thread in threads:
            thread.start()
        start.set()
        for thread in threads:
            thread.join()
        assert sorted(results) == [n * (n - 1) // 2 for n in sizes]
        # one program text: exactly one cached plan survives, and the
        # stats ledger closes over all four solves
        assert len(cache) == 1
        assert cache.stats.lookups == len(sizes)
        assert (
            cache.stats.misses == 1 + cache.stats.duplicate_builds
        )
