"""Semantic tests for the datalog engine (Section 2.4)."""

import pytest
from hypothesis import given, strategies as st

from repro.datalog import (
    Database,
    NotStratifiableError,
    Program,
    SemiNaiveEvaluator,
    UnsafeRuleError,
    atom,
    least_fixpoint,
    naive_least_fixpoint,
    parse_program,
    pos,
    rule,
    stratify,
    var,
)
from repro.structures import Graph, graph_to_structure

TC = parse_program(
    """
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
    """
)


def edge_db(edges):
    db = Database()
    for u, v in edges:
        db.add("edge", (u, v))
    return db


def reachable_pairs(edges):
    adj = {}
    for u, v in edges:
        adj.setdefault(u, set()).add(v)
    out = set()
    for start in {u for u, _ in edges}:
        stack = [start]
        seen = set()
        while stack:
            node = stack.pop()
            for nxt in adj.get(node, ()):
                if (start, nxt) not in out:
                    out.add((start, nxt))
                    stack.append(nxt)
    return out


class TestTransitiveClosure:
    def test_chain(self):
        db = least_fixpoint(TC, edge_db([(1, 2), (2, 3), (3, 4)]))
        assert (1, 4) in db.relation("path")
        assert len(db.relation("path")) == 6

    def test_cycle(self):
        db = least_fixpoint(TC, edge_db([(1, 2), (2, 1)]))
        assert db.relation("path") == {(1, 2), (2, 1), (1, 1), (2, 2)}

    @given(
        st.sets(
            st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12
        )
    )
    def test_matches_graph_reachability(self, edges):
        db = least_fixpoint(TC, edge_db(edges))
        assert db.relation("path") == reachable_pairs(edges)

    @given(
        st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=10)
    )
    def test_semi_naive_equals_naive(self, edges):
        a = least_fixpoint(TC, edge_db(edges))
        b = naive_least_fixpoint(TC, edge_db(edges))
        assert a.relation("path") == b.relation("path")

    @given(
        st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=8),
        st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=8),
    )
    def test_monotonicity(self, edges, more):
        small = least_fixpoint(TC, edge_db(edges))
        large = least_fixpoint(TC, edge_db(edges | more))
        assert small.relation("path") <= large.relation("path")


class TestSameGeneration:
    def test_same_generation(self):
        prog = parse_program(
            """
            sg(X, X) :- person(X).
            sg(X, Y) :- parent(X, XP), sg(XP, YP), parent(Y, YP).
            """
        )
        db = Database()
        for p in "abcdefg":
            db.add("person", (p,))
        for child, parent in [("b", "a"), ("c", "a"), ("d", "b"), ("e", "c")]:
            db.add("parent", (child, parent))
        result = least_fixpoint(prog, db)
        assert ("b", "c") in result.relation("sg")
        assert ("d", "e") in result.relation("sg")
        assert ("b", "d") not in result.relation("sg")


class TestNegation:
    def test_stratified_negation(self):
        prog = parse_program(
            """
            reach(X) :- start(X).
            reach(Y) :- reach(X), edge(X, Y).
            unreachable(X) :- node(X), not reach(X).
            """
        )
        db = edge_db([(1, 2)])
        for n in (1, 2, 3):
            db.add("node", (n,))
        db.add("start", (1,))
        result = least_fixpoint(prog, db)
        assert result.relation("unreachable") == {(3,)}

    def test_strata_ordering(self):
        prog = parse_program(
            """
            a(X) :- base(X).
            b(X) :- base(X), not a(X).
            c(X) :- base(X), not b(X).
            """
        )
        strata = stratify(prog)
        level = {p: i for i, s in enumerate(strata) for p in s}
        assert level["a"] < level["b"] < level["c"]

    def test_unstratifiable_raises(self):
        prog = parse_program(
            """
            win(X) :- move(X, Y), not win(Y).
            """
        )
        with pytest.raises(NotStratifiableError):
            SemiNaiveEvaluator(prog)

    def test_negation_on_edb_only_is_one_stratum(self):
        prog = parse_program("q(X) :- p(X), not r(X).")
        assert len(stratify(prog)) == 1


class TestSafety:
    def test_unbound_head_variable_raises(self):
        prog = parse_program("q(X, Y) :- p(X).")
        with pytest.raises(UnsafeRuleError):
            SemiNaiveEvaluator(prog)

    def test_unbound_negated_variable_raises(self):
        prog = parse_program("q(X) :- p(X), not r(Y).")
        with pytest.raises(UnsafeRuleError):
            SemiNaiveEvaluator(prog)

    def test_builtin_needing_bound_args_raises_if_never_bound(self):
        prog = parse_program("q(X) :- X < 3.")
        with pytest.raises(UnsafeRuleError):
            SemiNaiveEvaluator(prog)


class TestBuiltinsInRules:
    def test_comparison_filters(self):
        prog = parse_program("small(X) :- num(X), X < 3.")
        db = Database()
        for n in range(5):
            db.add("num", (n,))
        result = least_fixpoint(prog, db)
        assert result.relation("small") == {(0,), (1,), (2,)}

    def test_generative_builtin_binds(self):
        prog = Program(
            [
                rule(
                    atom("half", var("S")),
                    pos("all", var("X")),
                    pos("subset", var("S"), var("X")),
                )
            ]
        )
        db = Database()
        db.add("all", (frozenset({1, 2}),))
        result = least_fixpoint(prog, db)
        assert len(result.relation("half")) == 4


class TestDatabase:
    def test_from_structure(self):
        db = Database.from_structure(graph_to_structure(Graph.path(3)))
        assert db.contains("e", (0, 1))
        assert db.fact_count() == 4

    def test_match_uses_patterns(self):
        from repro.datalog import UNBOUND

        db = edge_db([(1, 2), (1, 3), (2, 3)])
        assert set(db.match("edge", (1, UNBOUND))) == {(1, 2), (1, 3)}
        assert set(db.match("edge", (UNBOUND, 3))) == {(1, 3), (2, 3)}
        assert set(db.match("edge", (UNBOUND, UNBOUND))) == {(1, 2), (1, 3), (2, 3)}

    def test_index_updates_on_add(self):
        from repro.datalog import UNBOUND

        db = edge_db([(1, 2)])
        list(db.match("edge", (1, UNBOUND)))  # build the index
        db.add("edge", (1, 9))
        assert set(db.match("edge", (1, UNBOUND))) == {(1, 2), (1, 9)}

    def test_add_is_idempotent(self):
        db = Database()
        assert db.add("p", (1,))
        assert not db.add("p", (1,))

    def test_facts_iteration_sorted(self):
        db = edge_db([(2, 3), (1, 2)])
        facts = list(db.facts())
        assert len(facts) == 2
        assert all(f.predicate == "edge" for f in facts)


class TestStats:
    def test_stats_populated(self):
        evaluator = SemiNaiveEvaluator(TC)
        evaluator.evaluate(edge_db([(1, 2), (2, 3)]))
        assert evaluator.stats.facts_derived == 3
        assert evaluator.stats.rule_firings >= 3
