"""The set-at-a-time engine: interning, bitsets, batch joins, and
agreement with the tuple-at-a-time ablation path."""

import pytest
from hypothesis import given, strategies as st

from repro.datalog import (
    Database,
    Interner,
    bitset_of,
    iter_bits,
    parse_program,
    popcount,
    solve,
)
from repro.datalog.setengine import (
    SetDatabase,
    SetSemiNaiveEvaluator,
    set_least_fixpoint,
)

from ..conftest import TC_TEXT, chain_edges, datalog_databases, datalog_programs

TC = parse_program(TC_TEXT)

#: all backends that materialize the full least fixpoint -- the
#: agreement property quantifies over these
FULL_BACKENDS = ["naive", "semi-naive", "semi-naive-tuple"]

hashable_values = st.one_of(
    st.integers(-5, 40),
    st.text(max_size=4),
    st.booleans(),
    st.frozensets(st.integers(0, 3), max_size=3),
    st.tuples(st.integers(0, 5), st.text(max_size=2)),
)


# ----------------------------------------------------------------------
# Interning
# ----------------------------------------------------------------------


class TestInterner:
    @given(st.lists(hashable_values, max_size=30))
    def test_round_trip_id_value_id(self, values):
        interner = Interner()
        ids = [interner.intern(v) for v in values]
        for value, ident in zip(values, ids):
            assert interner.value_of(ident) == value
            assert interner.id_of(value) == ident
            assert interner.intern(value) == ident  # idempotent

    @given(st.lists(hashable_values, max_size=30))
    def test_ids_are_dense(self, values):
        interner = Interner()
        for v in values:
            interner.intern(v)
        # every allocated id is in 0..len-1 and every one is used
        assert {interner.intern(v) for v in values} == set(
            range(len(interner))
        )
        assert list(interner.values()) == [
            interner.value_of(i) for i in range(len(interner))
        ]

    def test_id_of_unknown_is_none(self):
        interner = Interner()
        interner.intern("a")
        assert interner.id_of("b") is None

    def test_identity_mode(self):
        interner = Interner.identity(5)
        assert interner.is_identity
        assert interner.intern(3) == 3
        assert interner.value_of(4) == 4
        # a non-int value breaks identity but keeps decoding correct
        fresh = interner.intern("x")
        assert fresh == 5
        assert not interner.is_identity
        assert interner.value_of(fresh) == "x"

    def test_identity_detected_incrementally(self):
        interner = Interner()
        assert interner.intern(0) == 0
        assert interner.intern(1) == 1
        assert interner.is_identity
        interner.intern(7)  # id 2 != 7
        assert not interner.is_identity


# ----------------------------------------------------------------------
# Bitsets
# ----------------------------------------------------------------------


class TestBitsets:
    @given(st.sets(st.integers(0, 200), max_size=40))
    def test_bitset_round_trip(self, ids):
        bits = bitset_of(ids)
        assert set(iter_bits(bits)) == ids
        assert list(iter_bits(bits)) == sorted(ids)
        assert popcount(bits) == len(ids)

    @given(
        st.sets(st.integers(0, 120), max_size=30),
        st.sets(st.integers(0, 120), max_size=30),
    )
    def test_int_ops_are_set_ops(self, a, b):
        ba, bb = bitset_of(a), bitset_of(b)
        assert set(iter_bits(ba | bb)) == a | b
        assert set(iter_bits(ba & bb)) == a & b
        assert set(iter_bits(ba & ~bb)) == a - b


# ----------------------------------------------------------------------
# SetDatabase
# ----------------------------------------------------------------------


class TestSetDatabase:
    @given(datalog_databases())
    def test_decode_round_trips(self, db):
        sdb = SetDatabase.from_edb(db)
        decoded = sdb.decode()
        for pred in db.predicates():
            assert decoded.relation(pred) == db.relation(pred)

    def test_non_integer_domain_round_trips(self):
        db = Database()
        db.add("edge", ("a", "b"))
        db.add("edge", ("b", "c"))
        db.add("label", (frozenset({"x"}),))
        sdb = SetDatabase.from_edb(db)
        assert not sdb.interner.is_identity
        decoded = sdb.decode()
        assert decoded.relation("edge") == {("a", "b"), ("b", "c")}
        assert decoded.relation("label") == {(frozenset({"x"}),)}

    def test_dense_int_domain_uses_identity_interner(self):
        sdb = SetDatabase.from_edb(chain_edges(10))
        assert sdb.interner.is_identity
        assert sdb.relation("edge") == chain_edges(10).relation("edge")

    def test_unary_bitset_mirrors_relation(self):
        sdb = SetDatabase(Interner())
        for v in ("a", "b", "c"):
            sdb.add("p", (sdb.interner.intern(v),))
        assert set(iter_bits(sdb.bits("p"))) == {
            args[0] for args in sdb.relation("p")
        }
        assert sdb.bits("missing") == 0

    def test_indexes_maintained_incrementally(self):
        sdb = SetDatabase.from_edb(chain_edges(4))
        index = sdb.index_for("edge", (0,))
        assert index[0] == [(0, 1)]
        # inserting after the index exists must keep it current --
        # this is the per-predicate incremental maintenance fix
        sdb.add("edge", (0, 9))
        assert sorted(index[0]) == [(0, 1), (0, 9)]
        pair_index = sdb.index_for("edge", (0, 1))
        assert pair_index[(0, 9)] == [(0, 9)]
        sdb.add("edge", (0, 9))  # duplicate: no index churn
        assert sorted(index[0]) == [(0, 1), (0, 9)]


class TestDatabaseIndexMaintenance:
    def test_add_only_touches_own_predicate_indexes(self):
        db = chain_edges(5)
        edge_index = db.lookup("edge", (0,))
        assert edge_index[(0,)] == [(0, 1)]
        # an insert into another predicate must not scan edge's indexes
        db.add("color", (1,))
        db.add("edge", (0, 7))
        assert sorted(edge_index[(0,)]) == [(0, 1), (0, 7)]
        from repro.datalog import UNBOUND

        assert sorted(db.match("edge", (0, UNBOUND))) == [(0, 1), (0, 7)]


# ----------------------------------------------------------------------
# Engine semantics
# ----------------------------------------------------------------------


MONADIC = parse_program(
    """
    reach(X) :- start(X).
    reach(X) :- reach(Y), edge(Y, X).
    unreached(X) :- node(X), not reach(X).
    """
)


def monadic_db():
    db = Database()
    for i in range(10):
        db.add("node", (i,))
    db.add("start", (0,))
    for u, v in [(0, 1), (1, 2), (2, 3), (5, 6), (6, 7)]:
        db.add("edge", (u, v))
    return db


class TestSetEngine:
    def test_monadic_bitset_path_matches_tuple_engine(self):
        """The unary chain (bitset fast path) and the tuple engine
        agree, including negation against the interned domain."""
        db = monadic_db()
        new = solve(MONADIC, db, backend="semi-naive")
        old = solve(MONADIC, db, backend="semi-naive-tuple")
        assert new.relation("reach") == old.relation("reach")
        assert new.relation("unreached") == old.relation("unreached")
        assert new.relation("unreached") == {
            (i,) for i in (4, 5, 6, 7, 8, 9)
        }

    def test_negation_only_over_interned_domain(self):
        """Negation complements against facts, not the raw bit width:
        ids interned for constants never leak into answers."""
        program = parse_program("q(X) :- node(X), not p(X).")
        db = Database()
        for i in range(4):
            db.add("node", (i,))
        db.add("p", (2,))
        result = set_least_fixpoint(program, db)
        assert result.relation("q") == {(0,), (1,), (3,)}

    def test_zero_arity_heads(self):
        from repro.datalog import Program, atom, pos, rule, var

        program = Program(
            [rule(atom("found"), pos("edge", var("X"), var("Y")))]
        )
        assert set_least_fixpoint(program, chain_edges(3)).relation(
            "found"
        ) == {()}
        empty = Database()
        assert (
            set_least_fixpoint(program, empty).relation("found") == set()
        )

    def test_repeated_variables_in_atoms(self):
        program = parse_program("loop(X) :- edge(X, X).")
        db = chain_edges(4)
        db.add("edge", (2, 2))
        for backend in FULL_BACKENDS:
            assert solve(program, db, backend=backend).relation(
                "loop"
            ) == {(2,)}

    def test_builtin_values_round_trip_through_interning(self):
        """Built-ins see raw values and their outputs (fresh sets) are
        interned on the way back in."""
        program = parse_program("t(T) :- base(S), add(S, V, T), item(V).")
        db = Database()
        db.add("base", (frozenset(),))
        db.add("item", ("a",))
        db.add("item", ("b",))
        new = solve(program, db, backend="semi-naive")
        old = solve(program, db, backend="semi-naive-tuple")
        assert new.relation("t") == old.relation("t")
        assert new.relation("t") == {
            (frozenset({"a"}),),
            (frozenset({"b"}),),
        }

    def test_stats_count_derived_facts_identically(self):
        from repro.datalog import EvaluationStats

        new_stats, old_stats = EvaluationStats(), EvaluationStats()
        solve(TC, chain_edges(20), backend="semi-naive", stats=new_stats)
        solve(
            TC,
            chain_edges(20),
            backend="semi-naive-tuple",
            stats=old_stats,
        )
        assert new_stats.facts_derived == old_stats.facts_derived

    def test_evaluator_accepts_prepared_program(self):
        from repro.datalog import prepare_program

        prepared = prepare_program(TC)
        evaluator = SetSemiNaiveEvaluator.from_prepared(prepared)
        result = evaluator.evaluate(chain_edges(6))
        assert len(result.relation("path")) == 15


# ----------------------------------------------------------------------
# The agreement property (all engines, random stratified programs)
# ----------------------------------------------------------------------


class TestEngineAgreement:
    @given(program=datalog_programs(), db=datalog_databases())
    def test_all_full_backends_agree(self, program, db):
        relations = {}
        for backend in FULL_BACKENDS:
            result = solve(program, db, backend=backend)
            relations[backend] = {
                pred: result.relation(pred)
                for pred in program.intensional_predicates()
            }
        assert relations["semi-naive"] == relations["semi-naive-tuple"]
        assert relations["semi-naive"] == relations["naive"]

    @given(db=datalog_databases(max_facts=20), data=st.data())
    def test_magic_on_set_engine_agrees_single_source(self, db, data):
        from repro.datalog import atom, const, var

        source = data.draw(st.integers(0, 4), label="source")
        query = atom("path", const(source), var("Y"))
        full = solve(TC, db, backend="semi-naive")
        goal = solve(TC, db, backend="magic", query=query)
        want = {t for t in full.relation("path") if t[0] == source}
        got = {t for t in goal.relation("path") if t[0] == source}
        assert got == want


# ----------------------------------------------------------------------
# copy_relation: bulk aliasing in interned-id space (the PR 6 fix for
# the old tuple-at-a-time loop through add())
# ----------------------------------------------------------------------


class TestCopyRelation:
    @staticmethod
    def _db_with(predicate, facts):
        db = SetDatabase()
        for args in facts:
            db.add(predicate, args)
        return db

    def test_copy_into_fresh_predicate(self):
        db = self._db_with("src", [(1,), (2,), (3,)])
        db.copy_relation("src", "dst")
        assert db.relation("dst") == {(1,), (2,), (3,)}
        # a copy, not an alias: growing dst must not grow src
        db.add("dst", (9,))
        assert db.relation("src") == {(1,), (2,), (3,)}

    def test_copy_unions_into_existing_predicate(self):
        db = self._db_with("src", [(1,), (2,)])
        db.add("dst", (2,))
        db.add("dst", (5,))
        db.copy_relation("src", "dst")
        assert db.relation("dst") == {(1,), (2,), (5,)}

    def test_unary_bitset_is_ored_in_bulk(self):
        db = self._db_with("src", [(1,), (3,)])
        db.add("dst", (2,))
        db.copy_relation("src", "dst")
        assert db.bits("dst") == db.bits("src") | (1 << 2)
        assert db.bits("dst") == 0b1110

    def test_existing_dst_index_is_invalidated(self):
        db = self._db_with("src", [(1, 2), (3, 4)])
        db.add("dst", (5, 6))
        stale = db.index_for("dst", (0,))
        assert set(stale) == {5}
        db.copy_relation("src", "dst")
        rebuilt = db.index_for("dst", (0,))
        assert set(rebuilt) == {1, 3, 5}

    def test_binary_relation_copies_without_bits(self):
        db = self._db_with("src", [(1, 2), (2, 3)])
        db.copy_relation("src", "dst")
        assert db.relation("dst") == {(1, 2), (2, 3)}
        assert db.bits("dst") == 0  # bitsets are unary-only

    def test_empty_source_is_a_no_op(self):
        db = SetDatabase()
        db.add("dst", (7,))
        db.copy_relation("missing", "dst")
        assert db.relation("dst") == {(7,)}
        assert db.relation("missing") == set()


class TestIndexStatsAndValidation:
    def test_out_of_range_positions_raise(self):
        db = SetDatabase.from_edb(chain_edges(4))
        with pytest.raises(ValueError, match="out of range"):
            db.index_for("edge", (0, 2))
        with pytest.raises(ValueError, match="out of range"):
            db.index_for("edge", (-1,))

    def test_empty_relation_defers_validation(self):
        # arity is unknown until a fact arrives; a (possibly bad)
        # pattern on an empty relation yields an empty index, and the
        # first add does not retroactively validate it
        db = SetDatabase()
        assert db.index_for("later", (5,)) == {}

    def test_builds_and_rebuilds_are_counted(self):
        db = SetDatabase.from_edb(chain_edges(4))
        db.index_for("edge", (0,))
        db.index_for("edge", (0,))  # cached: no second build
        assert db.index_stats.builds == 1
        assert db.index_stats.rebuilds == 0
        # copy_relation extends the existing index in place, so a
        # re-request is still the same build
        db2 = SetDatabase.from_edb(chain_edges(3))
        db2.copy_relation("edge", "edge2")
        db2.index_for("edge2", (0,))
        db2.copy_relation("edge", "edge2")
        db2.index_for("edge2", (0,))
        assert db2.index_stats.rebuilds == 0

    def test_fixpoint_never_rebuilds_an_index(self):
        # the satellite bugfix: delta rounds used to invalidate and
        # rebuild per-pattern indexes; a healthy fixpoint builds each
        # pattern exactly once
        program = parse_program(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        evaluator = SetSemiNaiveEvaluator(program)
        db = evaluator.run(SetDatabase.from_edb(chain_edges(20)))
        assert len(db.relation("path")) == 20 * 19 // 2
        assert db.index_stats.builds > 0
        assert db.index_stats.rebuilds == 0
        assert db.index_stats.lex_rebuilds == 0
