"""The pluggable backends: registry, agreement, magic-set rewriting."""

import pytest
from hypothesis import given, strategies as st

from repro.datalog import (
    Atom,
    Constant,
    Database,
    EvaluationStats,
    MagicSetBackend,
    NaiveBackend,
    ProgramCache,
    SemiNaiveBackend,
    Variable,
    atom,
    available_backends,
    const,
    get_backend,
    is_magic_predicate,
    magic_rewrite,
    normalize_query,
    parse_program,
    solve,
    var,
)

from ..conftest import (
    TC_TEXT,
    chain_edges as chain_db,
    datalog_databases,
    datalog_programs,
)

TC = parse_program(TC_TEXT)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_shipped_backends(self):
        assert {
            "naive",
            "semi-naive",
            "semi-naive-tuple",
            "magic",
        } <= set(available_backends())

    def test_get_backend_instances(self):
        from repro.datalog import TupleSemiNaiveBackend

        assert isinstance(get_backend("naive"), NaiveBackend)
        assert isinstance(get_backend("semi-naive"), SemiNaiveBackend)
        assert isinstance(
            get_backend("semi-naive-tuple"), TupleSemiNaiveBackend
        )
        assert isinstance(get_backend("magic"), MagicSetBackend)

    def test_unknown_backend_is_an_error(self):
        with pytest.raises(ValueError, match="unknown evaluation backend"):
            get_backend("quantum")

    def test_magic_requires_a_query(self):
        with pytest.raises(ValueError, match="goal-directed"):
            solve(TC, chain_db(3), backend="magic")


# ----------------------------------------------------------------------
# Magic-set rewriting
# ----------------------------------------------------------------------


class TestMagicRewrite:
    def test_bound_source_prunes_derivations(self):
        n = 40
        semi_stats, magic_stats = EvaluationStats(), EvaluationStats()
        query = atom("path", const(0), var("Y"))
        solve(TC, chain_db(n), backend="semi-naive", stats=semi_stats)
        result = solve(
            TC, chain_db(n), backend="magic", query=query, stats=magic_stats
        )
        assert result.relation("path") == {(0, j) for j in range(1, n)}
        assert magic_stats.facts_derived < semi_stats.facts_derived

    def test_all_free_query_matches_full_extent(self):
        full = solve(TC, chain_db(12), backend="semi-naive")
        goal = solve(TC, chain_db(12), backend="magic", query="path")
        assert goal.relation("path") == full.relation("path")

    def test_left_recursion(self):
        left = parse_program(
            """
            path(X, Z) :- edge(X, Y), path(Y, Z).
            path(X, Y) :- edge(X, Y).
            """
        )
        db = chain_db(8)
        db.add("edge", (2, 0))  # a cycle for good measure
        full = solve(left, db, backend="semi-naive")
        query = atom("path", const(0), var("Y"))
        goal = solve(left, db, backend="magic", query=query)
        want = {t for t in full.relation("path") if t[0] == 0}
        got = {t for t in goal.relation("path") if t[0] == 0}
        assert got == want

    def test_negated_idb_predicates_stay_total(self):
        program = parse_program(
            """
            reach(X) :- start(X).
            reach(X) :- reach(Y), edge(Y, X).
            unreached(X) :- node(X), not reach(X).
            """
        )
        rewrite = magic_rewrite(program, "unreached")
        assert "reach" in rewrite.stats.total_predicates
        db = Database()
        for i in range(6):
            db.add("node", (i,))
        db.add("start", (0,))
        for u, v in [(0, 1), (1, 2), (4, 5)]:
            db.add("edge", (u, v))
        full = solve(program, db, backend="semi-naive")
        goal = solve(program, db, backend="magic", query="unreached")
        assert goal.relation("unreached") == full.relation("unreached")

    def test_rewrite_drops_irrelevant_rules(self):
        program = parse_program(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            other(X) :- color(X).
            """
        )
        rewrite = magic_rewrite(program, atom("path", const(0), var("Y")))
        heads = {rule.head.predicate for rule in rewrite.program.rules}
        assert not any("other" in h for h in heads)

    def test_normalize_query_unknown_predicate(self):
        with pytest.raises(ValueError, match="not defined"):
            normalize_query(TC, "nope")

    def test_is_magic_predicate(self):
        rewrite = magic_rewrite(TC, atom("path", const(0), var("Y")))
        magic_preds = {
            r.head.predicate
            for r in rewrite.program.rules
            if is_magic_predicate(r.head.predicate)
        }
        assert magic_preds  # the seed and the demand rules
        assert not is_magic_predicate("path")


# ----------------------------------------------------------------------
# Backend agreement (the hypothesis property)
# ----------------------------------------------------------------------


def _matching(relation, query_atom):
    """The tuples of ``relation`` consistent with the query's constants."""
    out = set()
    for args in relation:
        if all(
            not isinstance(term, Constant) or term.value == value
            for term, value in zip(query_atom.args, args)
        ):
            out.add(args)
    return out


class TestBackendAgreement:
    @given(
        program=datalog_programs(),
        db=datalog_databases(),
        data=st.data(),
    )
    def test_all_backends_agree_on_query_answers(self, program, db, data):
        cache = ProgramCache()
        naive = solve(program, db, backend="naive", cache=cache)
        semi = solve(program, db, backend="semi-naive", cache=cache)
        for predicate in program.intensional_predicates():
            assert naive.relation(predicate) == semi.relation(predicate)

        predicate = data.draw(
            st.sampled_from(sorted(program.intensional_predicates())),
            label="query predicate",
        )
        arity = next(
            r.head.arity
            for r in program.rules
            if r.head.predicate == predicate
        )
        args = []
        for i in range(arity):
            bind = data.draw(st.booleans(), label=f"bind arg {i}")
            if bind:
                args.append(
                    Constant(data.draw(st.integers(0, 4), label=f"arg {i}"))
                )
            else:
                args.append(Variable(f"Q{i}"))
        query_atom = Atom(predicate, tuple(args))

        goal = solve(
            program, db, backend="magic", query=query_atom, cache=cache
        )
        want = _matching(semi.relation(predicate), query_atom)
        got = _matching(goal.relation(predicate), query_atom)
        assert got == want

    @given(db=datalog_databases(max_facts=20), data=st.data())
    def test_transitive_closure_single_source_agreement(self, db, data):
        source = data.draw(st.integers(0, 4), label="source")
        query = atom("path", const(source), var("Y"))
        full = solve(TC, db, backend="semi-naive")
        goal = solve(TC, db, backend="magic", query=query)
        want = {t for t in full.relation("path") if t[0] == source}
        got = {t for t in goal.relation("path") if t[0] == source}
        assert got == want
