"""Cross-backend differential conformance suite.

Hypothesis generates random stratified programs (a dedicated monadic
strategy plus the shared mixed-arity one) and random extensional
databases, and asserts that every route to the least model lands on the
*same* model:

* ``naive`` / ``semi-naive`` / ``semi-naive-tuple`` derive identical
  relations for every intensional predicate;
* ``magic`` with an all-free query derives the full extent of the
  queried predicate;
* the Theorem 4.4 quasi-guarded pipeline -- the streamed+pruned
  production form, the eager interned form, and the raw-value ablation
  -- agrees whenever the program is in its fragment (groundable
  guard-first), and demand-pruned streaming is exact on the demanded
  predicate;
* interning round-trips: decoding an interned database and re-interning
  it is the identity on relations, and the interned grounding -> horn
  boundary carries *only* dense integer ids (no raw-value tuples);
* ``CourcelleSolver.solve_many`` returns identical results for 1
  worker and a multiprocessing pool, in input order.

CI runs this file through a dedicated gate step that fails if it is
skipped or collects zero tests, so a conftest regression can't silently
turn the suite off.
"""

from hypothesis import given, strategies as st

from repro.datalog import (
    Atom,
    Constant,
    CostModel,
    GroundingStats,
    InternPool,
    Literal,
    MagicSetBackend,
    NotGroundableError,
    PlanProfile,
    Program,
    ProgramCache,
    Rule,
    SetDatabase,
    Variable,
    evaluate_via_grounding,
    ground_program,
    ground_program_ids,
    ground_program_streamed,
    horn_least_model,
    horn_least_model_ids,
    is_magic_predicate,
    normalize_query,
    prepare_grounding,
    prepare_program,
    solve,
)
from repro.datalog.setengine import SetSemiNaiveEvaluator

from ..conftest import (
    EDB_ARITIES,
    DATALOG_DOMAIN,
    TC_TEXT,
    chain_edges,
    datalog_databases,
    datalog_programs,
)

FULL_BACKENDS = ("naive", "semi-naive", "semi-naive-tuple")

_VARS = [Variable(n) for n in ("X", "Y", "Z")]
_MONADIC_IDB = {"q": 1, "r": 1}


@st.composite
def monadic_programs(draw, max_rules: int = 5):
    """Random safe, stratified *monadic* programs: every IDB predicate
    is unary (the paper's fragment), EDB atoms may be wider."""
    rules = []
    all_preds = {**EDB_ARITIES, **_MONADIC_IDB}
    for _ in range(draw(st.integers(min_value=1, max_value=max_rules))):
        body: list[Literal] = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            pred = draw(st.sampled_from(sorted(all_preds)))
            args = tuple(
                draw(st.sampled_from(_VARS))
                for _ in range(all_preds[pred])
            )
            body.append(Literal(Atom(pred, args)))
        bound = sorted(
            {a for lit in body for a in lit.atom.args},
            key=lambda v: v.name,
        )
        if draw(st.booleans()):  # optional negated EDB literal
            pred = draw(st.sampled_from(sorted(EDB_ARITIES)))
            args = tuple(
                draw(
                    st.one_of(
                        st.sampled_from(bound),
                        st.sampled_from(DATALOG_DOMAIN).map(Constant),
                    )
                )
                for _ in range(EDB_ARITIES[pred])
            )
            body.append(Literal(Atom(pred, args), positive=False))
        head_pred = draw(st.sampled_from(sorted(_MONADIC_IDB)))
        head_arg = draw(
            st.one_of(
                st.sampled_from(bound),
                st.sampled_from(DATALOG_DOMAIN).map(Constant),
            )
        )
        rules.append(Rule(Atom(head_pred, (head_arg,)), tuple(body)))
    return Program(rules)


def _derived_relations(db, program):
    return {
        predicate: db.relation(predicate)
        for predicate in program.intensional_predicates()
    }


def _groundable(program):
    """The prepared grounding if the program is in the Theorem 4.4
    fragment (orderable guard-first, no negated IDB), else None."""
    try:
        return prepare_grounding(program)
    except NotGroundableError:
        return None


class TestFullFixpointAgreement:
    @given(program=monadic_programs(), db=datalog_databases())
    def test_monadic_backends_agree(self, program, db):
        cache = ProgramCache()
        reference = None
        for backend in FULL_BACKENDS:
            rels = _derived_relations(
                solve(program, db, backend=backend, cache=cache), program
            )
            if reference is None:
                reference = rels
            else:
                assert rels == reference, backend

    @given(program=datalog_programs(), db=datalog_databases())
    def test_mixed_arity_backends_agree(self, program, db):
        cache = ProgramCache()
        reference = None
        for backend in FULL_BACKENDS:
            rels = _derived_relations(
                solve(program, db, backend=backend, cache=cache), program
            )
            if reference is None:
                reference = rels
            else:
                assert rels == reference, backend

    @given(program=monadic_programs(), db=datalog_databases(), data=st.data())
    def test_magic_all_free_query_matches_full_extent(
        self, program, db, data
    ):
        cache = ProgramCache()
        reference = solve(program, db, backend="semi-naive", cache=cache)
        predicate = data.draw(
            st.sampled_from(sorted(program.intensional_predicates())),
            label="query predicate",
        )
        goal = solve(
            program, db, backend="magic", query=predicate, cache=cache
        )
        assert goal.relation(predicate) == reference.relation(predicate)


class TestQuasiGuardedAgreement:
    @given(program=monadic_programs(), db=datalog_databases())
    def test_interned_and_raw_pipelines_match_semi_naive(self, program, db):
        prepared = _groundable(program)
        if prepared is None:
            return  # outside the Theorem 4.4 fragment; nothing to check
        interned_facts = evaluate_via_grounding(
            program, db, prepared=prepared
        )
        raw_facts = set(
            horn_least_model(ground_program(program, db, prepared=prepared))
        )
        assert interned_facts == raw_facts
        reference = solve(program, db, backend="semi-naive")
        for predicate in program.intensional_predicates():
            assert {
                f.args for f in interned_facts if f.predicate == predicate
            } == reference.relation(predicate)

    @given(program=monadic_programs(), db=datalog_databases())
    def test_no_raw_tuples_cross_the_grounding_horn_boundary(
        self, program, db
    ):
        """The interned pipeline's rule stream is pure dense ids, and
        the Horn model over those ids decodes to the raw model."""
        prepared = _groundable(program)
        if prepared is None:
            return
        sdb = SetDatabase.from_edb(db)
        pool = InternPool(sdb.interner)
        rules = ground_program_ids(prepared, sdb, pool)
        for head, body in rules:
            assert type(head) is int
            assert all(type(b) is int for b in body)
        flags = horn_least_model_ids(rules, len(pool))
        decoded = {
            pool.decode_atom(i) for i, flag in enumerate(flags) if flag
        }
        assert decoded == set(
            horn_least_model(ground_program(program, db, prepared=prepared))
        )


class TestStreamedGroundingAgreement:
    """The streamed, demand-pruned emitter derives exactly the eager
    pipeline's model -- the tentpole differential of PR 4."""

    @given(program=monadic_programs(), db=datalog_databases())
    def test_streamed_matches_eager(self, program, db):
        prepared = _groundable(program)
        if prepared is None:
            return  # outside the Theorem 4.4 fragment; nothing to check
        sdb = SetDatabase.from_edb(db)
        pool = InternPool(sdb.interner)
        rules = ground_program_ids(prepared, sdb, pool)
        flags = horn_least_model_ids(rules, len(pool))
        eager = {pool.decode_atom(i) for i, f in enumerate(flags) if f}

        sdb2 = SetDatabase.from_edb(db)
        pool2 = InternPool(sdb2.interner)
        stats = GroundingStats()
        sink = ground_program_streamed(prepared, sdb2, pool2, stats=stats)
        streamed = {
            pool2.decode_atom(i)
            for i, f in enumerate(sink.flags(len(pool2)))
            if f
        }
        assert streamed == eager
        # streaming never *instantiates* more than the eager ground
        # program holds (it may re-derive an instance per driver event,
        # but only for supported bindings)
        assert stats.ground_rules <= len(rules)

    @given(program=monadic_programs(), db=datalog_databases(), data=st.data())
    def test_demand_pruned_streaming_is_exact_on_the_demanded_predicate(
        self, program, db, data
    ):
        prepared = _groundable(program)
        if prepared is None:
            return
        predicate = data.draw(
            st.sampled_from(sorted(program.intensional_predicates())),
            label="demanded predicate",
        )
        eager = evaluate_via_grounding(program, db, prepared=prepared)
        sdb = SetDatabase.from_edb(db)
        pool = InternPool(sdb.interner)
        sink = ground_program_streamed(
            prepared, sdb, pool, demand=predicate
        )
        flags = sink.flags(len(pool))
        streamed = {
            pool.decode_atom(i) for i, f in enumerate(flags) if f
        }
        want = {f for f in eager if f.predicate == predicate}
        got = {f for f in streamed if f.predicate == predicate}
        assert got == want
        # everything derived sits inside the relevance cone, never more
        assert streamed <= eager


class TestReplannedConformance:
    """The PR 8 differential: the profile -> replan -> re-index loop is
    observation-preserving.  A profile recorded from a static run feeds
    the cost model; the replanned (and minimally indexed) plans must
    derive exactly the static model on every route -- the set engine
    with and without shared lex indexes, the magic rewrite whose SIPS
    follows the replanned order, and both quasi-guarded modes."""

    @staticmethod
    def _profiled_reference(program, db):
        profile = PlanProfile()
        evaluator = SetSemiNaiveEvaluator(
            program, profile=profile, apply_index_selection=False
        )
        reference = _derived_relations(evaluator.evaluate(db), program)
        return profile, reference

    @given(program=monadic_programs(), db=datalog_databases())
    def test_replanned_set_engine_matches_static(self, program, db):
        profile, reference = self._profiled_reference(program, db)
        replanned = prepare_program(program, cost=CostModel(profile))
        with_selection = _derived_relations(
            SetSemiNaiveEvaluator.from_prepared(replanned).evaluate(db),
            program,
        )
        assert with_selection == reference
        without_selection = _derived_relations(
            SetSemiNaiveEvaluator.from_prepared(
                replanned, apply_index_selection=False
            ).evaluate(db),
            program,
        )
        assert without_selection == reference

    @given(program=monadic_programs(), db=datalog_databases(), data=st.data())
    def test_replanned_magic_matches_full_extent(self, program, db, data):
        profile, reference = self._profiled_reference(program, db)
        predicate = data.draw(
            st.sampled_from(sorted(program.intensional_predicates())),
            label="query predicate",
        )
        rewrite, prepared = ProgramCache().magic(
            program, normalize_query(program, predicate), profile=profile
        )
        derived = SetSemiNaiveEvaluator.from_prepared(prepared).evaluate(db)
        assert (
            derived.relation(rewrite.answer_predicate)
            == reference[predicate]
        )

    @given(program=monadic_programs(), db=datalog_databases())
    def test_replanned_quasi_guarded_modes_match_static(self, program, db):
        from repro.core import QuasiGuardedEvaluator

        profile, reference = self._profiled_reference(program, db)
        for mode in ("streamed", "eager"):
            try:
                evaluator = QuasiGuardedEvaluator(
                    program,
                    mode=mode,
                    replan=profile,
                    require_quasi_guarded=False,
                    cache=ProgramCache(),
                )
            except NotGroundableError:
                return  # outside the Theorem 4.4 fragment: nothing to pin
            facts = evaluator.evaluate(db).facts
            for predicate, want in reference.items():
                assert {
                    f.args for f in facts if f.predicate == predicate
                } == want, (mode, predicate)


class TestSolveManySharding:
    """solve_many: deterministic order, worker-count-invariant."""

    @classmethod
    def _solver(cls):
        solver = getattr(cls, "_cached_solver", None)
        if solver is None:
            from repro.core import CourcelleSolver, undirected_graph_filter
            from repro.mso import formulas
            from repro.structures import GRAPH_SIGNATURE

            solver = CourcelleSolver(
                formulas.has_neighbor("x"),
                GRAPH_SIGNATURE,
                width=1,
                free_var="x",
                structure_filter=undirected_graph_filter,
            )
            cls._cached_solver = solver
        return solver

    @classmethod
    def _structures(cls):
        import random

        from repro.problems import random_tree_graph
        from repro.structures import Graph, graph_to_structure

        rng = random.Random(0xD15C)
        graphs = [Graph.path(5), Graph.path(9)] + [
            random_tree_graph(rng, rng.randint(4, 12)) for _ in range(4)
        ]
        return [graph_to_structure(g) for g in graphs]

    def test_one_worker_matches_sequential_solves(self):
        solver = self._solver()
        structures = self._structures()
        batch = solver.solve_many(structures, workers=1)
        assert batch == [solver.query(s) for s in structures]

    def test_pool_results_identical_and_in_input_order(self):
        solver = self._solver()
        structures = self._structures()
        serial = solver.solve_many(structures, workers=1)
        sharded = solver.solve_many(structures, workers=2)
        assert serial == sharded
        # order is positional: a permuted input permutes the output
        reordered = solver.solve_many(list(reversed(structures)), workers=2)
        assert reordered == list(reversed(serial))

    def test_mismatched_tds_rejected(self):
        import pytest

        solver = self._solver()
        structures = self._structures()
        with pytest.raises(ValueError, match="decompositions"):
            solver.solve_many(structures, tds=[None])


class TestInterningRoundTrip:
    @given(program=monadic_programs(), db=datalog_databases())
    def test_decode_then_reintern_is_identity(self, program, db):
        evaluated = SetSemiNaiveEvaluator(program).run(
            SetDatabase.from_edb(db)
        )
        decoded = evaluated.decode()
        reinterned = SetDatabase.from_edb(decoded)
        assert {
            p: reinterned.decode_relation(p)
            for p in decoded.predicates()
        } == {p: decoded.relation(p) for p in decoded.predicates()}

    @given(db=datalog_databases())
    def test_interner_ids_round_trip(self, db):
        sdb = SetDatabase.from_edb(db)
        interner = sdb.interner
        for ident in range(len(interner)):
            assert interner.id_of(interner.value_of(ident)) == ident


class TestMagicStaysInterned:
    """The demand sets of the magic backend live as bitsets inside the
    set engine and the decode happens exactly once, at the very end."""

    def test_magic_decodes_exactly_once(self, monkeypatch):
        from repro.datalog import atom, const, parse_program, var
        import repro.datalog.setengine as setengine

        decodes = []
        original = setengine.SetDatabase.decode

        def counting(self):
            decodes.append(self)
            return original(self)

        monkeypatch.setattr(setengine.SetDatabase, "decode", counting)
        tc = parse_program(TC_TEXT)
        MagicSetBackend().evaluate(
            tc, chain_edges(12), query=atom("path", const(0), var("Y"))
        )
        assert len(decodes) == 1

    def test_magic_demand_predicates_are_bitsets(self):
        from repro.datalog import atom, const, parse_program, var

        tc = parse_program(TC_TEXT)
        sdb = MagicSetBackend().evaluate_interned(
            tc, chain_edges(12), query=atom("path", const(0), var("Y"))
        )
        magic_preds = [
            p for p in sdb.decode().predicates() if is_magic_predicate(p)
        ]
        assert magic_preds
        for predicate in magic_preds:
            rel = sdb.relation(predicate)
            arities = {len(args) for args in rel}
            assert arities <= {0, 1}  # demand is nullary or unary
            if arities == {1}:
                # the unary demand set is mirrored as a bitset
                assert sdb.bits(predicate) == sum(
                    1 << args[0] for args in rel
                )


class TestCompiledWidth2Conformance:
    """The Theorem 4.5 width-2 envelope, differentially verified.

    The ``has_neighbor`` query compiled at width 2 relative to the grid
    class (``grid_graph_filter``) must agree with *direct MSO
    evaluation* on ladder grids and on random small in-class
    structures, and with the hand-written ``A_td`` cover DP on the
    ladder's encoding -- the compiled program is the production route
    the grid solver benchmark now takes, so its answers are pinned
    here as well as in the benchmark gates.
    """

    _SOLVER_CACHE: list = []

    @classmethod
    def _solver(cls):
        # one compile per test session: the width-2 fixpoint is the
        # expensive part (seconds), every solve afterwards is cheap
        if not cls._SOLVER_CACHE:
            from repro.core import CourcelleSolver, grid_graph_filter
            from repro.mso import formulas
            from repro.structures import GRAPH_SIGNATURE

            cls._SOLVER_CACHE.append(
                CourcelleSolver(
                    formulas.has_neighbor("x"),
                    GRAPH_SIGNATURE,
                    width=2,
                    free_var="x",
                    structure_filter=grid_graph_filter,
                )
            )
        return cls._SOLVER_CACHE[0]

    def test_ladder_matches_direct_mso_and_cover_dp(self):
        from repro.bench import atd_cover_program
        from repro.core import QuasiGuardedEvaluator
        from repro.datalog.guards import td_key_dependencies
        from repro.mso import formulas, query as mso_query
        from repro.structures import Graph, graph_to_structure
        from repro.treewidth import (
            decompose_structure,
            encode_normalized,
            normalize,
        )

        structure = graph_to_structure(Graph.grid(2, 7))
        td = decompose_structure(structure)
        assert td.width == 2  # the ladder is the width-2 grid family
        want = mso_query(structure, formulas.has_neighbor("x"), "x")
        assert self._solver().query(structure, td) == want
        encoded = encode_normalized(structure, normalize(td))
        dp = QuasiGuardedEvaluator(
            atd_cover_program(td.width + 2),
            dependencies=td_key_dependencies(td.width + 2),
        )
        assert dp.evaluate(encoded).unary_answers("covered") == want

    def test_random_grid_class_structures_match_direct_mso(self):
        import random

        from repro.core import grid_graph_filter
        from repro.mso import formulas, query as mso_query
        from repro.structures import Graph, graph_to_structure
        from repro.treewidth import decompose_structure

        solver = self._solver()
        rng = random.Random(0x5EED)
        checked = 0
        while checked < 12:
            n = rng.randint(2, 8)
            g = Graph(range(n))
            for u in range(n):
                for v in range(u + 1, n):
                    if rng.random() < 0.35:
                        g.add_edge(u, v)
            structure = graph_to_structure(g)
            if not grid_graph_filter(structure):
                continue
            if decompose_structure(structure).width > 2:
                continue
            want = mso_query(structure, formulas.has_neighbor("x"), "x")
            assert solver.query(structure) == want
            checked += 1

    def test_minimized_program_matches_unminimized(self):
        """Type minimization is an observation-preserving congruence:
        the class-level program and the one-predicate-per-type program
        must answer identically."""
        import random

        from repro.core import (
            CourcelleSolver,
            undirected_graph_filter,
        )
        from repro.mso import formulas
        from repro.problems import random_tree_graph
        from repro.structures import GRAPH_SIGNATURE, graph_to_structure

        minimized = CourcelleSolver(
            formulas.has_neighbor("x"),
            GRAPH_SIGNATURE,
            width=1,
            free_var="x",
            structure_filter=undirected_graph_filter,
        )
        unminimized = CourcelleSolver(
            formulas.has_neighbor("x"),
            GRAPH_SIGNATURE,
            width=1,
            free_var="x",
            structure_filter=undirected_graph_filter,
            minimize=False,
            passes=(),  # the raw one-predicate-per-type ablation
        )
        assert len(minimized.compiled.program) < len(
            unminimized.compiled.program
        )
        rng = random.Random(0xABCD)
        for _ in range(6):
            structure = graph_to_structure(
                random_tree_graph(rng, rng.randint(2, 14))
            )
            assert minimized.query(structure) == unminimized.query(
                structure
            )

    def test_shrinking_passes_match_unoptimized(self):
        """The program-shrinking passes are conformance-pinned: folded,
        unfolded, pass-free and unminimized solvers over the same query
        must answer identically on random in-class structures."""
        import random

        from repro.core import (
            CourcelleSolver,
            undirected_graph_filter,
        )
        from repro.mso import formulas, query as mso_query
        from repro.problems import random_tree_graph
        from repro.structures import GRAPH_SIGNATURE, graph_to_structure

        def solver(**kw):
            return CourcelleSolver(
                formulas.has_neighbor("x"),
                GRAPH_SIGNATURE,
                width=1,
                free_var="x",
                structure_filter=undirected_graph_filter,
                **kw,
            )

        variants = [
            solver(),  # production default: fold + unfold
            solver(passes=()),  # passes ablated
            solver(passes=("fold",)),
            solver(passes=("unfold",)),
            solver(minimize=False, passes=()),  # fully unoptimized
        ]
        rng = random.Random(0xF01D)
        for _ in range(6):
            structure = graph_to_structure(
                random_tree_graph(rng, rng.randint(2, 14))
            )
            want = mso_query(structure, formulas.has_neighbor("x"), "x")
            for v in variants:
                assert v.query(structure) == want, v.passes
