"""Tests for quasi-guardedness (Definition 4.3)."""

from repro.datalog import (
    KeyDependency,
    find_quasi_guard,
    is_quasi_guarded,
    parse_program,
    parse_rule,
    quasi_guard_report,
    td_key_dependencies,
)

DEPS = td_key_dependencies(4)  # bag arity for w = 2


class TestFindQuasiGuard:
    def test_bag_guards_its_variables(self):
        r = parse_rule("t(V) :- bag(V, X0, X1, X2), leaf(V).")
        guard = find_quasi_guard(r, frozenset({"bag", "leaf"}), DEPS)
        assert guard is not None and guard.predicate == "bag"

    def test_child_variable_reached_through_key(self):
        """The proof of Theorem 4.5: v1, v2 functionally depend on v via
        child1/child2."""
        r = parse_rule(
            "t(V) :- bag(V, X0, X1, X2), child1(V1, V), child2(V2, V), "
            "up(V1), up(V2)."
        )
        guard = find_quasi_guard(r, frozenset({"bag", "child1", "child2"}), DEPS)
        assert guard is not None

    def test_without_dependencies_no_guard(self):
        r = parse_rule(
            "t(V) :- bag(V, X0, X1, X2), child1(V1, V), up(V1)."
        )
        assert find_quasi_guard(r, frozenset({"bag", "child1"}), ()) is None

    def test_unrelated_variable_blocks(self):
        r = parse_rule("t(V) :- bag(V, X0, X1, X2), up(W).")
        assert find_quasi_guard(r, frozenset({"bag"}), DEPS) is None

    def test_negative_literals_cannot_guard(self):
        r = parse_rule("t(V) :- not bag(V, X0, X1, X2), leaf(V).")
        assert find_quasi_guard(r, frozenset({"bag", "leaf"}), DEPS) is None


class TestIsQuasiGuarded:
    def test_theorem_45_style_program(self):
        prog = parse_program(
            """
            up1(V) :- bag(V, X0, X1, X2), leaf(V), e(X0, X1).
            up2(V) :- bag(V, X0, X1, X2), child1(V1, V), up1(V1),
                      bag(V1, X0, X1, X2).
            phi :- root(V), up2(V).
            """
        )
        assert is_quasi_guarded(prog, DEPS)

    def test_transitive_closure_is_not(self):
        prog = parse_program(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        assert not is_quasi_guarded(prog)

    def test_ground_rules_trivially_guarded(self):
        prog = parse_program("a :- b. b.")
        assert is_quasi_guarded(prog)

    def test_report_partitions(self):
        prog = parse_program(
            """
            good(V) :- bag(V, X0, X1, X2).
            bad(X) :- bad(Y), helper(X).
            """
        )
        report = quasi_guard_report(prog, DEPS)
        assert len(report["guarded"]) == 1
        assert len(report["unguarded"]) == 1


class TestKeyDependencies:
    def test_td_dependencies_shape(self):
        deps = td_key_dependencies(5)
        bag_deps = [d for d in deps if d.predicate == "bag"]
        assert bag_deps[0].determinants == (0,)
        assert bag_deps[0].dependents == (1, 2, 3, 4)
        child = [d for d in deps if d.predicate == "child1"]
        assert len(child) == 2  # both directions

    def test_dependency_with_out_of_range_positions_ignored(self):
        # a dependency for arity-6 bags cannot fire on an arity-3 atom
        deps = (KeyDependency("bag", (0,), (1, 2, 3, 4, 5)),)
        r = parse_rule("t(V) :- bag(V, X0, X1).")
        guard = find_quasi_guard(r, frozenset({"bag"}), deps)
        assert guard is not None  # guarded directly, dependency unused
