"""Tests for the textual datalog syntax."""

import pytest

from repro.datalog import (
    Constant,
    ParseError,
    Variable,
    parse_atom,
    parse_program,
    parse_rule,
)


class TestTerms:
    def test_uppercase_is_variable(self):
        a = parse_atom("p(X, y)")
        assert a.args == (Variable("X"), Constant("y"))

    def test_underscore_is_variable(self):
        a = parse_atom("p(_x)")
        assert a.args == (Variable("_x"),)

    def test_numbers(self):
        a = parse_atom("p(42, -3)")
        assert a.args == (Constant(42), Constant(-3))

    def test_strings(self):
        a = parse_atom('p("hello world")')
        assert a.args == (Constant("hello world"),)

    def test_zero_arity(self):
        assert parse_atom("success").args == ()


class TestRules:
    def test_fact(self):
        r = parse_rule("edge(a, b).")
        assert r.is_fact()

    def test_basic_rule(self):
        r = parse_rule("path(X, Y) :- edge(X, Y).")
        assert r.head.predicate == "path"
        assert len(r.body) == 1

    def test_negation(self):
        r = parse_rule("safe(X) :- node(X), not bad(X).")
        assert not r.body[1].positive

    def test_comparison_sugar(self):
        r = parse_rule("diff(X, Y) :- p(X), p(Y), X != Y.")
        assert r.body[2].atom.predicate == "neq"

    def test_all_operators(self):
        p = parse_program(
            """
            a(X) :- n(X), X = 1.
            b(X) :- n(X), X != 1.
            c(X) :- n(X), X < 2.
            d(X) :- n(X), X <= 2.
            """
        )
        ops = {r.body[1].atom.predicate for r in p.rules}
        assert ops == {"eq", "neq", "lt", "le"}
        assert {"eq", "neq", "lt", "le"} <= set(p.builtin_names)

    def test_comments_ignored(self):
        p = parse_program(
            """
            % transitive closure
            path(X, Y) :- edge(X, Y).  % base
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        assert len(p.rules) == 2

    def test_missing_dot_raises(self):
        with pytest.raises(ParseError):
            parse_program("p(X) :- q(X)")

    def test_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_program("p(X) :- @q(X).")

    def test_parse_rule_requires_exactly_one(self):
        with pytest.raises(ParseError):
            parse_rule("a. b.")

    def test_roundtrip_via_str(self):
        text = "path(X, Z) :- path(X, Y), edge(Y, Z)."
        r = parse_rule(text)
        assert parse_rule(str(r)) == r

    def test_number_comparison_literal(self):
        r = parse_rule("p(X) :- q(X), 1 < 2.")
        assert r.body[1].atom.predicate == "lt"
