"""Tests for guard-driven grounding (Theorem 4.4, first half)."""

import pytest

from repro.datalog import (
    Database,
    GroundingStats,
    NotGroundableError,
    evaluate_via_grounding,
    ground_program,
    least_fixpoint,
    parse_program,
)
from repro.structures import Fact


def tree_db():
    """A 3-node chain with bags, as produced by the tau_td encoding."""
    db = Database()
    db.add("root", ("n0",))
    db.add("leaf", ("n2",))
    db.add("child1", ("n1", "n0"))
    db.add("child1", ("n2", "n1"))
    db.add("bag", ("n0", "a", "b"))
    db.add("bag", ("n1", "b", "c"))
    db.add("bag", ("n2", "c", "d"))
    db.add("e", ("c", "d"))
    return db


PROG = parse_program(
    """
    t(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).
    t(V) :- bag(V, X0, X1), child1(V1, V), t(V1).
    ok :- root(V), t(V).
    """
)


class TestGroundProgram:
    def test_ground_rule_shapes(self):
        rules = ground_program(PROG, tree_db())
        heads = {r.head for r in rules}
        assert Fact("t", ("n2",)) in heads  # leaf rule, EDB satisfied
        assert Fact("ok", ()) in heads
        by_head = {r.head: r for r in rules}
        assert by_head[Fact("t", ("n1",))].body == (Fact("t", ("n2",)),)

    def test_instance_count_linear_in_guard_matches(self):
        stats = GroundingStats()
        ground_program(PROG, tree_db(), stats=stats)
        # one leaf instance + two propagation instances + one root instance
        assert stats.ground_rules == 4

    def test_negation_evaluated_during_grounding(self):
        prog = parse_program(
            """
            t(V) :- bag(V, X0, X1), leaf(V), not e(X0, X1).
            """
        )
        rules = ground_program(prog, tree_db())
        assert rules == []  # e(c, d) holds, so the negation kills it

    def test_negation_survives_when_atom_absent(self):
        prog = parse_program(
            """
            t(V) :- bag(V, X0, X1), root(V), not e(X0, X1).
            """
        )
        rules = ground_program(prog, tree_db())
        assert [r.head for r in rules] == [Fact("t", ("n0",))]

    def test_not_groundable_raises(self):
        prog = parse_program("p(X, Z) :- p(X, Y), q(Y, Z).")
        with pytest.raises(NotGroundableError):
            ground_program(prog, Database())

    def test_negated_idb_rejected(self):
        prog = parse_program(
            """
            t(V) :- bag(V, X0, X1).
            s(V) :- bag(V, X0, X1), not t(V).
            """
        )
        with pytest.raises(NotGroundableError):
            ground_program(prog, tree_db())


class TestPipeline:
    def test_matches_semi_naive(self):
        db = tree_db()
        derived = evaluate_via_grounding(PROG, db)
        reference = least_fixpoint(PROG, db)
        for predicate in ("t", "ok"):
            assert {f.args for f in derived if f.predicate == predicate} == (
                reference.relation(predicate)
            )

    def test_from_structure_input(self):
        from repro.structures import Graph, graph_to_structure
        from repro.treewidth import decompose_graph, normalize, encode_normalized

        g = Graph.path(4)
        structure = graph_to_structure(g)
        ntd = normalize(decompose_graph(g))
        encoded = encode_normalized(structure, ntd)
        prog = parse_program(
            """
            t(V) :- bag(V, X0, X1), leaf(V).
            t(V) :- bag(V, X0, X1), child1(V1, V), t(V1).
            ok :- root(V), t(V).
            """
        )
        derived = evaluate_via_grounding(prog, encoded)
        assert Fact("ok", ()) in derived
