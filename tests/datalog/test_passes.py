"""Program-shrinking passes (ROADMAP D): folding + recursion elimination.

The property tests here are the soundness half of the pass pipeline:

* :func:`repro.datalog.passes.bounded_predicates` claims every bounded
  predicate stabilizes within its depth bound on *every* database --
  cross-checked by brute-force round-by-round naive fixpoint on random
  programs and databases;
* :func:`repro.datalog.passes.eliminate_recursion` claims the least
  model restricted to surviving predicates is unchanged -- checked
  differentially on the same random inputs;
* :func:`repro.core.typealg.fold_partition` claims merged classes are
  observationally equivalent on realized entries and that folding only
  ever merges (never splits) the input partition.

The compiled-program end (folded == unfolded == unminimized answers on
ladder and random structures) lives in the no-silent-skip conformance
suite, ``test_conformance.py::TestCompiledWidth2Conformance``.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.typealg import fold_partition
from repro.datalog import Database, Program, Rule, parse_program, solve
from repro.datalog.ast import Constant, Variable
from repro.datalog.passes import (
    DEFAULT_PASSES,
    KNOWN_PASSES,
    bounded_predicates,
    eliminate_recursion,
    normalize_passes,
    strongly_connected_components,
)

from ..conftest import datalog_databases, datalog_programs

import pytest


class TestNormalizePasses:
    def test_none_is_the_production_default(self):
        assert normalize_passes(None) == DEFAULT_PASSES

    def test_order_and_duplicates_are_canonicalized(self):
        assert normalize_passes(("unfold", "fold", "fold")) == KNOWN_PASSES

    def test_empty_is_the_ablation(self):
        assert normalize_passes(()) == ()

    def test_unknown_pass_raises(self):
        with pytest.raises(ValueError, match="unknown passes"):
            normalize_passes(("fold", "typo"))


class TestStronglyConnectedComponents:
    def test_chain_is_singletons_in_dependency_order(self):
        edges = {"a": ["b"], "b": ["c"], "c": []}
        comps = strongly_connected_components(
            sorted(edges), lambda n: edges[n]
        )
        assert comps == [("c",), ("b",), ("a",)]

    def test_cycle_is_one_component(self):
        edges = {"a": ["b"], "b": ["a"], "c": ["a"]}
        comps = strongly_connected_components(
            sorted(edges), lambda n: edges[n]
        )
        assert set(comps) == {("c",)} | {
            c for c in comps if set(c) == {"a", "b"}
        }
        # dependencies first: the cycle precedes its consumer
        assert comps.index(("c",)) == 1


class TestBoundedPredicates:
    def test_nonrecursive_chain_depths(self):
        program = parse_program(
            """
            a(X) :- color(X).
            b(X) :- a(X), edge(X, Y).
            c(X) :- b(X), a(X).
            """
        )
        assert bounded_predicates(program) == {"a": 1, "b": 2, "c": 3}

    def test_recursion_and_its_consumers_are_unbounded(self):
        program = parse_program(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- path(X, Z), edge(Z, Y).
            reach(X) :- path(X, Y).
            base(X) :- color(X).
            """
        )
        assert bounded_predicates(program) == {"base": 1}

    def test_self_loop_is_unbounded(self):
        program = parse_program("q(X) :- q(X), color(X).")
        assert bounded_predicates(program) == {}


def _naive_rounds(program: Program, edb: Database):
    """Round-by-round naive fixpoint by brute-force substitution.

    Independent of every production evaluator on purpose: yields the
    database after each round, where round ``t`` holds exactly the
    facts with some derivation tree of depth <= ``t``.
    """
    domain = sorted(
        {v for rel in (edb.relation(p) for p in edb.predicates()) for t in rel for v in t}
    )
    db = Database.from_facts(edb.facts())

    def matches(rule: Rule, current: Database):
        variables = sorted(rule.variables(), key=lambda v: v.name)
        for values in itertools.product(domain, repeat=len(variables)):
            binding = dict(zip(variables, values))

            def ground(atom):
                return tuple(
                    binding[a] if isinstance(a, Variable) else a.value
                    for a in atom.args
                )

            ok = True
            for literal in rule.body:
                holds = current.contains(
                    literal.atom.predicate, ground(literal.atom)
                )
                if holds != literal.positive:
                    ok = False
                    break
            if ok:
                yield ground(rule.head)

    while True:
        snapshot = Database.from_facts(db.facts())
        new = []
        for rule in program.rules:
            for args in matches(rule, snapshot):
                new.append((rule.head.predicate, args))
        changed = False
        for predicate, args in new:
            changed |= db.add(predicate, args)
        yield db
        if not changed:
            return


@settings(max_examples=40, deadline=None)
@given(program=datalog_programs(), edb=datalog_databases())
def test_bounded_predicates_stabilize_within_their_depth(program, edb):
    """Soundness of the detector, by brute force: a predicate reported
    bounded with depth ``d`` must have its full relation after ``d``
    naive rounds -- on every random database, not just friendly ones."""
    bounded = bounded_predicates(program)
    history = list(_naive_rounds(program, edb))
    final = history[-1]
    for predicate, depth in bounded.items():
        at_depth = history[min(depth, len(history)) - 1]
        assert at_depth.relation(predicate) == final.relation(predicate)


@settings(max_examples=40, deadline=None)
@given(program=datalog_programs(), edb=datalog_databases())
def test_eliminate_recursion_preserves_surviving_relations(program, edb):
    """Positive unfold/fold equivalence, differentially: the unfolded
    program's least model agrees with the original on every predicate
    that survived the pass."""
    unfolded, report = eliminate_recursion(program)
    assert report.rules_after <= report.rules_before
    assert set(report.inlined) <= {p for p, _ in report.bounded}
    original = solve(program, Database.from_facts(edb.facts()))
    shrunk = solve(unfolded, Database.from_facts(edb.facts()))
    surviving = unfolded.intensional_predicates()
    assert surviving == program.intensional_predicates() - set(
        report.inlined
    )
    for predicate in surviving:
        assert shrunk.relation(predicate) == original.relation(predicate)
    # the inlined predicates are really gone from the program text
    for rule in unfolded.rules:
        assert rule.head.predicate not in report.inlined
        for literal in rule.body:
            assert literal.atom.predicate not in report.inlined


def test_eliminate_recursion_unfolds_a_bounded_chain():
    program = parse_program(
        """
        a(X) :- color(X).
        b(X) :- a(X), edge(X, Y).
        top(X) :- b(X).
        """
    )
    unfolded, report = eliminate_recursion(
        program, keep=frozenset(("top",))
    )
    assert report.inlined == ("a", "b")
    assert len(unfolded.rules) == 1
    (rule,) = unfolded.rules
    assert rule.head.predicate == "top"
    assert {lit.atom.predicate for lit in rule.body} == {"color", "edge"}


def test_eliminate_recursion_keeps_negated_and_multi_rule_predicates():
    program = parse_program(
        """
        a(X) :- color(X).
        a(X) :- edge(X, X).
        b(X) :- color(X), not a(X).
        """
    )
    unfolded, report = eliminate_recursion(program)
    assert report.inlined == ()
    assert unfolded is program


class TestFoldPartition:
    def test_undefined_entries_do_not_separate(self):
        # classes 0 and 1 agree where both are defined; 1's map entry
        # is missing (⊥) -- they must merge
        fold = fold_partition(
            3,
            observations=[None, None, "acc"],
            maps=({0: 2, 1: 2},),
        )
        assert fold[0] == fold[1]
        assert fold[2] != fold[0]

    def test_defined_disagreement_separates(self):
        # 2 maps into the observably-marked class, 0 and 1 do not
        fold = fold_partition(
            4,
            observations=[None, None, None, "t"],
            maps=({0: 1, 1: 1, 2: 3},),
        )
        assert fold[0] == fold[1]
        assert fold[2] != fold[0]
        assert fold[3] != fold[0]

    def test_observations_always_separate(self):
        fold = fold_partition(2, observations=["yes", "no"])
        assert fold[0] != fold[1]

    def test_pair_map_wildcards_merge(self):
        # glue(0, 2) = 0 and glue(1, 2) undefined: 0 and 1 merge, and
        # the merged group's single defined outcome stands in for both
        fold = fold_partition(
            3,
            observations=[None, None, "root"],
            pair_maps=({(0, 2): 0},),
        )
        assert fold[0] == fold[1]

    def test_pair_map_disagreement_separates(self):
        # 0 and 1 both glue with 2 but land in observably different
        # classes (2 carries a distinct observation), so they split
        fold = fold_partition(
            4,
            observations=[None, None, "mark", None],
            pair_maps=({(0, 3): 2, (1, 3): 3},),
        )
        assert fold[0] != fold[1]

    def test_fold_only_merges(self):
        observations = [None, "a", None, "a", None]
        maps = ({0: 1, 2: 3, 4: 1},)
        fold = fold_partition(5, observations, maps=maps)
        assert len(set(fold)) <= 5
        # and it is idempotent: folding the folded groups changes nothing
        regrouped = [fold[i] for i in range(5)]
        assert max(regrouped) + 1 == len(set(regrouped))

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_merged_classes_agree_on_defined_entries(self, data):
        """The defining invariant on random instances: two classes the
        fold merges never disagree on a defined unary-map entry or an
        observation -- ⊥ is the *only* thing being forgiven."""
        n = data.draw(st.integers(min_value=1, max_value=6))
        observations = [
            data.draw(st.sampled_from([None, "a", "b"])) for _ in range(n)
        ]
        maps = []
        for _ in range(data.draw(st.integers(min_value=0, max_value=3))):
            m = {}
            for i in range(n):
                if data.draw(st.booleans()):
                    m[i] = data.draw(st.integers(min_value=0, max_value=n - 1))
            maps.append(m)
        fold = fold_partition(n, observations, maps=tuple(maps))
        for i in range(n):
            for j in range(i + 1, n):
                if fold[i] != fold[j]:
                    continue
                assert observations[i] == observations[j] or None in (
                    observations[i],
                    observations[j],
                )
                for m in maps:
                    if i in m and j in m:
                        assert fold[m[i]] == fold[m[j]]
