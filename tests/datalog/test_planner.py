"""Feedback-directed planning: profile, cost model, MinIndexSelection.

Covers the profile -> replan -> re-index loop end to end:

* :func:`min_index_selection` solves MinChainCover over the subset
  partial order -- nested signatures share one lexicographic index,
  antichains keep per-pattern indexes, and every input signature is
  provably covered (the hypothesis property);
* shared lex indexes answer probes identically to per-pattern hash
  indexes on random data;
* :class:`PlanProfile` / :class:`CostModel` record and estimate as
  documented (exact fanout first, independence fallback, delta-round
  scaling), and the fingerprint buckets away run-to-run jitter;
* the satellite regression: a rule whose textual order joins a huge
  intensional relation before its EDB guard explodes
  ``bindings_explored`` under the static plan and collapses after a
  profiled replan -- while static plans stay byte-identical to the old
  textual tie-break;
* profiled plans are cached per (program, profile fingerprint) and
  ride the solver's pickle handoff.
"""

import pickle

from hypothesis import given, strategies as st

from repro.datalog import (
    CostModel,
    Database,
    PlanProfile,
    ProgramCache,
    SetDatabase,
    SetSemiNaiveEvaluator,
    min_index_selection,
    parse_program,
    prepare_program,
)

from ..conftest import TC_TEXT

#: transitive closure plus a guarded projection whose textual body
#: order (huge IDB first, tiny EDB guard second) is the satellite bug
GUARDED_TC_TEXT = TC_TEXT + "\n    q(Y) :- path(X, Y), src(X)."


def _guarded_chain(n: int) -> Database:
    db = Database()
    for i in range(n - 1):
        db.add("edge", (i, i + 1))
    db.add("src", (0,))
    return db


class TestMinIndexSelection:
    def test_nested_chain_shares_one_lex_index(self):
        selection = min_index_selection(
            {"arc": [(0,), (0, 1), (0, 1, 2)]}
        )
        assert selection.n_signatures == 3
        assert selection.n_indexes == 1
        (spec,) = selection.lex_specs
        assert spec.predicate == "arc"
        assert spec.order == (0, 1, 2)
        assert selection.probe_spec("arc", (0,)) == ((0, 1, 2), 1)
        assert selection.probe_spec("arc", (0, 1)) == ((0, 1, 2), 2)
        assert selection.probe_spec("arc", (0, 1, 2)) == ((0, 1, 2), 3)

    def test_antichain_keeps_per_pattern_indexes(self):
        selection = min_index_selection({"r": [(0,), (1,)]})
        assert selection.n_signatures == 2
        assert selection.n_indexes == 2
        assert selection.lex_specs == ()
        # singleton chains fall back to the hash index...
        assert selection.probe_spec("r", (0,)) is None
        # ...but are still *covered* (the coverage proof counts them)
        assert selection.covers("r", (0,))
        assert selection.covers("r", (1,))
        assert not selection.covers("r", (0, 1))

    def test_mixed_poset_covers_with_minimum_chains(self):
        # {0} < {0,1} and {2} are two chains: one lex, one hash
        selection = min_index_selection({"r": [(0,), (0, 1), (2,)]})
        assert selection.n_indexes == 2
        assert len(selection.lex_specs) == 1
        assert selection.probe_spec("r", (2,)) is None
        assert selection.covers("r", (2,))

    @given(
        sigs=st.lists(
            st.sets(
                st.integers(min_value=0, max_value=4), min_size=1, max_size=5
            ).map(lambda s: tuple(sorted(s))),
            min_size=1,
            max_size=8,
        )
    )
    def test_every_signature_is_covered_by_a_prefix_or_hash(self, sigs):
        selection = min_index_selection({"r": sigs})
        distinct = {tuple(sorted(s)) for s in sigs}
        assert selection.n_signatures == len(distinct)
        # never more indexes than the one-hash-per-pattern baseline
        assert selection.n_indexes <= len(distinct)
        for sig in distinct:
            assert selection.covers("r", sig)
            spec = selection.probe_spec("r", sig)
            if spec is not None:
                order, prefix_len = spec
                # the lex prefix is exactly the signature, permuted
                assert set(order[:prefix_len]) == set(sig)
                assert len(order[:prefix_len]) == len(sig)

    def test_lex_probes_match_hash_probes_on_random_data(self):
        import random

        rng = random.Random(0x1DE5)
        facts = {
            (rng.randrange(5), rng.randrange(5), rng.randrange(5))
            for _ in range(60)
        }
        plain = SetDatabase()
        shared = SetDatabase()
        for f in facts:
            plain.add("t", f)
            shared.add("t", f)
        shared.use_index_selection(
            min_index_selection({"t": [(0,), (0, 2)]})
        )
        for positions in ((0,), (0, 2)):
            get_hash, order_hash = plain.probe_plan("t", positions)
            get_lex, order_lex = shared.probe_plan("t", positions)
            assert tuple(sorted(order_lex)) == positions
            for probe in range(6):  # includes ids with no matches
                if len(positions) == 1:
                    key_hash, key_lex = probe, probe
                else:
                    key_hash = tuple(probe for _ in order_hash)
                    key_lex = tuple(probe for _ in order_lex)
                want = sorted(get_hash(key_hash) or [])
                got = sorted(get_lex(key_lex) or [])
                assert got == want
        assert shared.index_stats.lex_builds == 1
        assert shared.index_stats.builds == 0


class TestPlanProfile:
    def test_probe_fanout_and_sizes(self):
        profile = PlanProfile()
        profile.record_size("edge", 100)
        profile.record_size("edge", 80)  # max wins
        profile.record_probe("edge", (0,), probes=10, matches=30)
        profile.record_probe("edge", (0,), probes=10, matches=10)
        assert profile.size("edge") == 100
        assert profile.fanout("edge", (0,)) == 2.0
        assert profile.fanout("edge", (1,)) is None

    def test_merge_accumulates(self):
        a, b = PlanProfile(), PlanProfile()
        a.record_probe("r", (0,), 5, 5)
        b.record_probe("r", (0,), 5, 15)
        b.record_size("r", 40)
        b.record_rounds(7)
        a.merge(b)
        assert a.fanout("r", (0,)) == 2.0
        assert a.size("r") == 40
        assert a.rounds == 7

    def test_fingerprint_buckets_away_jitter(self):
        a, b, c = PlanProfile(), PlanProfile(), PlanProfile()
        a.record_size("edge", 100)
        b.record_size("edge", 101)  # same power-of-two bucket
        c.record_size("edge", 400)  # different magnitude
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_cost_model_prefers_exact_fanout(self):
        profile = PlanProfile()
        profile.record_size("r", 10_000)
        profile.record_probe("r", (0,), 100, 300)
        cost = CostModel(profile)
        assert cost.estimate("r", 2, (0,)) == 3.0  # observed
        # unobserved pattern: size ** (1 - bound/arity)
        assert cost.estimate("r", 2, (1,)) == 10_000 ** 0.5
        assert cost.estimate("r", 2, (0, 1)) == 1.0
        assert cost.estimate("unknown", 2, (0,)) is None

    def test_cost_model_scales_delta_scans_by_rounds(self):
        profile = PlanProfile()
        profile.record_size("path", 5_000)
        profile.record_rounds(100)
        cost = CostModel(profile)
        assert cost.estimate("path", 2, ()) == 5_000.0
        assert cost.estimate("path", 2, (), delta=True) == 50.0


class TestReplanRegression:
    """The satellite bugfix: textual tie-breaks join a huge intensional
    relation before its EDB guard; the profiled replan flips them."""

    N = 60

    def _run(self, prepared, profile=None):
        evaluator = SetSemiNaiveEvaluator.from_prepared(
            prepared, profile=profile
        )
        db = evaluator.run(SetDatabase.from_edb(_guarded_chain(self.N)))
        return evaluator, db.decode().relation("q")

    def test_static_plan_keeps_textual_order(self):
        # the static tie-break must stay textual: recursive rules and
        # magic guard prefixes rely on body order, so only a cost model
        # may reorder equal-score ties
        program = parse_program(GUARDED_TC_TEXT)
        prepared = prepare_program(program)
        q_plan = [s.literal.atom.predicate for s in prepared.plans[2]]
        assert q_plan == ["path", "src"]

    def test_profiled_replan_collapses_bindings_explored(self):
        program = parse_program(GUARDED_TC_TEXT)
        static_prepared = prepare_program(program)
        profile = PlanProfile()
        static_eval, static_q = self._run(static_prepared, profile)

        replanned = prepare_program(program, cost=CostModel(profile))
        replan_profile = PlanProfile()
        replan_eval, replan_q = self._run(replanned, replan_profile)

        # same answers, reordered q-rule plan
        assert replan_q == static_q and len(static_q) == self.N - 1
        q_plan = [s.literal.atom.predicate for s in replanned.plans[2]]
        assert q_plan == ["src", "path"]
        # the q rule's first step drops from |path| = O(n^2) rows to 1
        # (the src guard); its widest step is the O(n) bound probe
        static_first = profile.step_rows[(2, 0)][1]
        assert static_first >= self.N * (self.N - 1) // 2
        replanned_widest = max(
            rows[1]
            for (rule, _step), rows in replan_profile.step_rows.items()
            if rule == 2
        )
        assert static_first >= 10 * replanned_widest
        assert (
            replan_eval.stats.bindings_explored
            < static_eval.stats.bindings_explored
        )

    def test_recursive_atom_is_not_demoted_by_feedback(self):
        # delta scaling: path's scan estimate is size/rounds, so the
        # recursive rule keeps path (the delta source) before edge
        program = parse_program(GUARDED_TC_TEXT)
        profile = PlanProfile()
        self._run(prepare_program(program), profile)
        replanned = prepare_program(program, cost=CostModel(profile))
        rec_plan = [s.literal.atom.predicate for s in replanned.plans[1]]
        assert rec_plan == ["path", "edge"]


class TestProfiledCache:
    def test_profiled_plans_key_on_fingerprint(self):
        cache = ProgramCache()
        program = parse_program(GUARDED_TC_TEXT)
        profile = PlanProfile()
        evaluator = SetSemiNaiveEvaluator(
            program,
            prepared=cache.prepared(program),
            profile=profile,
        )
        evaluator.run(SetDatabase.from_edb(_guarded_chain(30)))

        static = cache.prepared(program)
        replanned = cache.prepared(program, profile=profile)
        assert replanned is not static
        assert cache.prepared(program, profile=profile) is replanned
        again = PlanProfile()
        again.merge(profile)  # same contents -> same fingerprint -> hit
        assert cache.prepared(program, profile=again) is replanned

    def test_magic_entries_key_on_profile_too(self):
        from repro.datalog import atom, const, var

        cache = ProgramCache()
        program = parse_program(TC_TEXT)
        query = atom("path", const(0), var("Y"))
        profile = PlanProfile()
        profile.record_size("edge", 64)
        static = cache.magic(program, query)
        profiled = cache.magic(program, query, profile=profile)
        assert profiled is not static
        assert cache.magic(program, query, profile=profile) is profiled


class TestSolverReplanLoop:
    _CACHE: list = []

    @classmethod
    def _solver(cls, **kwargs):
        from repro.core import CourcelleSolver, undirected_graph_filter
        from repro.mso import formulas
        from repro.structures import GRAPH_SIGNATURE

        return CourcelleSolver(
            formulas.has_neighbor("x"),
            GRAPH_SIGNATURE,
            width=1,
            free_var="x",
            structure_filter=undirected_graph_filter,
            **kwargs,
        )

    @classmethod
    def _structures(cls):
        from repro.structures import Graph, graph_to_structure

        return [graph_to_structure(Graph.path(n)) for n in (5, 8, 11)]

    def test_profile_replan_round_trip(self):
        import pytest

        profile = PlanProfile()
        solver = self._solver(profile=profile)
        structures = self._structures()
        want = [solver.query(s) for s in structures]
        assert profile.relation_sizes  # the solves recorded feedback

        replanned = solver.replanned()
        assert replanned is not solver
        assert [replanned.query(s) for s in structures] == want

        # the replanned prepared plans (and their index selection) ride
        # the existing pickle handoff to solve_many workers
        clone = pickle.loads(pickle.dumps(replanned))
        assert [clone.query(s) for s in structures] == want
        selection = replanned.evaluator._prepared.index_selection
        cloned = clone.evaluator._prepared.index_selection
        assert cloned.lex_specs == selection.lex_specs
        assert cloned.n_indexes == selection.n_indexes

        with pytest.raises(ValueError, match="no profile"):
            self._solver().replanned()

    def test_non_quasi_guarded_backends_reject_the_knobs(self):
        import pytest

        with pytest.raises(ValueError, match="quasi-guarded"):
            self._solver(backend="semi-naive", profile=PlanProfile())
