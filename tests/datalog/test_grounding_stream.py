"""Tests for the streamed, demand-pruned grounding pipeline.

The push-based emitter (:func:`ground_program_streamed`) must derive
exactly the eager pipeline's least model while never materializing the
full ground program, and its pruning counters must account for the
three prune classes: irrelevant heads (magic-style demand), statically
dead extensional literals, and driver-starved rules.
"""

import pytest

from repro.datalog import (
    Database,
    GroundingStats,
    InternPool,
    SetDatabase,
    StreamingHorn,
    demanded_predicates,
    ground_program_ids,
    ground_program_streamed,
    horn_least_model_ids,
    parse_program,
    prepare_grounding,
)
from repro.datalog.grounding import resolve_demand


def tree_db():
    db = Database()
    db.add("root", ("n0",))
    db.add("leaf", ("n2",))
    db.add("child1", ("n1", "n0"))
    db.add("child1", ("n2", "n1"))
    db.add("bag", ("n0", "a", "b"))
    db.add("bag", ("n1", "b", "c"))
    db.add("bag", ("n2", "c", "d"))
    db.add("e", ("c", "d"))
    return db


PROG = parse_program(
    """
    t(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).
    t(V) :- bag(V, X0, X1), child1(V1, V), t(V1).
    ok :- root(V), t(V).
    """
)


def _models(program, db, demand=None):
    """(eager model, streamed model, streamed stats) as fact sets."""
    prepared = prepare_grounding(program)
    sdb = SetDatabase.from_edb(db)
    pool = InternPool(sdb.interner)
    rules = ground_program_ids(prepared, sdb, pool)
    flags = horn_least_model_ids(rules, len(pool))
    eager = {pool.decode_atom(i) for i, f in enumerate(flags) if f}

    sdb2 = SetDatabase.from_edb(db)
    pool2 = InternPool(sdb2.interner)
    stats = GroundingStats()
    sink = ground_program_streamed(
        prepared, sdb2, pool2, stats=stats, demand=demand
    )
    streamed = {
        pool2.decode_atom(i)
        for i, f in enumerate(sink.flags(len(pool2)))
        if f
    }
    return eager, streamed, stats


class TestStreamedModel:
    def test_matches_eager_pipeline(self):
        eager, streamed, stats = _models(PROG, tree_db())
        assert streamed == eager
        assert stats.ground_rules == 4  # every instance is live here

    def test_emits_fewer_rules_than_eager_when_rules_are_dead(self):
        # a recursive rule whose driver never derives: eager grounds
        # its instances anyway, streamed never instantiates it
        program = parse_program(
            """
            t(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).
            t(V) :- bag(V, X0, X1), child1(V1, V), t(V1).
            u(V) :- bag(V, X0, X1), child1(V1, V), w(V1).
            w(V) :- bag(V, X0, X1), leaf(V), e(X1, X0).
            ok :- root(V), t(V).
            """
        )
        eager, streamed, stats = _models(program, tree_db())
        assert streamed == eager  # w/u derive nothing: same model
        # the u-rule is driver-starved (w never derives: e(d, c) absent)
        assert stats.rules_pruned >= 1

    def test_statically_dead_edb_literal_prunes_rule(self):
        program = parse_program(
            """
            t(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).
            t2(V) :- bag(V, X0, X1), child2(V2, V), t(V2).
            ok :- root(V), t(V).
            """
        )
        # tree_db has no child2 facts at all
        eager, streamed, stats = _models(program, tree_db())
        assert streamed == eager
        assert stats.rules_pruned >= 1

    def test_empty_unary_relation_prunes_statically(self):
        program = parse_program(
            """
            t(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).
            t2(V) :- bag(V, X0, X1), marked(V), t(V).
            ok :- root(V), t(V).
            """
        )
        # `marked` is unary and entirely absent: the t2 rule must be
        # statically dead (bitset 0), never compiled as driven
        eager, streamed, stats = _models(program, tree_db())
        assert streamed == eager
        assert stats.rules_pruned >= 1

    def test_waiting_frontier_counted(self):
        # an instance that must wait: u(V) derives after t(V) at the
        # same node, so the both-rule instance parks in the LTUR
        program = parse_program(
            """
            t(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).
            t(V) :- bag(V, X0, X1), child1(V1, V), t(V1).
            u(V) :- bag(V, X0, X1), root(V).
            u(V) :- bag(V, X0, X1), child1(V, V1), u(V1).
            both(V) :- bag(V, X0, X1), t(V), u(V).
            ok :- root(V), both(V).
            """
        )
        eager, streamed, stats = _models(program, tree_db())
        assert streamed == eager
        assert any(f.predicate == "both" for f in streamed)
        assert stats.peak_live_rules >= 1

    def test_nullary_driver(self):
        program = parse_program(
            """
            t(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).
            flag :- root(V), bag(V, X0, X1).
            done(V) :- bag(V, X0, X1), flag, t(V).
            """
        )
        eager, streamed, _ = _models(program, tree_db())
        assert streamed == eager
        assert any(f.predicate == "done" for f in streamed)

    def test_interner_mismatch_raises(self):
        prepared = prepare_grounding(PROG)
        sdb = SetDatabase.from_edb(tree_db())
        foreign_pool = InternPool()  # its own interner
        with pytest.raises(ValueError, match="share one interner"):
            ground_program_streamed(prepared, sdb, foreign_pool)

    def test_reuses_caller_sink(self):
        prepared = prepare_grounding(PROG)
        sdb = SetDatabase.from_edb(tree_db())
        pool = InternPool(sdb.interner)
        sink = StreamingHorn()
        returned = ground_program_streamed(prepared, sdb, pool, sink=sink)
        assert returned is sink
        assert sink.derived_count == 4  # t(n0..n2) + ok


class TestDemandPruning:
    def test_demand_on_root_prediate_keeps_everything(self):
        eager, streamed, stats = _models(PROG, tree_db(), demand="ok")
        assert streamed == eager
        assert stats.rules_pruned == 0

    def test_demand_on_t_prunes_the_ok_rule(self):
        eager, streamed, stats = _models(PROG, tree_db(), demand="t")
        assert stats.rules_pruned == 1  # the ok-rule head is irrelevant
        assert streamed == {f for f in eager if f.predicate == "t"}

    def test_demanded_predicates_cover_the_relevance_cone(self):
        assert demanded_predicates(PROG, "ok") == {"ok", "t"}
        assert demanded_predicates(PROG, "t") == {"t"}

    def test_demand_for_undefined_predicate_prunes_everything(self):
        assert demanded_predicates(PROG, "nothing") == frozenset()
        eager, streamed, stats = _models(PROG, tree_db(), demand="nothing")
        assert streamed == set()
        assert stats.rules_pruned == len(PROG.rules)

    def test_resolve_demand_normalizes(self):
        assert resolve_demand(PROG, None) is None
        assert resolve_demand(PROG, "t") == {"t"}
        assert resolve_demand(PROG, ["t", "ok"]) == {"t", "ok"}


class TestStreamPlans:
    def test_prepared_grounding_carries_stream_plans(self):
        prepared = prepare_grounding(PROG)
        assert len(prepared.stream_plans) == len(PROG.rules)
        by_head = {
            plan.rule.head.predicate: plan
            for plan in prepared.stream_plans
        }
        # the leaf rule has no intensional body literal: base rule
        assert by_head["ok"].driver is not None
        assert by_head["ok"].driver.atom.predicate == "t"
        leaf_plan = prepared.stream_plans[0]
        assert leaf_plan.driver is None

    def test_negated_intensional_literal_rejected(self):
        from repro.datalog import NotGroundableError

        bad = parse_program(
            """
            t(V) :- bag(V, X0, X1), leaf(V).
            u(V) :- bag(V, X0, X1), not t(V).
            """
        )
        with pytest.raises(NotGroundableError):
            prepare_grounding(bad)
