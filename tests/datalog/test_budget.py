"""Solve budgets: cooperative caps on the Theorem 4.4 pipeline.

The linear-time guarantee only holds inside the bounded-treewidth
envelope; a serving layer facing arbitrary inputs bounds each solve
with a :class:`SolveBudget` instead of letting a pathological one run
away.  This suite pins the meter itself (trip conditions, consumption
reporting), the budget threading through all three quasi-guarded
modes and ``CourcelleSolver.decide/query``, and the
``with_backend`` sibling-clone used as the service's fallback route.
"""

import time

import pytest

from repro.core import CourcelleSolver, undirected_graph_filter
from repro.datalog import BudgetExceeded, BudgetMeter, SolveBudget, as_meter
from repro.mso import formulas
from repro.structures import GRAPH_SIGNATURE, Graph, graph_to_structure


@pytest.fixture(scope="module")
def solver():
    return CourcelleSolver(
        formulas.has_neighbor("x"),
        GRAPH_SIGNATURE,
        width=1,
        free_var="x",
        structure_filter=undirected_graph_filter,
    )


def chain(n):
    return graph_to_structure(Graph.path(n))


class TestSolveBudget:
    def test_validation_rejects_non_positive_caps(self):
        with pytest.raises(ValueError):
            SolveBudget(max_seconds=0)
        with pytest.raises(ValueError):
            SolveBudget(max_ground_rules=-1)
        with pytest.raises(ValueError):
            SolveBudget(max_memory_mb=0)

    def test_unlimited(self):
        assert SolveBudget().unlimited
        assert not SolveBudget(max_seconds=1).unlimited

    def test_is_immutable_and_picklable(self):
        import pickle

        budget = SolveBudget(max_seconds=1, max_ground_rules=10)
        with pytest.raises(Exception):
            budget.max_seconds = 2
        assert pickle.loads(pickle.dumps(budget)) == budget

    def test_as_meter_normalization(self):
        assert as_meter(None) is None
        assert as_meter(SolveBudget()) is None  # unlimited -> no meter
        meter = as_meter(SolveBudget(max_seconds=5))
        assert isinstance(meter, BudgetMeter)
        assert as_meter(meter) is meter  # armed meters pass through
        with pytest.raises(TypeError):
            as_meter(42)


class TestBudgetMeter:
    def test_time_cap_trips(self):
        meter = SolveBudget(max_seconds=0.01).start()
        time.sleep(0.02)
        with pytest.raises(BudgetExceeded) as info:
            meter.check()
        assert info.value.dimension == "seconds"
        assert info.value.limit == 0.01
        assert info.value.consumed["seconds"] > 0.01

    def test_ground_rule_cap_trips(self):
        meter = SolveBudget(max_ground_rules=100).start()
        meter.check(ground_rules=100)  # at the cap: fine
        with pytest.raises(BudgetExceeded) as info:
            meter.check(ground_rules=101)
        assert info.value.dimension == "ground_rules"
        assert info.value.consumed["ground_rules"] == 101

    def test_memory_cap_trips_against_peak_rss(self):
        # 0.001 MB is far below any live Python process's peak RSS
        meter = SolveBudget(max_memory_mb=0.001).start()
        with pytest.raises(BudgetExceeded) as info:
            meter.check()
        assert info.value.dimension == "memory_mb"

    def test_snapshot_reports_all_dimensions(self):
        meter = SolveBudget(max_seconds=10).start()
        meter.check(ground_rules=7)
        snapshot = meter.snapshot()
        assert snapshot["ground_rules"] == 7
        assert snapshot["seconds"] >= 0
        assert snapshot["memory_mb"] > 0  # POSIX: rusage is available

    def test_within_budget_never_raises(self):
        meter = SolveBudget(
            max_seconds=60, max_ground_rules=10**9, max_memory_mb=10**6
        ).start()
        for rules in (0, 10, 1000):
            meter.check(ground_rules=rules)


class TestSolverBudgetThreading:
    """The budget reaches the fixpoint loops of every mode, and an
    over-budget solve raises instead of running away."""

    @pytest.mark.parametrize(
        "backend",
        ["quasi-guarded", "quasi-guarded-eager", "quasi-guarded-raw"],
    )
    def test_ground_rule_cap_trips_in_every_mode(self, backend):
        solver = CourcelleSolver(
            formulas.has_neighbor("x"),
            GRAPH_SIGNATURE,
            width=1,
            free_var="x",
            structure_filter=undirected_graph_filter,
            backend=backend,
        )
        tight = SolveBudget(max_ground_rules=5)
        with pytest.raises(BudgetExceeded) as info:
            solver.query(chain(40), budget=tight)
        assert info.value.dimension == "ground_rules"
        # the partially-consumed budget is reported at the checkpoint
        assert info.value.consumed["ground_rules"] > 5

    def test_in_budget_solve_is_unchanged(self, solver):
        roomy = SolveBudget(max_seconds=120, max_ground_rules=10**8)
        structure = chain(25)
        assert solver.query(structure, budget=roomy) == solver.query(structure)

    def test_unlimited_budget_is_free(self, solver):
        structure = chain(10)
        assert solver.query(structure, budget=SolveBudget()) == solver.query(
            structure
        )

    def test_budget_ignored_below_size_threshold(self, solver):
        # |dom| < w+1 takes the O(1) direct-evaluation path: no
        # grounding happens, so no cap can trip
        tiny = graph_to_structure(Graph.path(1))
        assert solver.query(tiny, budget=SolveBudget(max_ground_rules=1)) == (
            frozenset()
        )

    def test_one_meter_can_span_multiple_solves(self, solver):
        # an armed meter accumulates across calls: the second solve
        # sees the clock the first one started
        meter = SolveBudget(max_seconds=120).start()
        first = solver.query(chain(8), budget=meter)
        second = solver.query(chain(8), budget=meter)
        assert first == second


class TestWithBackend:
    """``with_backend`` -- the service's budget-fallback route."""

    def test_same_backend_returns_self(self, solver):
        assert solver.with_backend("quasi-guarded") is solver

    def test_sibling_shares_compiled_program(self, solver):
        eager = solver.with_backend("quasi-guarded-eager")
        assert eager.compiled is solver.compiled  # no recompilation
        assert eager.backend_name == "quasi-guarded-eager"
        assert solver.backend_name == "quasi-guarded"  # original untouched

    @pytest.mark.parametrize(
        "backend",
        ["quasi-guarded-eager", "quasi-guarded-raw", "semi-naive"],
    )
    def test_fallback_conformance(self, solver, backend):
        # the sibling must answer exactly like the primary on in-budget
        # inputs -- the conformance pin behind graceful degradation
        sibling = solver.with_backend(backend)
        for n in (2, 7, 19):
            assert sibling.query(chain(n)) == solver.query(chain(n))

    def test_sibling_survives_pickling(self, solver):
        import pickle

        sibling = solver.with_backend("quasi-guarded-eager")
        clone = pickle.loads(pickle.dumps(sibling))
        assert clone.query(chain(9)) == solver.query(chain(9))
