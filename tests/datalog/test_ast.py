"""Unit tests for the datalog AST."""

import pytest

from repro.datalog import (
    Atom,
    Constant,
    Literal,
    Program,
    Rule,
    Variable,
    atom,
    neg,
    pos,
    rule,
    var,
)
from repro.structures import Fact


class TestTerms:
    def test_variable_str(self):
        assert str(Variable("X")) == "X"

    def test_constant_str_frozenset(self):
        assert str(Constant(frozenset({"b", "a"}))) == "{a,b}"

    def test_constant_str_tuple(self):
        assert str(Constant(("a", "b"))) == "<a,b>"

    def test_atom_rejects_non_terms(self):
        with pytest.raises(TypeError):
            Atom("p", ("raw",))


class TestAtoms:
    def test_helper_wraps_constants(self):
        a = atom("p", var("X"), 3)
        assert a.args == (Variable("X"), Constant(3))

    def test_is_ground(self):
        assert atom("p", 1, 2).is_ground()
        assert not atom("p", var("X")).is_ground()

    def test_substitute(self):
        a = atom("p", var("X"), var("Y"))
        b = a.substitute({Variable("X"): Constant(1)})
        assert b == atom("p", 1, var("Y"))

    def test_to_fact_roundtrip(self):
        f = Fact("p", (1, 2))
        assert Atom.from_fact(f).to_fact() == f

    def test_to_fact_nonground_raises(self):
        with pytest.raises(ValueError):
            atom("p", var("X")).to_fact()

    def test_variables(self):
        a = atom("p", var("X"), 1, var("Y"))
        assert {v.name for v in a.variables()} == {"X", "Y"}


class TestRulesAndPrograms:
    def test_rule_str(self):
        r = rule(atom("q", var("X")), pos("p", var("X")), neg("r", var("X")))
        assert str(r) == "q(X) :- p(X), not r(X)."

    def test_fact_rule(self):
        r = Rule(atom("p", 1))
        assert r.is_fact()
        assert str(r) == "p(1)."

    def test_rule_variables(self):
        r = rule(atom("q", var("X")), pos("p", var("X"), var("Y")))
        assert {v.name for v in r.variables()} == {"X", "Y"}

    def test_intensional_extensional_split(self):
        p = Program(
            [
                rule(atom("q", var("X")), pos("p", var("X"))),
                rule(atom("r", var("X")), pos("q", var("X")), pos("s", var("X"))),
            ]
        )
        assert p.intensional_predicates() == {"q", "r"}
        assert p.extensional_predicates() == {"p", "s"}

    def test_builtins_excluded_from_extensional(self):
        p = Program(
            [rule(atom("q", var("X")), pos("p", var("X")), pos("eq", var("X"), 1))],
            builtin_names=("eq",),
        )
        assert p.extensional_predicates() == {"p"}

    def test_builtin_head_clash_raises(self):
        with pytest.raises(ValueError):
            Program([rule(atom("eq", 1, 1))], builtin_names=("eq",))

    def test_is_monadic(self):
        monadic = Program([rule(atom("q", var("X")), pos("p", var("X"), var("Y")))])
        assert monadic.is_monadic()
        binary = Program([rule(atom("q", var("X"), var("Y")), pos("p", var("X"), var("Y")))])
        assert not binary.is_monadic()

    def test_size_counts_literals(self):
        p = Program([rule(atom("q", var("X")), pos("p", var("X")), pos("r", var("X")))])
        assert p.size() == 3

    def test_program_iteration(self):
        r = rule(atom("q"),)
        p = Program([r])
        assert list(p) == [r]
        assert len(p) == 1
