"""Tests for the built-in predicates (the paper's set operators)."""

import pytest

from repro.datalog import BuiltinRegistry, UNBOUND, make_check, make_function, standard_registry


@pytest.fixture(scope="module")
def registry():
    return standard_registry()


def solutions(registry, name, slots):
    return list(registry.get(name).evaluate(tuple(slots)))


class TestAdd:
    """``add(S, V, T)`` realizes the paper's disjoint union S ⊎ {V}."""

    def test_forward(self, registry):
        [(s, v, t)] = solutions(registry, "add", (frozenset({1}), 2, UNBOUND))
        assert t == frozenset({1, 2})

    def test_forward_rejects_member(self, registry):
        assert solutions(registry, "add", (frozenset({1}), 1, UNBOUND)) == []

    def test_backward_enumerates_splits(self, registry):
        got = solutions(registry, "add", (UNBOUND, UNBOUND, frozenset({1, 2})))
        assert len(got) == 2
        assert all(s | {v} == frozenset({1, 2}) and v not in s for s, v, _ in got)

    def test_backward_with_v_bound(self, registry):
        got = solutions(registry, "add", (UNBOUND, 1, frozenset({1, 2})))
        assert got == [(frozenset({2}), 1, frozenset({1, 2}))]

    def test_insufficient_binding_raises(self, registry):
        with pytest.raises(ValueError):
            solutions(registry, "add", (frozenset(), UNBOUND, UNBOUND))


class TestSubset:
    def test_check(self, registry):
        assert solutions(registry, "subset", (frozenset({1}), frozenset({1, 2})))
        assert not solutions(registry, "subset", (frozenset({3}), frozenset({1})))

    def test_enumerate(self, registry):
        got = solutions(registry, "subset", (UNBOUND, frozenset({1, 2})))
        assert len(got) == 4


class TestPartitions:
    def test_partition2_enumerates(self, registry):
        got = solutions(
            registry, "partition2", (frozenset({1, 2}), UNBOUND, UNBOUND)
        )
        assert len(got) == 4
        for x, y, z in got:
            assert y | z == x and not (y & z)

    def test_partition2_with_y_bound(self, registry):
        [(x, y, z)] = solutions(
            registry, "partition2", (frozenset({1, 2}), frozenset({1}), UNBOUND)
        )
        assert z == frozenset({2})

    def test_partition3_counts(self, registry):
        got = solutions(
            registry,
            "partition3",
            (frozenset({1, 2}), UNBOUND, UNBOUND, UNBOUND),
        )
        assert len(got) == 9
        for x, r, g, b in got:
            assert r | g | b == x
            assert not (r & g) and not (r & b) and not (g & b)


class TestOrderedSets:
    def test_oinsert_enumerates_positions(self, registry):
        got = solutions(registry, "oinsert", ((1, 2), 3, UNBOUND))
        results = {t for _, _, t in got}
        assert results == {(3, 1, 2), (1, 3, 2), (1, 2, 3)}

    def test_oinsert_backward(self, registry):
        got = solutions(registry, "oinsert", (UNBOUND, UNBOUND, (1, 2)))
        assert {(c, v) for c, v, _ in got} == {((2,), 1), ((1,), 2)}

    def test_oinsert_rejects_duplicate(self, registry):
        assert solutions(registry, "oinsert", ((1,), 1, UNBOUND)) == []

    def test_osubsets(self, registry):
        got = solutions(registry, "osubsets", (frozenset({1, 2}), UNBOUND))
        arrangements = {c for _, c in got}
        assert arrangements == {(), (1,), (2,), (1, 2), (2, 1)}


class TestChecksAndFunctions:
    def test_checks(self, registry):
        assert solutions(registry, "member", (1, frozenset({1})))
        assert solutions(registry, "not_member", (2, frozenset({1})))
        assert solutions(registry, "disjoint", (frozenset({1}), frozenset({2})))
        assert solutions(registry, "empty", (frozenset(),))
        assert not solutions(registry, "empty", (frozenset({1}),))

    def test_functions(self, registry):
        [(a, b, c)] = solutions(
            registry, "union", (frozenset({1}), frozenset({2}), UNBOUND)
        )
        assert c == frozenset({1, 2})
        [(a, b, c)] = solutions(
            registry, "setminus", (frozenset({1, 2}), frozenset({2}), UNBOUND)
        )
        assert c == frozenset({1})
        [(a, b)] = solutions(registry, "oset_to_set", ((2, 1), UNBOUND))
        assert b == frozenset({1, 2})

    def test_function_checks_bound_output(self, registry):
        assert solutions(
            registry, "union", (frozenset({1}), frozenset(), frozenset({1}))
        )
        assert not solutions(
            registry, "union", (frozenset({1}), frozenset(), frozenset({2}))
        )


class TestRegistry:
    def test_duplicate_registration_raises(self):
        registry = BuiltinRegistry([make_check("t", 1, bool)])
        with pytest.raises(ValueError):
            registry.register(make_check("t", 1, bool))

    def test_contains_and_names(self, registry):
        assert "add" in registry
        assert "nonexistent" not in registry
        assert "union" in registry.names()

    def test_arity_mismatch_raises(self, registry):
        with pytest.raises(ValueError):
            solutions(registry, "add", (1, 2))

    def test_custom_function_builtin(self):
        double = make_function("double", 2, lambda x: x * 2)
        assert list(double.evaluate((3, UNBOUND))) == [(3, 6)]
        assert list(double.evaluate((3, 6))) == [(3, 6)]
        assert list(double.evaluate((3, 7))) == []
