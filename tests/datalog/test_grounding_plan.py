"""Regression tests for the guard-first join ordering in grounding.

The Theorem 4.4 bound is O(|P| * |A|) *time*, not just O(|P| * |A|)
ground rules: if the extensional join ever matches a relation atom with
no bound argument mid-plan, the grounding degenerates into a quadratic
full-relation scan.  This bit the down-branch rules of the Theorem 4.5
compiler (``child1(V1, V)`` with neither variable bound); the planner
now always picks the most-bound relation atom next.
"""

from repro.datalog import Database, parse_program
from repro.datalog.grounding import (
    GroundingStats,
    _plan_extensional,
    ground_program,
)
from repro.datalog.builtins import standard_registry


def down_branch_style_rule():
    """The problematic shape: the head variable's bag comes first, then
    tree atoms none of whose variables are bound yet."""
    program = parse_program(
        """
        up(V) :- bag(V, X0), leaf(V).
        down(V2) :- bag(V2, X0), child1(V1, V), child2(V2, V),
                    up(V), bag(V, X0), bag(V1, X0).
        """
    )
    return program


class TestPlanOrder:
    def test_most_bound_atom_chosen_next(self):
        program = down_branch_style_rule()
        registry = standard_registry()
        rule = program.rules[1]
        ordered, idb = _plan_extensional(
            rule, program.intensional_predicates(), registry
        )
        predicates = [lit.atom.predicate for lit in ordered]
        # after bag(V2, X0), the planner must pick child2 (V2 bound),
        # never child1 (nothing bound yet)
        assert predicates[0] == "bag"
        assert predicates[1] == "child2"
        assert predicates.index("child2") < predicates.index("child1")

    def test_join_work_stays_linear(self):
        """Ground a chain of n nodes; the binding count must be O(n),
        not O(n^2)."""
        program = down_branch_style_rule()

        def build_db(n):
            db = Database()
            for i in range(n):
                db.add("bag", (f"n{i}", "x"))
            # a binary comb: node i has children 2i+1 (first), 2i+2 (second)
            for i in range(n):
                c1, c2 = 2 * i + 1, 2 * i + 2
                if c1 < n:
                    db.add("child1", (f"n{c1}", f"n{i}"))
                if c2 < n:
                    db.add("child2", (f"n{c2}", f"n{i}"))
            return db

        counts = {}
        for n in (50, 100):
            stats = GroundingStats()
            ground_program(program, build_db(n), stats=stats)
            counts[n] = stats.bindings_explored
        # linear: doubling the data roughly doubles the join work (a
        # mis-ordered plan degenerates into an O(n^2) cross product and
        # fails this even though the ground-rule count stays linear)
        assert counts[100] < 2.6 * counts[50]

    def test_ground_rules_correct_on_comb(self):
        program = down_branch_style_rule()
        db = Database()
        for name in ("a", "b", "c"):
            db.add("bag", (name, "x"))
        db.add("child1", ("b", "a"))
        db.add("child2", ("c", "a"))
        rules = ground_program(program, db)
        down_rules = [r for r in rules if r.head.predicate == "down"]
        assert len(down_rules) == 1
        (rule,) = down_rules
        assert rule.head.args == ("c",)
        body_preds = {f.predicate for f in rule.body}
        assert body_preds == {"up"}
