"""Tests for the linear-time propositional Horn solver (LTUR)."""

from hypothesis import given, strategies as st

from repro.datalog import (
    GroundRule,
    StreamingHorn,
    horn_entails,
    horn_least_model,
    horn_least_model_ids,
)


class TestLeastModel:
    def test_facts_only(self):
        model = horn_least_model([GroundRule("a"), GroundRule("b")])
        assert model == {"a", "b"}

    def test_chain(self):
        rules = [GroundRule("a")] + [
            GroundRule(chr(ord("a") + i + 1), (chr(ord("a") + i),))
            for i in range(5)
        ]
        assert horn_least_model(rules) == set("abcdef")

    def test_conjunction_waits_for_all(self):
        rules = [GroundRule("c", ("a", "b")), GroundRule("a")]
        assert horn_least_model(rules) == {"a"}
        rules.append(GroundRule("b"))
        assert horn_least_model(rules) == {"a", "b", "c"}

    def test_cycle_not_self_supporting(self):
        rules = [GroundRule("a", ("b",)), GroundRule("b", ("a",))]
        assert horn_least_model(rules) == set()

    def test_duplicate_body_atoms(self):
        rules = [GroundRule("b", ("a", "a")), GroundRule("a")]
        assert horn_least_model(rules) == {"a", "b"}

    def test_empty(self):
        assert horn_least_model([]) == set()

    def test_entails(self):
        rules = [GroundRule("a"), GroundRule("b", ("a",))]
        assert horn_entails(rules, "b")
        assert not horn_entails(rules, "c")

    def test_atoms_may_be_any_hashable(self):
        from repro.structures import Fact

        head = Fact("p", (1,))
        body = Fact("q", (2,))
        rules = [GroundRule(head, (body,)), GroundRule(body)]
        assert horn_least_model(rules) == {head, body}


def naive_least_model(rules):
    derived = set()
    changed = True
    while changed:
        changed = False
        for r in rules:
            if r.head not in derived and all(b in derived for b in r.body):
                derived.add(r.head)
                changed = True
    return derived


@given(
    st.lists(
        st.tuples(
            st.integers(0, 8),
            st.lists(st.integers(0, 8), max_size=3),
        ),
        max_size=25,
    )
)
def test_ltur_equals_naive_fixpoint(raw_rules):
    rules = [GroundRule(h, tuple(b)) for h, b in raw_rules]
    assert horn_least_model(rules) == naive_least_model(rules)


_ID_RULES = st.lists(
    st.tuples(
        st.integers(0, 8),
        st.lists(st.integers(0, 8), max_size=3).map(tuple),
    ),
    max_size=25,
)


class TestStreamingHorn:
    """The online LTUR: one rule at a time, same least model."""

    @given(rules=_ID_RULES)
    def test_streaming_matches_batch(self, rules):
        sink = StreamingHorn()
        for head, body in rules:
            sink.add_rule(head, body)
        assert bytes(sink.flags(9)) == bytes(horn_least_model_ids(rules, 9))

    @given(rules=_ID_RULES)
    def test_order_of_arrival_is_irrelevant(self, rules):
        forward = StreamingHorn()
        for head, body in rules:
            forward.add_rule(head, body)
        backward = StreamingHorn()
        for head, body in reversed(rules):
            backward.add_rule(head, body)
        assert bytes(forward.flags(9)) == bytes(backward.flags(9))

    def test_satisfied_rules_are_never_stored(self):
        sink = StreamingHorn()
        sink.add_rule(0)  # fact
        sink.add_rule(1, (0,))  # body already satisfied: fires, not stored
        assert sink.is_derived(1)
        assert sink.live_rules == 0
        assert sink.peak_live_rules == 0

    def test_rules_with_derived_heads_are_dropped(self):
        sink = StreamingHorn()
        sink.add_rule(0)
        sink.add_rule(0, (7,))  # head already derived: dropped outright
        assert sink.rules_dropped == 1
        assert sink.live_rules == 0
        assert not sink.is_derived(7)

    def test_parked_rules_evicted_when_head_derives_elsewhere(self):
        sink = StreamingHorn()
        sink.add_rule(5, (9,))  # parks waiting on 9
        assert sink.live_rules == 1
        sink.add_rule(5, ())  # 5 derives through another rule
        # the parked rule can no longer contribute: evicted
        assert sink.live_rules == 0
        assert sink.rules_dropped == 1
        sink.add_rule(9)  # its body atom deriving later changes nothing
        assert sink.live_rules == 0
        assert sink.is_derived(5) and sink.is_derived(9)

    def test_waiting_frontier_peaks_and_drains(self):
        # a chain fed top-down: every rule waits until the final fact
        # arrives, then the whole frontier fires at once
        sink = StreamingHorn()
        n = 6
        for i in range(n):
            sink.add_rule(i, (i + 1,))
        assert sink.live_rules == n
        assert sink.peak_live_rules == n
        sink.add_rule(n)  # the fact at the bottom
        assert sink.live_rules == 0
        assert sink.peak_live_rules == n
        assert all(sink.is_derived(i) for i in range(n + 1))

    def test_take_fresh_yields_each_derivation_once(self):
        sink = StreamingHorn()
        sink.add_rule(2, (0, 1))
        sink.add_rule(0)
        assert sink.take_fresh() == [0]
        assert sink.take_fresh() == []
        sink.add_rule(1)
        fresh = sink.take_fresh()
        assert set(fresh) == {1, 2}
        assert sink.take_fresh() == []
        assert sink.derived_count == 3

    def test_duplicate_body_atoms_count_once(self):
        sink = StreamingHorn()
        sink.add_rule(1, (0, 0))
        sink.add_rule(0)
        assert sink.is_derived(1)

    def test_cycle_is_not_self_supporting(self):
        sink = StreamingHorn()
        sink.add_rule(0, (1,))
        sink.add_rule(1, (0,))
        assert not sink.is_derived(0)
        assert not sink.is_derived(1)

    def test_flags_pads_and_truncates(self):
        sink = StreamingHorn()
        sink.add_rule(2)
        assert bytes(sink.flags(1)) == bytes([0])
        assert bytes(sink.flags(5)) == bytes([0, 0, 1, 0, 0])
