"""Tests for the linear-time propositional Horn solver (LTUR)."""

from hypothesis import given, strategies as st

from repro.datalog import GroundRule, horn_entails, horn_least_model


class TestLeastModel:
    def test_facts_only(self):
        model = horn_least_model([GroundRule("a"), GroundRule("b")])
        assert model == {"a", "b"}

    def test_chain(self):
        rules = [GroundRule("a")] + [
            GroundRule(chr(ord("a") + i + 1), (chr(ord("a") + i),))
            for i in range(5)
        ]
        assert horn_least_model(rules) == set("abcdef")

    def test_conjunction_waits_for_all(self):
        rules = [GroundRule("c", ("a", "b")), GroundRule("a")]
        assert horn_least_model(rules) == {"a"}
        rules.append(GroundRule("b"))
        assert horn_least_model(rules) == {"a", "b", "c"}

    def test_cycle_not_self_supporting(self):
        rules = [GroundRule("a", ("b",)), GroundRule("b", ("a",))]
        assert horn_least_model(rules) == set()

    def test_duplicate_body_atoms(self):
        rules = [GroundRule("b", ("a", "a")), GroundRule("a")]
        assert horn_least_model(rules) == {"a", "b"}

    def test_empty(self):
        assert horn_least_model([]) == set()

    def test_entails(self):
        rules = [GroundRule("a"), GroundRule("b", ("a",))]
        assert horn_entails(rules, "b")
        assert not horn_entails(rules, "c")

    def test_atoms_may_be_any_hashable(self):
        from repro.structures import Fact

        head = Fact("p", (1,))
        body = Fact("q", (2,))
        rules = [GroundRule(head, (body,)), GroundRule(body)]
        assert horn_least_model(rules) == {head, body}


def naive_least_model(rules):
    derived = set()
    changed = True
    while changed:
        changed = False
        for r in rules:
            if r.head not in derived and all(b in derived for b in r.body):
                derived.add(r.head)
                changed = True
    return derived


@given(
    st.lists(
        st.tuples(
            st.integers(0, 8),
            st.lists(st.integers(0, 8), max_size=3),
        ),
        max_size=25,
    )
)
def test_ltur_equals_naive_fixpoint(raw_rules):
    rules = [GroundRule(h, tuple(b)) for h, b in raw_rules]
    assert horn_least_model(rules) == naive_least_model(rules)
