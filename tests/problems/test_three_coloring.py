"""Cross-validation of the three 3-Colorability solvers (Section 5.1)."""

import pytest
from hypothesis import given, settings

from repro.problems import (
    ThreeColoringDatalog,
    encode_for_three_coloring,
    is_valid_coloring,
    three_coloring_bruteforce,
    three_coloring_direct,
    three_coloring_program,
)
from repro.problems.three_coloring import prepare_decomposition
from repro.structures import Graph

from ..conftest import small_graphs


@pytest.fixture(scope="module")
def datalog_solver():
    return ThreeColoringDatalog()


KNOWN = [
    (Graph.cycle(4), True),
    (Graph.cycle(5), True),
    (Graph.cycle(6), True),
    (Graph.complete(3), True),
    (Graph.complete(4), False),
    (Graph.grid(3, 3), True),
    (Graph.path(8), True),
    (Graph(vertices=[0], edges=[(0, 0)]), False),
]


class TestKnownGraphs:
    @pytest.mark.parametrize("graph,expected", KNOWN, ids=repr)
    def test_direct(self, graph, expected):
        colorable, _ = three_coloring_direct(graph)
        assert colorable == expected

    @pytest.mark.parametrize("graph,expected", KNOWN, ids=repr)
    def test_datalog(self, graph, expected, datalog_solver):
        assert datalog_solver.decide(graph) == expected

    def test_empty_graph(self, datalog_solver):
        assert datalog_solver.decide(Graph())
        assert three_coloring_direct(Graph())[0]

    def test_wheel_families(self, datalog_solver):
        # odd wheels need 4 colors, even wheels 3... W_n = C_n + hub
        for n, expected in ((4, True), (5, False), (6, True)):
            wheel = Graph.cycle(n)
            for v in range(n):
                wheel.add_edge("hub", v)
            assert three_coloring_direct(wheel)[0] == expected


class TestWitnesses:
    @pytest.mark.parametrize(
        "graph", [g for g, colorable in KNOWN if colorable], ids=repr
    )
    def test_witness_is_valid_coloring(self, graph):
        colorable, witness = three_coloring_direct(graph, want_witness=True)
        assert colorable and witness is not None
        assert is_valid_coloring(graph, witness)

    def test_no_witness_when_uncolorable(self):
        colorable, witness = three_coloring_direct(
            Graph.complete(4), want_witness=True
        )
        assert not colorable and witness is None


class TestAgainstBruteforce:
    @given(small_graphs(max_vertices=7))
    @settings(max_examples=20, deadline=None)
    def test_direct_matches_bruteforce(self, g):
        assert three_coloring_direct(g)[0] == three_coloring_bruteforce(g)

    @given(small_graphs(max_vertices=6))
    @settings(max_examples=12, deadline=None)
    def test_datalog_matches_bruteforce(self, g):
        solver = ThreeColoringDatalog()
        assert solver.decide(g) == three_coloring_bruteforce(g)


class TestProgramShape:
    def test_figure5_rule_count(self):
        """Figure 5: 1 leaf + 3 introduction + 3 removal + 1 branch +
        1 result, plus our explicit copy rule."""
        program = three_coloring_program()
        assert len(program.rules) == 10
        assert program.intensional_predicates() == {"solve", "success"}

    def test_program_is_data_independent(self):
        assert str(three_coloring_program()) == str(three_coloring_program())

    def test_solve_fact_counts_reported(self):
        solver = ThreeColoringDatalog()
        run = solver.run(Graph.cycle(4))
        assert run.colorable
        assert run.solve_fact_count > 0

    def test_encoding_has_allowed_facts(self):
        g = Graph.path(3)
        nice = prepare_decomposition(g)
        encoded = encode_for_three_coloring(g, nice)
        assert encoded.relation("allowed")
        # every allowed set is independent in g
        for node, chosen in encoded.relation("allowed"):
            for u in chosen:
                assert not any(v in chosen for v in g.neighbors(u))

    def test_decomposition_respected_when_supplied(self):
        from repro.problems import random_partial_ktree
        import random

        g, td = random_partial_ktree(random.Random(1), 10, 2)
        colorable, witness = three_coloring_direct(g, td, want_witness=True)
        assert colorable == three_coloring_bruteforce(g)
        if witness is not None:
            assert is_valid_coloring(g, witness)
