"""Tests for PRIMALITY in a subschema (the paper's conclusion)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.problems import (
    is_prime_in_subschema,
    is_prime_in_subschema_bruteforce,
    primality_direct,
)
from repro.structures import RelationalSchema, running_example

from ..conftest import small_schemas


class TestCollapseToFigure6:
    """With allowed = R the program must be exactly Figure 6."""

    def test_running_example(self):
        s = running_example()
        for a in s.attributes:
            assert is_prime_in_subschema(s, a, s.attributes) == (
                primality_direct(s, a)
            )

    @given(small_schemas(max_attrs=5, max_fds=4))
    @settings(max_examples=10, deadline=None)
    def test_random_schemas(self, schema):
        for a in schema.attributes:
            assert is_prime_in_subschema(schema, a, schema.attributes) == (
                primality_direct(schema, a)
            )


class TestRestrictedGenerators:
    def test_target_outside_allowed_is_false(self):
        s = running_example()
        assert not is_prime_in_subschema(s, "a", frozenset("bcd"))

    def test_running_example_restricted(self):
        """Restrict generators to {a, c, d}: keys within the subset."""
        s = running_example()
        # acd is a key entirely inside the allowed set
        for a in "acd":
            want = is_prime_in_subschema_bruteforce(s, a, frozenset("acd"))
            assert is_prime_in_subschema(s, a, frozenset("acd")) == want

    def test_no_allowed_superkey_means_nothing_prime(self):
        s = RelationalSchema.parse("R = abc; a -> b")
        # {c} alone can never reach a or b
        assert not is_prime_in_subschema(s, "c", frozenset("c"))

    def test_unknown_target_raises(self):
        with pytest.raises(ValueError):
            is_prime_in_subschema(running_example(), "zz", frozenset("a"))

    def test_unknown_allowed_raises(self):
        with pytest.raises(ValueError):
            is_prime_in_subschema(running_example(), "a", frozenset("az"))


class TestAgainstBruteforce:
    @given(
        small_schemas(max_attrs=5, max_fds=4),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_subschemas(self, schema, seed):
        rng = random.Random(seed)
        k = rng.randint(1, len(schema.attributes))
        allowed = frozenset(rng.sample(list(schema.attributes), k))
        for a in sorted(allowed):
            want = is_prime_in_subschema_bruteforce(schema, a, allowed)
            assert is_prime_in_subschema(schema, a, allowed) == want
