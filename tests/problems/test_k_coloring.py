"""Tests for the k-Colorability generalization of Figure 5."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.problems import (
    chromatic_number,
    is_valid_k_coloring,
    k_coloring_bruteforce,
    k_coloring_direct,
)
from repro.structures import Graph

from ..conftest import small_graphs


class TestKnownValues:
    def test_cliques_need_n_colors(self):
        for n in (2, 3, 4, 5):
            g = Graph.complete(n)
            assert not k_coloring_direct(g, n - 1)[0]
            assert k_coloring_direct(g, n)[0]

    def test_chromatic_numbers(self):
        assert chromatic_number(Graph.complete(4)) == 4
        assert chromatic_number(Graph.cycle(5)) == 3
        assert chromatic_number(Graph.cycle(6)) == 2
        assert chromatic_number(Graph.path(5)) == 2
        assert chromatic_number(Graph(vertices=[1, 2])) == 1
        assert chromatic_number(Graph()) == 0

    def test_bipartite_detection_is_2_coloring(self):
        assert k_coloring_direct(Graph.grid(3, 4), 2)[0]
        assert not k_coloring_direct(Graph.cycle(5), 2)[0]

    def test_self_loop_never_colorable(self):
        g = Graph(vertices=[0], edges=[(0, 0)])
        assert not k_coloring_direct(g, 5)[0]
        with pytest.raises(ValueError):
            chromatic_number(g)

    def test_zero_colors_rejected(self):
        with pytest.raises(ValueError):
            k_coloring_direct(Graph.path(2), 0)

    def test_agrees_with_three_coloring_solver(self):
        from repro.problems import three_coloring_direct

        for g in (Graph.cycle(7), Graph.complete(4), Graph.grid(2, 4)):
            assert k_coloring_direct(g, 3)[0] == three_coloring_direct(g)[0]


class TestWitnesses:
    def test_witness_valid(self):
        for k in (2, 3, 4):
            ok, witness = k_coloring_direct(Graph.grid(3, 3), k, want_witness=True)
            if ok:
                assert witness is not None
                assert is_valid_k_coloring(Graph.grid(3, 3), witness, k)

    def test_empty_graph_witness(self):
        ok, witness = k_coloring_direct(Graph(), 2, want_witness=True)
        assert ok and witness == {}


class TestAgainstBruteforce:
    @given(small_graphs(max_vertices=6), st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_matches_bruteforce(self, g, k):
        assert k_coloring_direct(g, k)[0] == k_coloring_bruteforce(g, k)

    @given(small_graphs(max_vertices=6))
    @settings(max_examples=15, deadline=None)
    def test_chromatic_number_bounds(self, g):
        if g.vertex_count() == 0 or any(g.has_edge(v, v) for v in g.vertices):
            return
        chi = chromatic_number(g)
        assert 1 <= chi <= g.vertex_count()
        assert k_coloring_bruteforce(g, chi)
        if chi > 1:
            assert not k_coloring_bruteforce(g, chi - 1)
