"""Tests for the workload generators (Section 6 test data)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.problems import (
    TABLE1_SIZES,
    random_graph,
    random_partial_ktree,
    random_schema,
    random_tree_graph,
    table1_instance,
    table1_schema,
)
from repro.treewidth import treewidth_exact


class TestTable1Workload:
    def test_sizes_match_paper(self):
        """#Att = 3 * #FD, exactly the Table 1 columns."""
        for num_att, num_fd in TABLE1_SIZES:
            assert num_att == 3 * num_fd

    @pytest.mark.parametrize("num_fd", [1, 2, 3, 7])
    def test_instance_counts(self, num_fd):
        inst = table1_instance(num_fd)
        assert inst.num_fds == num_fd
        assert inst.num_attributes == 3 * num_fd
        assert inst.treewidth == 3

    def test_decomposition_is_valid(self):
        inst = table1_instance(5)
        inst.decomposition.validate_for_structure(inst.schema.to_structure())

    def test_gadget_coupling(self):
        schema = table1_schema(3)
        assert schema.fd("f1").lhs == frozenset({"r0", "p1"})
        assert schema.fd("f2").lhs == frozenset({"r0", "p2"})

    def test_primes_are_nontrivial(self):
        """The workload must exercise both outcomes of the decision."""
        schema = table1_schema(3)
        primes = schema.prime_attributes_bruteforce()
        assert primes and primes < frozenset(schema.attributes)

    def test_zero_gadgets_rejected(self):
        with pytest.raises(ValueError):
            table1_schema(0)


class TestRandomPartialKTree:
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=20)
    def test_valid_and_width_bounded(self, n, k, seed):
        rng = random.Random(seed)
        graph, td = random_partial_ktree(rng, n, k)
        td.validate_for_graph(graph)
        assert td.width <= k
        if n <= 9:
            assert treewidth_exact(graph) <= k

    def test_zero_vertices_rejected(self):
        with pytest.raises(ValueError):
            random_partial_ktree(random.Random(0), 0, 2)


class TestOtherGenerators:
    def test_random_tree_is_tree(self, rng):
        g = random_tree_graph(rng, 12)
        assert g.edge_count() == 11
        assert treewidth_exact(g) <= 1

    def test_random_schema_valid(self, rng):
        schema = random_schema(rng, 5, 4)
        assert len(schema.attributes) == 5
        for f in schema.fds:
            assert f.rhs not in f.lhs

    def test_random_graph_edge_probability_extremes(self, rng):
        empty = random_graph(rng, 6, 0.0)
        assert empty.edge_count() == 0
        full = random_graph(rng, 6, 1.0)
        assert full.edge_count() == 15
