"""Tests for definite-Horn abduction (the paper's closing application)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.problems import AbductionProblem, HornClause


@pytest.fixture
def car_problem():
    """The classic diagnosis example: why does the engine run?"""
    return AbductionProblem.parse(
        "vars: battery fuel spark engine lights;"
        " hyp: battery fuel;"
        " obs: engine;"
        " battery & fuel -> spark; spark -> engine; battery -> lights"
    )


class TestSemantics:
    def test_consequences(self, car_problem):
        out = car_problem.consequences({"battery", "fuel"})
        assert out == frozenset(
            {"battery", "fuel", "spark", "engine", "lights"}
        )

    def test_is_explanation(self, car_problem):
        assert car_problem.is_explanation({"battery", "fuel"})
        assert not car_problem.is_explanation({"battery"})
        assert not car_problem.is_explanation(set())

    def test_non_hypothesis_rejected(self, car_problem):
        with pytest.raises(ValueError):
            car_problem.is_explanation({"spark"})

    def test_minimal_explanations(self, car_problem):
        assert list(car_problem.minimal_explanations()) == [
            frozenset({"battery", "fuel"})
        ]

    def test_solvable(self, car_problem):
        assert car_problem.is_solvable()

    def test_unsolvable_problem(self):
        p = AbductionProblem.parse(
            "vars: a b m; hyp: a; obs: m; b -> m"
        )
        assert not p.is_solvable()
        assert not p.relevant_bruteforce("a")
        assert not p.relevant("a")

    def test_facts_in_theory(self):
        p = AbductionProblem(
            "abm", "a", "m", [HornClause(frozenset(), "b"), HornClause(frozenset("ab"), "m")]
        )
        # b is a fact, so {a} alone explains m
        assert p.is_explanation({"a"})


class TestRelevanceAndNecessity:
    def test_relevance(self, car_problem):
        assert car_problem.relevant_bruteforce("battery")
        assert car_problem.relevant("battery")
        assert car_problem.relevant("fuel")

    def test_irrelevant_hypothesis(self):
        p = AbductionProblem.parse(
            "vars: a b m; hyp: a b; obs: m; a -> m"
        )
        assert p.relevant("a")
        assert not p.relevant("b")  # b never needed
        assert p.relevant_bruteforce("a") and not p.relevant_bruteforce("b")

    def test_alternative_explanations(self):
        p = AbductionProblem.parse(
            "vars: a b m; hyp: a b; obs: m; a -> m; b -> m"
        )
        assert p.relevant("a") and p.relevant("b")
        assert not p.necessary_bruteforce("a")
        assert not p.necessary_bruteforce("b")

    def test_necessity(self, car_problem):
        assert car_problem.necessary_bruteforce("battery")
        assert car_problem.necessary_bruteforce("fuel")

    def test_unknown_hypothesis_raises(self, car_problem):
        with pytest.raises(ValueError):
            car_problem.relevant("engine")


class TestReduction:
    def test_relevance_schema_shape(self, car_problem):
        schema = car_problem.relevance_schema()
        from repro.problems.abduction import GOAL

        assert GOAL in schema.attributes
        # one FD per clause + M -> goal + goal -> v for each variable
        assert len(schema.fds) == 3 + 1 + 5

    def test_explanations_are_allowed_superkeys(self, car_problem):
        schema = car_problem.relevance_schema()
        assert schema.is_superkey(frozenset({"battery", "fuel"}))
        assert not schema.is_superkey(frozenset({"battery"}))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_treewidth_route_matches_bruteforce(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 5)
        variables = [f"v{i}" for i in range(n)]
        hypotheses = rng.sample(variables, rng.randint(1, n))
        manifestations = rng.sample(variables, 1)
        clauses = []
        for _ in range(rng.randint(1, 4)):
            head = rng.choice(variables)
            pool = [v for v in variables if v != head]
            body = frozenset(rng.sample(pool, rng.randint(1, min(2, len(pool)))))
            clauses.append(HornClause(body, head))
        problem = AbductionProblem(variables, hypotheses, manifestations, clauses)
        for h in sorted(problem.hypotheses):
            assert problem.relevant(h) == problem.relevant_bruteforce(h)


class TestParsing:
    def test_reserved_goal_name_rejected(self):
        from repro.problems.abduction import GOAL

        with pytest.raises(ValueError):
            AbductionProblem([GOAL, "m"], [GOAL], ["m"], [])

    def test_manifestation_required(self):
        with pytest.raises(ValueError):
            AbductionProblem("ab", "a", [], [])

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            AbductionProblem.parse("vars: a; hyp: a; obs: a; nonsense clause")
