"""Cross-validation of the PRIMALITY algorithms (Sections 5.2, 5.3)."""

import pytest
from hypothesis import given, settings

from repro.problems import (
    PrimalityAlgebra,
    PrimalityDatalog,
    encode_for_primality,
    enumeration_program,
    prepare_decision_decomposition,
    prepare_enumeration_decomposition,
    primality_direct,
    primality_program,
    prime_attributes_datalog,
    prime_attributes_direct,
    prime_attributes_rerooting,
)
from repro.structures import RelationalSchema, running_example

from ..conftest import small_schemas


class TestRunningExample:
    """Example 2.1 / 2.6: primes are a, b, c, d."""

    def test_decision_direct(self):
        s = running_example()
        for a in "abcd":
            assert primality_direct(s, a)
        for a in "eg":
            assert not primality_direct(s, a)

    def test_enumeration_direct(self):
        assert prime_attributes_direct(running_example()) == frozenset("abcd")

    def test_rerooting_baseline(self):
        assert prime_attributes_rerooting(running_example()) == frozenset("abcd")

    def test_decision_datalog(self):
        s = running_example()
        solver = PrimalityDatalog(s)
        assert solver.decide("a")
        assert not solver.decide("e")

    def test_enumeration_datalog(self):
        assert prime_attributes_datalog(running_example()) == frozenset("abcd")

    def test_unknown_attribute_raises(self):
        with pytest.raises(ValueError):
            primality_direct(running_example(), "zz")


class TestEdgeCaseSchemas:
    def test_no_fds_everything_prime(self):
        s = RelationalSchema.parse("R = abc;")
        assert prime_attributes_direct(s) == frozenset("abc")

    def test_single_attribute(self):
        s = RelationalSchema.parse("R = a;")
        assert prime_attributes_direct(s) == frozenset("a")

    def test_cyclic_fds(self):
        s = RelationalSchema.parse("R = ab; a -> b, b -> a")
        assert prime_attributes_direct(s) == frozenset("ab")
        assert primality_direct(s, "a") and primality_direct(s, "b")

    def test_chain(self):
        s = RelationalSchema.parse("R = abcd; a -> b, b -> c, c -> d")
        assert prime_attributes_direct(s) == frozenset("a")

    def test_everything_determined_by_pair(self):
        s = RelationalSchema.parse("R = abc; ab -> c, c -> a, c -> b")
        want = s.prime_attributes_bruteforce()
        assert prime_attributes_direct(s) == want


class TestAgainstBruteforce:
    @given(small_schemas(max_attrs=6, max_fds=5))
    @settings(max_examples=30, deadline=None)
    def test_enumeration_direct(self, schema):
        assert prime_attributes_direct(schema) == (
            schema.prime_attributes_bruteforce()
        )

    @given(small_schemas(max_attrs=5, max_fds=4))
    @settings(max_examples=15, deadline=None)
    def test_decision_direct(self, schema):
        want = schema.prime_attributes_bruteforce()
        got = {a for a in schema.attributes if primality_direct(schema, a)}
        assert got == set(want)

    @given(small_schemas(max_attrs=4, max_fds=3))
    @settings(max_examples=8, deadline=None)
    def test_datalog_agrees(self, schema):
        want = schema.prime_attributes_bruteforce()
        assert prime_attributes_datalog(schema) == want

    @given(small_schemas(max_attrs=5, max_fds=4))
    @settings(max_examples=8, deadline=None)
    def test_rerooting_agrees(self, schema):
        assert prime_attributes_rerooting(schema) == (
            schema.prime_attributes_bruteforce()
        )


class TestAlgebra:
    """Unit tests for the Property B helper predicates."""

    def test_outside(self):
        s = running_example()
        algebra = PrimalityAlgebra(s)
        # f1: ab -> c.  With Y = {a}, At = {a, b, c}: b witnesses lhs ⊄ Y.
        assert algebra.outside(
            frozenset("a"), frozenset("abc"), ["f1"]
        ) == frozenset({"f1"})
        # rhs in Y: no threat recorded
        assert algebra.outside(
            frozenset("c"), frozenset("abc"), ["f1"]
        ) == frozenset()
        # lhs fully inside Y: cannot be excused
        assert algebra.outside(
            frozenset("ab"), frozenset("abc"), ["f1"]
        ) == frozenset()

    def test_consistent_requires_rhs_in_co(self):
        algebra = PrimalityAlgebra(running_example())
        assert not algebra.consistent(["f1"], ("a", "b"))  # c missing
        assert algebra.consistent(["f1"], ("a", "b", "c"))

    def test_consistent_ordering(self):
        algebra = PrimalityAlgebra(running_example())
        # f2: c -> b -- requires c before b in the derivation order
        assert algebra.consistent(["f2"], ("c", "b"))
        assert not algebra.consistent(["f2"], ("b", "c"))

    def test_unique(self):
        algebra = PrimalityAlgebra(running_example())
        assert algebra.unique(frozenset("c"), frozenset("c"), ["f1"])
        assert not algebra.unique(frozenset("c"), frozenset("c"), [])
        assert algebra.unique(frozenset("b"), frozenset("c"), [])

    def test_rhs_set_and_outside_all(self):
        algebra = PrimalityAlgebra(running_example())
        assert algebra.rhs_set(["f1", "f2"]) == frozenset("cb")
        assert algebra.outside_all(frozenset("c"), ["f1", "f2"]) == frozenset(
            {"f2"}
        )

    def test_leaf_states_satisfy_property_b(self):
        algebra = PrimalityAlgebra(running_example())
        at, fds = frozenset("abc"), frozenset({"f1"})
        states = list(algebra.leaf_states(at, fds))
        assert states
        for y, fy, co, dc, fc in states:
            assert y | frozenset(co) == at and not (y & frozenset(co))
            assert fy == algebra.outside(y, at, fds)
            assert dc == algebra.rhs_set(fc)
            assert algebra.consistent(fc, co)


class TestDecompositionPreparation:
    def test_rhs_invariant_enforced(self):
        s = running_example()
        nice = prepare_decision_decomposition(s, "a")
        fd_names = {f.name for f in s.fds}
        for node in nice.tree.nodes():
            bag = nice.bag(node)
            for e in bag:
                if e in fd_names:
                    assert s.fd(e).rhs in bag

    def test_decision_root_contains_attribute(self):
        s = running_example()
        for a in s.attributes:
            nice = prepare_decision_decomposition(s, a)
            assert a in nice.bag(nice.tree.root)

    def test_enumeration_leaves_cover_attributes(self):
        s = running_example()
        nice = prepare_enumeration_decomposition(s)
        leaf_elements = set()
        for node in nice.tree.nodes():
            if nice.tree.is_leaf(node):
                leaf_elements |= nice.bag(node)
        assert set(s.attributes) <= leaf_elements

    def test_enumeration_root_is_not_branch(self):
        s = running_example()
        nice = prepare_enumeration_decomposition(s)
        assert len(nice.tree.children(nice.tree.root)) < 2


class TestPrograms:
    def test_figure6_rule_count(self):
        """Figure 6: 1 leaf + 2 attr-intro + 3 fd-intro + 2 attr-removal
        + 3 fd-removal + 1 branch (+1 copy) + 1 success."""
        program = primality_program("a")
        assert len(program.rules) == 14

    def test_enumeration_program_has_prime_rule(self):
        program = enumeration_program()
        assert "prime" in program.intensional_predicates()
        assert "solvedown" in program.intensional_predicates()
        assert "solve" in program.intensional_predicates()

    def test_encoding_splits_bags(self):
        s = running_example()
        nice = prepare_decision_decomposition(s, "a")
        encoded = encode_for_primality(s, nice)
        fd_names = {f.name for f in s.fds}
        for node, at, fd in encoded.relation("bag"):
            assert not (at & fd_names)
            assert fd <= fd_names
