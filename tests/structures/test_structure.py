"""Unit and property tests for repro.structures.structure."""

import pytest
from hypothesis import given, strategies as st

from repro.structures import (
    Fact,
    GRAPH_SIGNATURE,
    PointedStructure,
    Signature,
    Structure,
)

SIG = Signature.of(e=2, p=1)


def make(domain, edges=(), points=()):
    return Structure(SIG, domain, {"e": edges, "p": points})


class TestConstruction:
    def test_relations_default_empty(self):
        s = Structure(SIG, [1, 2])
        assert s.relation("e") == frozenset()
        assert s.relation("p") == frozenset()

    def test_unknown_predicate_raises(self):
        with pytest.raises(ValueError):
            Structure(SIG, [1], {"q": {(1,)}})

    def test_arity_mismatch_raises(self):
        with pytest.raises(ValueError):
            Structure(SIG, [1], {"e": {(1,)}})

    def test_element_outside_domain_raises(self):
        with pytest.raises(ValueError):
            Structure(SIG, [1], {"e": {(1, 2)}})

    def test_holds(self):
        s = make([1, 2], edges={(1, 2)})
        assert s.holds("e", 1, 2)
        assert not s.holds("e", 2, 1)

    def test_size_counts_domain_and_cells(self):
        s = make([1, 2], edges={(1, 2)}, points={(1,)})
        assert s.size() == 2 + 2 + 1

    def test_facts_sorted_and_typed(self):
        s = make([1, 2], edges={(1, 2)}, points={(2,)})
        facts = list(s.facts())
        assert Fact("e", (1, 2)) in facts
        assert Fact("p", (2,)) in facts
        assert len(facts) == 2


class TestDerivedStructures:
    def test_induced_keeps_internal_tuples_only(self):
        s = make([1, 2, 3], edges={(1, 2), (2, 3)})
        sub = s.induced({1, 2})
        assert sub.relation("e") == frozenset({(1, 2)})
        assert sub.domain == frozenset({1, 2})

    def test_induced_unknown_element_raises(self):
        with pytest.raises(ValueError):
            make([1]).induced({2})

    def test_with_facts(self):
        s = make([1, 2])
        s2 = s.with_facts([Fact("e", (1, 2))])
        assert s2.holds("e", 1, 2)
        assert not s.holds("e", 1, 2)  # immutability

    def test_with_elements(self):
        s = make([1]).with_elements([2, 3])
        assert s.domain == frozenset({1, 2, 3})

    def test_renamed(self):
        s = make([1, 2], edges={(1, 2)})
        r = s.renamed({1: "a", 2: "b"})
        assert r.holds("e", "a", "b")

    def test_renamed_non_injective_raises(self):
        with pytest.raises(ValueError):
            make([1, 2]).renamed({1: "x", 2: "x"})

    def test_disjoint_union_merges(self):
        a = make([1, 2], edges={(1, 2)})
        b = make([2, 3], edges={(2, 3)})
        u = a.disjoint_union(b)
        assert u.domain == frozenset({1, 2, 3})
        assert u.holds("e", 1, 2) and u.holds("e", 2, 3)

    def test_disjoint_union_signature_mismatch_raises(self):
        with pytest.raises(ValueError):
            make([1]).disjoint_union(Structure(GRAPH_SIGNATURE, [1]))

    def test_gaifman_edges_undirected_cooccurrence(self):
        s = make([1, 2, 3], edges={(1, 2)})
        edges = s.gaifman_edges()
        flat = {frozenset(e) for e in edges}
        assert flat == {frozenset({1, 2})}

    def test_atoms_involving(self):
        s = make([1, 2, 3], edges={(1, 2), (2, 3)}, points={(2,)})
        atoms = set(s.atoms_involving(2))
        assert len(atoms) == 3


class TestIsomorphism:
    def test_isomorphic_paths(self):
        a = make([1, 2, 3], edges={(1, 2), (2, 3)})
        b = make(["x", "y", "z"], edges={("x", "y"), ("y", "z")})
        assert a.is_isomorphic_to(b)

    def test_non_isomorphic_edge_counts(self):
        a = make([1, 2], edges={(1, 2)})
        b = make([1, 2], edges={(1, 2), (2, 1)})
        assert not a.is_isomorphic_to(b)

    def test_fixed_mapping_constrains(self):
        a = make([1, 2], edges={(1, 2)})
        b = make([1, 2], edges={(2, 1)})
        assert a.is_isomorphic_to(b)  # swap works
        assert not a.is_isomorphic_to(b, fixed={1: 1})

    def test_pointed_isomorphism(self):
        a = PointedStructure(make([1, 2], edges={(1, 2)}), (1,))
        b = PointedStructure(make([5, 6], edges={(5, 6)}), (5,))
        c = PointedStructure(make([5, 6], edges={(5, 6)}), (6,))
        assert a.is_isomorphic_to(b)
        assert not a.is_isomorphic_to(c)

    def test_pointed_requires_domain_membership(self):
        with pytest.raises(ValueError):
            PointedStructure(make([1]), (2,))


@given(
    st.sets(st.integers(0, 5), min_size=1),
    st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5))),
)
def test_induced_on_full_domain_is_identity(domain, edges):
    edges = {e for e in edges if e[0] in domain and e[1] in domain}
    s = make(domain, edges=edges)
    assert s.induced(domain) == s


@given(
    st.sets(st.integers(0, 4), min_size=1),
    st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4))),
    st.sets(st.integers(0, 4)),
)
def test_induced_is_monotone_idempotent(domain, edges, keep):
    edges = {e for e in edges if e[0] in domain and e[1] in domain}
    keep = keep & domain
    s = make(domain, edges=edges)
    once = s.induced(keep)
    assert once.induced(keep) == once


@given(st.sets(st.integers(0, 5), min_size=1))
def test_every_structure_isomorphic_to_itself(domain):
    s = make(domain)
    assert s.is_isomorphic_to(s)
