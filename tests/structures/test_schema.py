"""Unit and property tests for repro.structures.schema."""

import pytest
from hypothesis import given

from repro.structures import (
    FunctionalDependency,
    RelationalSchema,
    running_example,
)

from ..conftest import small_schemas


class TestParsing:
    def test_running_example_shape(self):
        s = running_example()
        assert "".join(s.attributes) == "abcdeg"
        assert len(s.fds) == 5
        assert s.fd("f1").lhs == frozenset("ab")
        assert s.fd("f1").rhs == "c"

    def test_multi_rhs_fd_is_split(self):
        s = RelationalSchema.parse("R = abc; a -> bc")
        assert len(s.fds) == 2
        assert {f.rhs for f in s.fds} == {"b", "c"}

    def test_parse_no_fds(self):
        s = RelationalSchema.parse("R = ab;")
        assert s.fds == ()

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            RelationalSchema.parse("nonsense")
        with pytest.raises(ValueError):
            RelationalSchema.parse("R = ab; a b")

    def test_duplicate_fd_names_rejected(self):
        f = FunctionalDependency("f1", frozenset("a"), "b")
        with pytest.raises(ValueError):
            RelationalSchema("ab", [f, f])

    def test_fd_unknown_attribute_rejected(self):
        f = FunctionalDependency("f1", frozenset("z"), "b")
        with pytest.raises(ValueError):
            RelationalSchema("ab", [f])

    def test_fd_name_attribute_clash_rejected(self):
        f = FunctionalDependency("a", frozenset("a"), "b")
        with pytest.raises(ValueError):
            RelationalSchema("ab", [f])


class TestClosure:
    def test_example_2_1_closures(self):
        s = running_example()
        assert s.closure("cd") == frozenset("bcdeg")
        assert s.closure("abd") == frozenset("abcdeg")
        assert s.closure("a") == frozenset("a")
        assert s.closure("") == frozenset()

    def test_closure_unknown_attr_raises(self):
        with pytest.raises(ValueError):
            running_example().closure("z")

    def test_is_closed(self):
        s = running_example()
        assert s.is_closed(s.closure("cd"))
        assert not s.is_closed("c")

    @given(small_schemas())
    def test_closure_is_extensive_monotone_idempotent(self, schema):
        attrs = list(schema.attributes)
        half = frozenset(attrs[: len(attrs) // 2])
        full = frozenset(attrs)
        c = schema.closure(half)
        assert half <= c
        assert c <= schema.closure(full)
        assert schema.closure(c) == c

    @given(small_schemas())
    def test_closure_matches_naive_derivation(self, schema):
        """The counting algorithm agrees with naive saturation."""
        start = frozenset(schema.attributes[:2])
        derived = set(start)
        changed = True
        while changed:
            changed = False
            for f in schema.fds:
                if f.lhs <= derived and f.rhs not in derived:
                    derived.add(f.rhs)
                    changed = True
        assert schema.closure(start) == frozenset(derived)


class TestKeys:
    def test_example_2_1_keys(self):
        """Example 2.1: the keys are exactly abd and acd."""
        keys = running_example().candidate_keys()
        assert keys == {frozenset("abd"), frozenset("acd")}

    def test_is_key(self):
        s = running_example()
        assert s.is_key(frozenset("abd"))
        assert not s.is_key(frozenset("abcd"))  # superkey, not minimal
        assert not s.is_key(frozenset("ab"))

    def test_minimize_superkey(self):
        s = running_example()
        key = s.minimize_superkey(s.attributes)
        assert s.is_key(key)

    def test_minimize_non_superkey_raises(self):
        with pytest.raises(ValueError):
            running_example().minimize_superkey("ab")

    @given(small_schemas())
    def test_every_candidate_key_is_a_key(self, schema):
        for key in schema.candidate_keys():
            assert schema.is_key(key)

    @given(small_schemas())
    def test_no_candidate_key_contains_another(self, schema):
        keys = list(schema.candidate_keys())
        for a in keys:
            for b in keys:
                if a is not b:
                    assert not a < b


class TestPrimality:
    def test_example_2_1_primes(self):
        """Example 2.1: a, b, c, d are prime; e and g are not."""
        s = running_example()
        assert s.prime_attributes_bruteforce() == frozenset("abcd")
        assert s.is_prime_bruteforce("a")
        assert not s.is_prime_bruteforce("e")

    def test_unknown_attribute_raises(self):
        with pytest.raises(ValueError):
            running_example().is_prime_bruteforce("z")

    @given(small_schemas())
    def test_closed_set_characterization_agrees(self, schema):
        """Example 2.6's characterization == key membership."""
        for a in schema.attributes:
            assert schema.is_prime_via_closed_set(a) == schema.is_prime_bruteforce(a)

    def test_third_normal_form(self):
        assert not running_example().is_third_normal_form()
        assert RelationalSchema.parse("R = ab; a -> b").is_third_normal_form()


class TestStructureEncoding:
    def test_to_structure_relations(self):
        st = running_example().to_structure()
        assert st.holds("att", "a")
        assert st.holds("fd", "f1")
        assert st.holds("lh", "a", "f1")
        assert st.holds("rh", "c", "f1")
        assert len(st.domain) == 6 + 5

    @given(small_schemas())
    def test_structure_roundtrip(self, schema):
        assert RelationalSchema.from_structure(schema.to_structure()) == schema

    def test_describe_lists_fds(self):
        text = running_example().describe()
        assert "R = abcdeg" in text
        assert "f1" in text
