"""Unit tests for repro.structures.graphs."""

import pytest
from hypothesis import given

from repro.structures import (
    Graph,
    gaifman_graph,
    graph_to_structure,
    relabel,
    running_example,
    structure_to_graph,
    subgraph,
)

from ..conftest import small_graphs


class TestFamilies:
    def test_path_counts(self):
        g = Graph.path(5)
        assert g.vertex_count() == 5
        assert g.edge_count() == 4

    def test_cycle_counts(self):
        g = Graph.cycle(5)
        assert g.edge_count() == 5

    def test_cycle_of_two_is_single_edge(self):
        assert Graph.cycle(2).edge_count() == 1

    def test_complete_counts(self):
        g = Graph.complete(5)
        assert g.edge_count() == 10

    def test_grid_counts(self):
        g = Graph.grid(3, 4)
        assert g.vertex_count() == 12
        assert g.edge_count() == 3 * 3 + 2 * 4

    def test_neighbors(self):
        g = Graph.path(3)
        assert g.neighbors(1) == frozenset({0, 2})


class TestBasicOps:
    def test_add_edge_adds_vertices(self):
        g = Graph()
        g.add_edge("a", "b")
        assert g.vertices == frozenset({"a", "b"})

    def test_edges_canonical_once(self):
        g = Graph(edges=[(1, 2), (2, 1)])
        assert g.edge_count() == 1

    def test_self_loop(self):
        g = Graph(edges=[(1, 1)])
        assert g.has_edge(1, 1)

    def test_copy_is_independent(self):
        g = Graph.path(3)
        h = g.copy()
        h.add_edge(0, 2)
        assert not g.has_edge(0, 2)

    def test_subgraph(self):
        g = Graph.cycle(5)
        h = subgraph(g, {0, 1, 2})
        assert h.edge_count() == 2

    def test_relabel(self):
        g = Graph.path(3)
        h = relabel(g, {0: "a", 1: "b", 2: "c"})
        assert h.has_edge("a", "b")

    def test_relabel_non_injective_raises(self):
        with pytest.raises(ValueError):
            relabel(Graph.path(3), {0: 1})


class TestConversions:
    def test_structure_stores_both_orientations(self):
        s = graph_to_structure(Graph.path(2))
        assert s.holds("e", 0, 1) and s.holds("e", 1, 0)

    @given(small_graphs())
    def test_roundtrip(self, g):
        back = structure_to_graph(graph_to_structure(g))
        assert back.vertices == g.vertices
        assert back.edges() == g.edges() or {
            frozenset(e) for e in back.edges()
        } == {frozenset(e) for e in g.edges()}

    def test_gaifman_of_schema_structure_is_incidence_graph(self):
        """Remark in Section 2.2: the Gaifman graph of the schema
        structure is the incidence graph of the hypergraph H(R, F)."""
        schema = running_example()
        g = gaifman_graph(schema.to_structure())
        # bipartite: attribute-attribute edges never occur
        fd_names = {f.name for f in schema.fds}
        for u, v in g.edges():
            assert (u in fd_names) != (v in fd_names)
        # f1: ab -> c touches exactly a, b, c
        assert g.neighbors("f1") == frozenset({"a", "b", "c"})
