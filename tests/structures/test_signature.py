"""Unit tests for repro.structures.signature."""

import pytest

from repro.structures import (
    GRAPH_SIGNATURE,
    SCHEMA_SIGNATURE,
    Predicate,
    Signature,
)


class TestPredicate:
    def test_str(self):
        assert str(Predicate("e", 2)) == "e/2"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Predicate("", 1)

    def test_rejects_negative_arity(self):
        with pytest.raises(ValueError):
            Predicate("p", -1)

    def test_ordering_is_by_name_then_arity(self):
        assert Predicate("a", 1) < Predicate("b", 0)


class TestSignature:
    def test_of_constructor(self):
        sig = Signature.of(e=2, p=1)
        assert sig.arity("e") == 2
        assert sig.arity("p") == 1

    def test_arity_unknown_raises(self):
        with pytest.raises(KeyError):
            Signature.of(e=2).arity("missing")

    def test_contains(self):
        sig = Signature.of(e=2)
        assert "e" in sig
        assert "f" not in sig

    def test_len_and_iter(self):
        sig = Signature.of(a=1, b=2, c=3)
        assert len(sig) == 3
        assert sorted(sig) == ["a", "b", "c"]

    def test_predicates_are_sorted(self):
        sig = Signature.of(z=1, a=2)
        assert [p.name for p in sig.predicates()] == ["a", "z"]

    def test_equality_and_hash(self):
        assert Signature.of(e=2) == Signature.of(e=2)
        assert hash(Signature.of(e=2)) == hash(Signature.of(e=2))
        assert Signature.of(e=2) != Signature.of(e=1)

    def test_extended_adds_predicates(self):
        extended = GRAPH_SIGNATURE.extended({"root": 1})
        assert "root" in extended
        assert "e" in extended
        assert "root" not in GRAPH_SIGNATURE  # original untouched

    def test_extended_same_arity_is_noop(self):
        extended = GRAPH_SIGNATURE.extended({"e": 2})
        assert extended == GRAPH_SIGNATURE

    def test_extended_conflicting_arity_raises(self):
        with pytest.raises(ValueError):
            GRAPH_SIGNATURE.extended({"e": 3})

    def test_graph_signature_shape(self):
        assert GRAPH_SIGNATURE.arity("e") == 2
        assert len(GRAPH_SIGNATURE) == 1

    def test_schema_signature_shape(self):
        """Section 2.2: tau = {fd, att, lh, rh}."""
        assert SCHEMA_SIGNATURE.arity("fd") == 1
        assert SCHEMA_SIGNATURE.arity("att") == 1
        assert SCHEMA_SIGNATURE.arity("lh") == 2
        assert SCHEMA_SIGNATURE.arity("rh") == 2

    def test_repr_mentions_predicates(self):
        assert "e/2" in repr(GRAPH_SIGNATURE)
