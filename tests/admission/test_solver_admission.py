"""Admission wired through CourcelleSolver.decide/query/solve_many."""

import pickle

import pytest

from repro.errors import AdmissionRejected, WidthExceeded
from repro.mso import formulas, query as mso_query
from repro.structures import GRAPH_SIGNATURE, Structure
from repro.treewidth import decompose_structure

from .conftest import CORPUS_DIR
from .test_verify import corrupt_td, path_structure

HAS_NEIGHBOR = formulas.has_neighbor("x")


def clique(n):
    edges = [(a, b) for a in range(n) for b in range(n) if a != b]
    return Structure(GRAPH_SIGNATURE, range(n), {"e": edges})


class TestLegacyPathUnchanged:
    """With ``admission=None`` (the default) behaviour is byte-identical
    to the pre-admission solver -- including its failure mode."""

    def test_clean_query(self, neighbor_solver):
        s = path_structure(5)
        assert neighbor_solver.query(s) == frozenset(s.domain)

    def test_overwidth_still_raises_value_error(self, neighbor_solver):
        s = path_structure(5)
        wide = decompose_structure(clique(4))
        with pytest.raises(ValueError, match="exceeds"):
            neighbor_solver.query(path_structure(4), wide)

    def test_width_exceeded_carries_fingerprint(self, neighbor_solver):
        from repro.structures import structure_fingerprint

        s = path_structure(4)
        wide = decompose_structure(clique(4))
        with pytest.raises(WidthExceeded) as err:
            neighbor_solver.query(s, wide)
        assert err.value.limit == 1
        assert err.value.width == wide.width
        assert err.value.fingerprint == structure_fingerprint(s)
        assert err.value.fingerprint in str(err.value)


class TestPerCallAdmission:
    def test_query_repairs_corrupt_td(self, neighbor_solver):
        s = path_structure(4)
        td = corrupt_td(
            {0: [0, 1, 99], 1: [1, 2], 2: [2, 3]},
            {0: [1], 1: [2], 2: []},
        )
        got = neighbor_solver.query(s, td, admission="repair")
        assert got == frozenset(s.domain)

    def test_query_degrades_over_envelope(self, neighbor_solver):
        s = clique(4)
        got = neighbor_solver.query(s, admission="degrade")
        assert got == mso_query(s, HAS_NEIGHBOR, "x")

    def test_query_strict_rejects(self, neighbor_solver):
        s = clique(4)
        with pytest.raises(AdmissionRejected):
            neighbor_solver.query(s, admission="strict")

    def test_solve_admitted_returns_report(self, neighbor_solver):
        s = clique(4)
        answer, report = neighbor_solver.solve_admitted(s, policy="degrade")
        assert answer == mso_query(s, HAS_NEIGHBOR, "x")
        assert report.verdict == "degraded"

    def test_invalid_policy_rejected_at_call(self, neighbor_solver):
        with pytest.raises(ValueError, match="admission policy"):
            neighbor_solver.query(path_structure(4), admission="bogus")


class TestDefaultAdmission:
    def test_ctor_policy_applies_to_every_call(self):
        from repro.core import CourcelleSolver, undirected_graph_filter

        solver = CourcelleSolver(
            HAS_NEIGHBOR,
            GRAPH_SIGNATURE,
            width=1,
            free_var="x",
            structure_filter=undirected_graph_filter,
            admission="degrade",
        )
        s = clique(4)
        assert solver.query(s) == mso_query(s, HAS_NEIGHBOR, "x")

    def test_ctor_rejects_unknown_policy(self):
        from repro.core import CourcelleSolver, undirected_graph_filter

        with pytest.raises(ValueError, match="admission policy"):
            CourcelleSolver(
                HAS_NEIGHBOR,
                GRAPH_SIGNATURE,
                width=1,
                free_var="x",
                structure_filter=undirected_graph_filter,
                admission="everything-goes",
            )


class TestSolveMany:
    def mixed_batch(self):
        return [path_structure(4), clique(4), path_structure(3)]

    def test_serial_per_item_verdicts(self, neighbor_solver):
        batch = self.mixed_batch()
        results = neighbor_solver.solve_many(batch, admission="degrade")
        assert results[0] == frozenset(batch[0].domain)
        assert results[1] == mso_query(batch[1], HAS_NEIGHBOR, "x")
        assert results[2] == frozenset(batch[2].domain)

    def test_serial_rejected_item_resolves_in_place(self, neighbor_solver):
        from repro.admission import load_corpus_case
        import os

        raw = load_corpus_case(
            os.path.join(CORPUS_DIR, "10_domain_closure.json")
        )["structure"]
        batch = [path_structure(4), raw, path_structure(3)]
        results = neighbor_solver.solve_many(batch, admission="degrade")
        assert results[0] == frozenset(batch[0].domain)
        assert isinstance(results[1], AdmissionRejected)
        assert results[1].report.verdict == "rejected"
        assert results[2] == frozenset(batch[2].domain)

    def test_pool_matches_serial(self, neighbor_solver):
        batch = self.mixed_batch()
        serial = neighbor_solver.solve_many(batch, admission="degrade")
        pooled = neighbor_solver.solve_many(
            batch, admission="degrade", workers=2
        )
        assert pooled == serial


class TestCloningAndPickling:
    def solver_with_default(self):
        from repro.core import CourcelleSolver, undirected_graph_filter

        return CourcelleSolver(
            HAS_NEIGHBOR,
            GRAPH_SIGNATURE,
            width=1,
            free_var="x",
            structure_filter=undirected_graph_filter,
            admission="repair",
        )

    def test_pickle_carries_admission(self):
        solver = self.solver_with_default()
        back = pickle.loads(pickle.dumps(solver))
        assert back.admission == "repair"

    def test_with_backend_carries_admission(self):
        solver = self.solver_with_default()
        assert solver.with_backend("naive").admission == "repair"

    def test_replanned_carries_admission(self):
        from repro.datalog.profile import PlanProfile

        solver = self.solver_with_default()
        assert solver.replanned(PlanProfile()).admission == "repair"
