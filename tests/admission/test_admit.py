"""The admission ladder itself: verify -> repair -> redecompose ->
degrade -> reject, arbitrated by policy."""

import pytest

from repro.admission import POLICIES, admit
from repro.errors import AdmissionRejected
from repro.structures import GRAPH_SIGNATURE, Signature, Structure
from repro.treewidth import decompose_structure

from .test_verify import corrupt_td, path_structure


def clique(n):
    edges = [(a, b) for a in range(n) for b in range(n) if a != b]
    return Structure(GRAPH_SIGNATURE, range(n), {"e": edges})


class TestPolicyValidation:
    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown admission policy"):
            admit(
                path_structure(),
                signature=GRAPH_SIGNATURE,
                width=1,
                policy="lenient",
            )

    def test_policies_are_ordered_by_leniency(self):
        assert POLICIES == ("strict", "repair", "degrade")


class TestCleanTraffic:
    def test_clean_with_td_is_admitted_untouched(self):
        s = path_structure(5)
        td = decompose_structure(s)
        result = admit(s, signature=GRAPH_SIGNATURE, width=1, td=td)
        assert result.action == "solve"
        assert result.td is td
        assert result.structure is s
        assert result.report.verdict == "admitted"
        assert result.report.violations == ()
        assert result.report.repairs == ()

    def test_clean_without_td_decomposes(self):
        s = path_structure(5)
        result = admit(s, signature=GRAPH_SIGNATURE, width=1)
        assert result.action == "solve"
        assert result.td is not None and result.td.width <= 1
        # clean td-less traffic is not "repaired": nothing was wrong
        assert result.report.verdict == "admitted"
        assert result.report.repairs == ()

    def test_small_structure_goes_direct(self):
        s = Structure(GRAPH_SIGNATURE, [0], {"e": []})
        result = admit(s, signature=GRAPH_SIGNATURE, width=2)
        assert result.action == "direct"
        assert result.td is None
        assert result.report.verdict == "admitted"


class TestStrict:
    def test_strict_rejects_any_structure_violation(self):
        sig = Signature.of(e=2, colour=1)
        s = Structure(sig, range(3), {"e": [(0, 1), (1, 0)], "colour": [(0,)]})
        with pytest.raises(AdmissionRejected) as err:
            admit(s, signature=GRAPH_SIGNATURE, width=1, policy="strict")
        report = err.value.report
        assert report.verdict == "rejected"
        assert report.fingerprint is not None
        assert "unknown-predicate" in {v.code for v in report.violations}

    def test_strict_rejects_any_decomposition_violation(self):
        s = path_structure(4)
        td = corrupt_td(
            {0: [0, 1, 99], 1: [1, 2], 2: [2, 3]},
            {0: [1], 1: [2], 2: []},
        )
        with pytest.raises(AdmissionRejected) as err:
            admit(s, signature=GRAPH_SIGNATURE, width=1, td=td, policy="strict")
        assert "alien-element" in {v.code for v in err.value.report.violations}

    def test_strict_admits_clean(self):
        s = path_structure(4)
        td = decompose_structure(s)
        result = admit(
            s, signature=GRAPH_SIGNATURE, width=1, td=td, policy="strict"
        )
        assert result.report.verdict == "admitted"


class TestRepair:
    def test_in_place_repair(self):
        s = path_structure(4)
        td = corrupt_td(
            {0: [0, 1, 99], 1: [1, 2], 2: [2, 3]},
            {0: [1], 1: [2], 2: []},
        )
        result = admit(s, signature=GRAPH_SIGNATURE, width=1, td=td)
        assert result.action == "solve"
        assert result.report.verdict == "repaired"
        assert "dropped-alien-elements:1" in result.report.repairs
        assert not result.report.redecomposed

    def test_redecompose_on_corrupt_tree(self):
        s = path_structure(4)
        td = corrupt_td(  # cycle: unrepairable in place
            {0: [0, 1], 1: [1, 2], 2: [2, 3]},
            {0: [1], 1: [2], 2: [0]},
        )
        result = admit(s, signature=GRAPH_SIGNATURE, width=1, td=td)
        assert result.action == "solve"
        assert result.report.verdict == "repaired"
        assert result.report.redecomposed
        assert any(
            r.startswith("redecomposed:") for r in result.report.repairs
        )

    def test_structure_coercion_then_solve(self):
        sig = Signature.of(e=2, colour=1)
        s = Structure(
            sig,
            range(4),
            {"e": [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)],
             "colour": [(0,)]},
        )
        result = admit(s, signature=GRAPH_SIGNATURE, width=1)
        assert result.action == "solve"
        assert result.structure.signature == GRAPH_SIGNATURE
        assert "restricted-structure-to-signature" in result.report.repairs
        assert result.report.verdict == "repaired"

    def test_repair_rejects_over_envelope(self):
        s = clique(4)
        with pytest.raises(AdmissionRejected) as err:
            admit(s, signature=GRAPH_SIGNATURE, width=1, policy="repair")
        report = err.value.report
        assert report.verdict == "rejected"
        assert any(v.code == "width-exceeded" for v in report.residual)

    def test_repair_rejects_fatal_structure(self):
        s = Structure(Signature.of(e=3), range(3), {"e": [(0, 1, 2)]})
        with pytest.raises(AdmissionRejected) as err:
            admit(s, signature=GRAPH_SIGNATURE, width=1, policy="repair")
        assert "arity-mismatch" in {
            v.code for v in err.value.report.violations
        }


class TestDegrade:
    def test_over_envelope_degrades(self):
        s = clique(4)
        result = admit(s, signature=GRAPH_SIGNATURE, width=1, policy="degrade")
        assert result.action == "degrade"
        assert result.td is None
        assert result.report.verdict == "degraded"
        assert result.report.degrade_reason is not None
        assert "exceeds the compiled width" in result.report.degrade_reason
        assert result.meter is not None

    def test_degrade_still_rejects_fatal_structure(self):
        s = Structure(Signature.of(e=3), range(3), {"e": [(0, 1, 2)]})
        with pytest.raises(AdmissionRejected):
            admit(s, signature=GRAPH_SIGNATURE, width=1, policy="degrade")


class TestReport:
    def test_to_dict_round_trips_json(self):
        import json

        s = clique(4)
        result = admit(s, signature=GRAPH_SIGNATURE, width=1, policy="degrade")
        payload = json.loads(json.dumps(result.report.to_dict()))
        assert payload["verdict"] == "degraded"
        assert payload["width_limit"] == 1
        assert payload["policy"] == "degrade"

    def test_rejection_message_names_policy_and_fingerprint(self):
        s = clique(4)
        with pytest.raises(AdmissionRejected) as err:
            admit(s, signature=GRAPH_SIGNATURE, width=1, policy="strict")
        msg = str(err.value)
        assert "policy strict" in msg
        assert err.value.report.fingerprint in msg
