"""Repair: fix repairable decompositions in place, else rebuild."""

import time

from repro.admission import redecompose, repair_decomposition, verify_decomposition
from repro.datalog.budget import SolveBudget
from repro.structures import GRAPH_SIGNATURE, Structure

from .test_verify import corrupt_td, path_structure


def clique(n):
    edges = [(a, b) for a in range(n) for b in range(n) if a != b]
    return Structure(GRAPH_SIGNATURE, range(n), {"e": edges})


class TestRepairDecomposition:
    def test_drops_alien_elements(self):
        s = path_structure(4)
        td = corrupt_td(
            {0: [0, 1, 99], 1: [1, 2], 2: [2, 3, 77]},
            {0: [1], 1: [2], 2: []},
        )
        repaired, repairs = repair_decomposition(td, s)
        assert repaired is not None
        assert "dropped-alien-elements:2" in repairs
        assert verify_decomposition(repaired, s) == []

    def test_covers_missing_tuple(self):
        s = path_structure(4)
        # edge (2, 3) is in no bag
        td = corrupt_td(
            {0: [0, 1], 1: [1, 2], 2: [2]},
            {0: [1], 1: [2], 2: []},
        )
        repaired, repairs = repair_decomposition(td, s)
        assert repaired is not None
        assert any(r.startswith("covered-missing-tuples:") for r in repairs)
        assert verify_decomposition(repaired, s) == []

    def test_covers_missing_element(self):
        edges = [(0, 1), (1, 0)]
        s = Structure(GRAPH_SIGNATURE, range(3), {"e": edges})  # 2 isolated
        td = corrupt_td({0: [0, 1]}, {0: []})
        repaired, repairs = repair_decomposition(td, s)
        assert repaired is not None
        assert "covered-missing-elements:1" in repairs
        assert verify_decomposition(repaired, s) == []

    def test_splices_connectedness(self):
        s = path_structure(4)
        # element 1 occurs in bags 0 and 2 but not the bag between them
        td = corrupt_td(
            {0: [0, 1], 1: [2], 2: [1, 2], 3: [2, 3]},
            {0: [1], 1: [2], 2: [3], 3: []},
        )
        repaired, repairs = repair_decomposition(td, s)
        assert repaired is not None
        assert "spliced-connectedness:1" in repairs
        assert verify_decomposition(repaired, s) == []

    def test_passes_compose(self):
        # aliens + a missing tuple + an isolated element, all at once
        edges = [(0, 1), (1, 0), (1, 2), (2, 1)]
        s = Structure(GRAPH_SIGNATURE, range(4), {"e": edges})  # 3 isolated
        td = corrupt_td(
            {0: [0, 1, 42], 1: [1]},
            {0: [1], 1: []},
        )
        repaired, repairs = repair_decomposition(td, s)
        assert repaired is not None
        assert verify_decomposition(repaired, s) == []
        assert any(r.startswith("dropped-alien-elements") for r in repairs)
        assert any(r.startswith("covered-missing-tuples") for r in repairs)
        assert any(r.startswith("covered-missing-elements") for r in repairs)

    def test_input_decomposition_untouched(self):
        s = path_structure(4)
        td = corrupt_td(
            {0: [0, 1, 99], 1: [1, 2], 2: [2, 3]},
            {0: [1], 1: [2], 2: []},
        )
        before = {n: set(b) for n, b in td.bags.items()}
        repair_decomposition(td, s)
        assert {n: set(b) for n, b in td.bags.items()} == before


class TestRedecompose:
    def test_min_fill_first(self):
        s = path_structure(5)
        td, method = redecompose(s, width_limit=1)
        assert method == "min_fill"
        assert td is not None and td.width <= 1
        assert verify_decomposition(td, s) == []

    def test_best_effort_over_envelope(self):
        s = clique(4)  # treewidth 3 -- no strategy can reach width 1
        td, method = redecompose(s, width_limit=1)
        assert td is not None
        assert td.width == 3  # best achievable, reported for the ladder
        assert method is not None

    def test_exhausted_budget_yields_nothing(self):
        s = path_structure(5)
        meter = SolveBudget(max_seconds=1e-6).start()
        time.sleep(0.01)  # the meter is already over before any strategy runs
        td, method = redecompose(s, width_limit=1, meter=meter)
        assert td is None and method is None
