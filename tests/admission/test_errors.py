"""The typed exception taxonomy (repro.errors)."""

import pickle

import pytest

from repro.errors import (
    AdmissionRejected,
    InvalidDecomposition,
    InvalidStructure,
    Violation,
    ViolationError,
    WidthExceeded,
    summarize_violations,
)


class TestViolation:
    def test_frozen_record(self):
        v = Violation("alien-element", "bags mention non-vertices: [9]")
        with pytest.raises(AttributeError):
            v.code = "other"

    def test_to_dict_is_json_shaped(self):
        v = Violation("connectedness", "connectedness violated for 3", subject=(3,))
        d = v.to_dict()
        assert d["code"] == "connectedness"
        assert d["subject"] == ["3"]
        assert d["repairable"] is False

    def test_summarize_joins_all_messages(self):
        vs = [Violation("a", "first"), Violation("b", "second")]
        assert summarize_violations(vs) == "first; second"


class TestValueErrorCompatibility:
    """Every admission exception must keep satisfying legacy
    ``except ValueError`` handlers and message-substring pins."""

    def test_hierarchy(self):
        assert issubclass(ViolationError, ValueError)
        assert issubclass(InvalidStructure, ViolationError)
        assert issubclass(InvalidDecomposition, ViolationError)
        assert issubclass(WidthExceeded, InvalidDecomposition)
        assert issubclass(AdmissionRejected, ViolationError)

    def test_from_violations_joins_every_message(self):
        vs = [
            Violation("element-uncovered", "vertices never covered: [2]"),
            Violation("connectedness", "connectedness violated for 1"),
        ]
        exc = InvalidDecomposition.from_violations(vs)
        assert "never covered" in str(exc)
        assert "connectedness" in str(exc)
        assert exc.violations == tuple(vs)

    def test_catchable_as_value_error(self):
        with pytest.raises(ValueError, match="never covered"):
            raise InvalidDecomposition.from_violations(
                [Violation("element-uncovered", "vertices never covered: [2]")]
            )


class TestPickling:
    """Exceptions cross the solver service's worker pipes; every class
    must survive a pickle round trip with its payload intact."""

    def test_violation_error(self):
        exc = ViolationError("boom", [Violation("x", "boom")])
        back = pickle.loads(pickle.dumps(exc))
        assert type(back) is ViolationError
        assert str(back) == "boom"
        assert back.violations == exc.violations

    def test_subclasses_preserve_type(self):
        for cls in (InvalidStructure, InvalidDecomposition):
            back = pickle.loads(pickle.dumps(cls("bad", ())))
            assert type(back) is cls

    def test_width_exceeded_carries_context(self):
        exc = WidthExceeded(
            "width 5 exceeds the compiled width 2",
            width=5,
            limit=2,
            fingerprint="abc123",
        )
        back = pickle.loads(pickle.dumps(exc))
        assert (back.width, back.limit, back.fingerprint) == (5, 2, "abc123")
        assert "exceeds" in str(back)

    def test_admission_rejected_carries_report(self):
        from repro.admission import AdmissionReport

        report = AdmissionReport(policy="strict", verdict="rejected")
        exc = AdmissionRejected("no", (), report=report)
        back = pickle.loads(pickle.dumps(exc))
        assert back.report.policy == "strict"
        assert back.report.verdict == "rejected"
