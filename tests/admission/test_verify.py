"""Verification: structure-vs-signature and decomposition checks
collect *all* violations as structured records."""

import pytest

from repro.admission import (
    RawStructure,
    coerce_structure,
    tree_violations,
    verify_decomposition,
    verify_structure,
)
from repro.structures import GRAPH_SIGNATURE, Signature, Structure
from repro.treewidth import RootedTree, TreeDecomposition, decompose_structure


def path_structure(n=4):
    edges = [(i, i + 1) for i in range(n - 1)]
    return Structure(
        GRAPH_SIGNATURE, range(n), {"e": edges + [(b, a) for a, b in edges]}
    )


class TestVerifyStructure:
    def test_clean_fast_path(self):
        assert verify_structure(path_structure(), GRAPH_SIGNATURE) == []

    def test_unknown_predicate_is_repairable(self):
        sig = Signature.of(e=2, colour=1)
        s = Structure(sig, range(3), {"e": [(0, 1)], "colour": [(2,)]})
        violations = verify_structure(s, GRAPH_SIGNATURE)
        assert [v.code for v in violations] == ["unknown-predicate"]
        assert all(v.repairable for v in violations)

    def test_missing_predicate_is_repairable(self):
        s = Structure(Signature.of(), [0, 1], {})
        violations = verify_structure(s, GRAPH_SIGNATURE)
        assert [v.code for v in violations] == ["missing-predicate"]
        assert violations[0].repairable

    def test_arity_mismatch_is_fatal(self):
        sig = Signature.of(e=3)
        s = Structure(sig, range(3), {"e": [(0, 1, 2)]})
        violations = verify_structure(s, GRAPH_SIGNATURE)
        assert [v.code for v in violations] == ["arity-mismatch"]
        assert not violations[0].repairable

    def test_raw_structure_domain_closure(self):
        raw = RawStructure(GRAPH_SIGNATURE, [0, 1], {"e": [(0, 9)]})
        violations = verify_structure(raw, GRAPH_SIGNATURE)
        assert "domain-closure" in {v.code for v in violations}
        assert not any(v.repairable for v in violations)

    def test_raw_structure_tuple_arity(self):
        raw = RawStructure(GRAPH_SIGNATURE, [0, 1], {"e": [(0, 1, 0)]})
        # the raw signature says e/2 but a tuple has three slots
        violations = verify_structure(raw, GRAPH_SIGNATURE)
        assert "arity-mismatch" in {v.code for v in violations}

    def test_unreadable_object_is_one_fatal_violation(self):
        class Garbage:
            @property
            def signature(self):
                raise RuntimeError("nope")

        violations = verify_structure(Garbage(), GRAPH_SIGNATURE)
        assert [v.code for v in violations] == ["unreadable-structure"]
        assert not violations[0].repairable

    def test_all_violations_collected_not_first_fail(self):
        sig = Signature.of(e=3, colour=1)
        s = Structure(sig, range(3), {"e": [(0, 1, 2)], "colour": [(0,)]})
        codes = {v.code for v in verify_structure(s, GRAPH_SIGNATURE)}
        assert codes == {"arity-mismatch", "unknown-predicate"}


class TestCoerceStructure:
    def test_drops_unknown_predicates(self):
        sig = Signature.of(e=2, colour=1)
        s = Structure(sig, range(3), {"e": [(0, 1), (1, 0)], "colour": [(2,)]})
        violations = verify_structure(s, GRAPH_SIGNATURE)
        coerced = coerce_structure(s, GRAPH_SIGNATURE, violations)
        assert isinstance(coerced, Structure)
        assert coerced.signature == GRAPH_SIGNATURE
        assert coerced.relation("e") == s.relation("e")

    def test_refuses_fatal_violations(self):
        raw = RawStructure(GRAPH_SIGNATURE, [0, 1], {"e": [(0, 9)]})
        violations = verify_structure(raw, GRAPH_SIGNATURE)
        assert coerce_structure(raw, GRAPH_SIGNATURE, violations) is None


def corrupt_td(bags, children, root=0):
    """Assemble a (possibly invalid) decomposition without the
    constructors' checks."""
    tree = RootedTree.__new__(RootedTree)
    tree.root = root
    tree._children = {n: list(c) for n, c in children.items()}
    tree._parent = {}
    for node, kids in children.items():
        for child in kids:
            tree._parent[child] = node
    for node in children:
        tree._parent.setdefault(node, None)
    tree._next_id = max(children, default=0) + 1
    td = TreeDecomposition.__new__(TreeDecomposition)
    td.tree = tree
    td.bags = {n: frozenset(b) for n, b in bags.items()}
    return td


class TestTreeViolations:
    def test_clean_tree(self):
        td = decompose_structure(path_structure())
        assert tree_violations(td) == []

    def test_cycle_is_diagnosed_not_hung(self):
        td = corrupt_td(
            {0: [0, 1], 1: [1, 2], 2: [2, 3]},
            {0: [1], 1: [2], 2: [0]},
        )
        codes = [v.code for v in tree_violations(td)]
        assert codes and set(codes) == {"tree-corrupt"}

    def test_orphan_node(self):
        td = corrupt_td(
            {0: [0, 1], 1: [1, 2], 2: [2, 3]},
            {0: [1], 1: [], 2: []},
        )
        assert any(
            "unreachable" in v.message for v in tree_violations(td)
        )

    def test_missing_bag(self):
        td = corrupt_td({0: [0, 1]}, {0: [1], 1: []})
        assert any("no bag" in v.message for v in tree_violations(td))

    def test_missing_root(self):
        td = corrupt_td({1: [0, 1]}, {1: []}, root=0)
        violations = tree_violations(td)
        assert violations[0].code == "tree-corrupt"
        assert "root" in violations[0].message


class TestVerifyDecomposition:
    def test_collects_axiom_violations(self):
        s = path_structure(4)
        td = corrupt_td(
            {0: [0, 1], 1: [1], 2: [2, 3]},
            {0: [1], 1: [2], 2: []},
        )
        codes = {v.code for v in verify_decomposition(td, s)}
        assert "tuple-uncovered" in codes  # edge (1, 2) in no bag

    def test_width_violation_keeps_exceeds_pin(self):
        s = path_structure(4)
        td = decompose_structure(s)
        violations = verify_decomposition(td, s, width_limit=0)
        width = [v for v in violations if v.code == "width-exceeded"]
        assert len(width) == 1
        assert "exceeds" in width[0].message
        assert not width[0].repairable

    def test_corrupt_tree_short_circuits_axioms(self):
        s = path_structure(4)
        td = corrupt_td(
            {0: [0, 1], 1: [1, 2], 2: [2, 3]},
            {0: [1], 1: [2], 2: [0]},
        )
        assert {v.code for v in verify_decomposition(td, s)} == {"tree-corrupt"}
