"""Conformance pins for the on-disk malformed corpus: every case admits
to exactly the verdict its JSON declares, and the repairs the ladder
reports actually address the injected defects."""

import os

import pytest

from repro.admission import admit, load_corpus, load_corpus_case
from repro.errors import AdmissionRejected
from repro.structures import GRAPH_SIGNATURE

from .conftest import CORPUS_DIR

CASES = load_corpus(CORPUS_DIR)


def test_corpus_is_present_and_covers_the_ladder():
    assert len(CASES) >= 10
    expected = {case["expect"] for case in CASES}
    assert expected == {"admitted", "repaired", "degraded", "rejected"}


@pytest.mark.parametrize("case", CASES, ids=[c["name"] for c in CASES])
def test_case_reaches_declared_verdict(case):
    kwargs = dict(
        signature=GRAPH_SIGNATURE,
        width=1,
        td=case["td"],
        policy="degrade",
    )
    if case["expect"] == "rejected":
        with pytest.raises(AdmissionRejected) as err:
            admit(case["structure"], **kwargs)
        report = err.value.report
        assert report.verdict == "rejected"
        assert report.violations  # rejection always names its reasons
    else:
        result = admit(case["structure"], **kwargs)
        assert result.report.verdict == case["expect"]
        if case["expect"] == "repaired":
            assert result.report.repairs
        if case["expect"] == "degraded":
            assert result.action == "degrade"


@pytest.mark.parametrize(
    "case",
    [c for c in CASES if c["expect"] in ("repaired", "rejected")],
    ids=[c["name"] for c in CASES if c["expect"] in ("repaired", "rejected")],
)
def test_report_names_each_injected_defect(case):
    try:
        result = admit(
            case["structure"],
            signature=GRAPH_SIGNATURE,
            width=1,
            td=case["td"],
            policy="degrade",
        )
        violations = result.report.violations
    except AdmissionRejected as exc:
        violations = exc.report.violations
    codes = {v.code for v in violations}
    for defect in case["defects"]:
        assert defect in codes, (
            f"{case['name']}: injected defect {defect!r} missing from "
            f"report codes {sorted(codes)}"
        )


def test_load_corpus_case_single_file():
    path = os.path.join(CORPUS_DIR, "00_clean.json")
    case = load_corpus_case(path)
    assert case["name"] == "clean"
    assert case["expect"] == "admitted"
    assert case["td"] is not None


def test_strict_policy_only_passes_the_clean_case():
    strict_admitted = []
    for case in CASES:
        try:
            admit(
                case["structure"],
                signature=GRAPH_SIGNATURE,
                width=1,
                td=case["td"],
                policy="strict",
            )
        except AdmissionRejected:
            continue
        strict_admitted.append(case["name"])
    assert strict_admitted == ["clean"]
