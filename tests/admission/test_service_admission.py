"""Admission at the service boundary: malformed traffic is contained,
counted, and quarantined -- a malformed request can never kill a
worker or hang a future."""

import pytest

from repro.admission import load_corpus
from repro.errors import AdmissionRejected
from repro.mso import formulas, query as mso_query
from repro.service import SolverService
from repro.structures import GRAPH_SIGNATURE, Structure

from .conftest import CORPUS_DIR
from .test_verify import path_structure

HAS_NEIGHBOR = formulas.has_neighbor("x")


def clique(n):
    edges = [(a, b) for a in range(n) for b in range(n) if a != b]
    return Structure(GRAPH_SIGNATURE, range(n), {"e": edges})


def raw_rejected_structure():
    cases = {c["name"]: c for c in load_corpus(CORPUS_DIR)}
    return cases["domain_closure"]["structure"]


class TestServiceAdmission:
    def test_mixed_batch_all_resolve_without_worker_deaths(
        self, neighbor_solver
    ):
        batch = [path_structure(6), clique(4), raw_rejected_structure(),
                 path_structure(4)]
        with SolverService(workers=2, admission="degrade") as service:
            handle = service.register(neighbor_solver)
            results = handle.solve_many(batch, timeout=120)
            stats = service.stats
        assert results[0] == frozenset(batch[0].domain)
        assert results[1] == mso_query(batch[1], HAS_NEIGHBOR, "x")
        assert isinstance(results[2], AdmissionRejected)
        assert results[3] == frozenset(batch[3].domain)
        assert stats.worker_restarts == 0
        assert stats.admitted == 2
        assert stats.degraded == 1
        assert stats.admission_rejected == 1

    def test_per_request_override_on_plain_service(self, neighbor_solver):
        from repro.service import ShardFailed

        wide = clique(4)
        with SolverService(workers=1) as service:
            handle = service.register(neighbor_solver)
            # no service default: the same structure fails legacy-style
            # without admission (whole batch raises), degrades with it
            with pytest.raises(ShardFailed, match="WidthExceeded"):
                handle.solve_many([wide])
            got = handle.solve_many([wide], admission="degrade")
            assert got[0] == mso_query(wide, HAS_NEIGHBOR, "x")

    def test_rejections_are_quarantined_and_fast_fail(self, neighbor_solver):
        raw = raw_rejected_structure()
        with SolverService(workers=1, admission="degrade") as service:
            handle = service.register(neighbor_solver)
            first = handle.solve_many([raw])
            assert isinstance(first[0], AdmissionRejected)
            records = service.quarantined()
            assert len(records) == 1
            assert records[0].reason == "admission"
            # resubmission fast-fails from the quarantine with the
            # stored rejection -- no worker round trip
            again = handle.solve_many([raw])
            assert isinstance(again[0], AdmissionRejected)
            assert again[0].report.verdict == "rejected"
            assert service.stats.quarantine_rejections == 1
            # evicting re-opens the door
            assert service.evict_quarantine(records[0].fingerprint) == 1
            assert service.quarantined() == ()

    def test_invalid_service_policy_rejected(self):
        with pytest.raises(ValueError, match="admission policy"):
            SolverService(workers=1, admission="yolo")

    def test_whole_corpus_chaos(self, neighbor_solver):
        """The acceptance gate: the full malformed corpus through a
        live service -- zero worker deaths, zero hung futures, every
        request resolves to an answer or a typed rejection."""
        cases = load_corpus(CORPUS_DIR)
        with SolverService(workers=2, admission="degrade") as service:
            handle = service.register(neighbor_solver)
            futures = [
                handle.submit(case["structure"], td=case["td"])
                for case in cases
            ]
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(("ok", future.result(timeout=120)))
                except AdmissionRejected as exc:
                    outcomes.append(("rejected", exc))
            stats = service.stats
        assert len(outcomes) == len(cases)
        assert stats.worker_restarts == 0
        for case, (kind, payload) in zip(cases, outcomes):
            if case["expect"] == "rejected":
                assert kind == "rejected", case["name"]
                assert payload.report.verdict == "rejected"
            else:
                assert kind == "ok", case["name"]
                assert isinstance(payload, frozenset)
        assert stats.admitted + stats.repaired + stats.degraded == sum(
            1 for c in cases if c["expect"] != "rejected"
        )
        assert stats.admission_rejected == sum(
            1 for c in cases if c["expect"] == "rejected"
        )

    def test_legacy_traffic_untouched_by_default(self, neighbor_solver):
        batch = [path_structure(5), path_structure(3)]
        with SolverService(workers=1) as service:
            handle = service.register(neighbor_solver)
            results = handle.solve_many(batch)
            stats = service.stats
        assert results == [frozenset(s.domain) for s in batch]
        assert stats.admitted == 0
        assert stats.repaired == 0
        assert stats.degraded == 0
        assert stats.admission_rejected == 0
