"""Property-based corruption suite: take a valid decomposition, mutate
it randomly (drop bag elements, inject aliens, clear bags, rewire tree
edges), and assert the admission layer either repairs it to a clean
decomposition or rejects with a report naming a real violation -- and
that answers served through admission always agree with direct MSO
evaluation."""

from hypothesis import given, strategies as st

from repro.admission import admit, verify_decomposition
from repro.errors import AdmissionRejected
from repro.mso import formulas, query as mso_query
from repro.structures import GRAPH_SIGNATURE, graph_to_structure
from repro.treewidth import RootedTree, TreeDecomposition, decompose_structure

from ..conftest import small_graphs, small_trees

HAS_NEIGHBOR = formulas.has_neighbor("x")


def clone_td(td):
    """A mutable deep copy built with the same constructor-bypassing
    surgery the corpus loader uses -- mutations must not be able to
    trip the constructors' own checks."""
    tree = RootedTree.__new__(RootedTree)
    tree.root = td.tree.root
    tree._children = {n: list(c) for n, c in td.tree._children.items()}
    tree._parent = dict(td.tree._parent)
    tree._next_id = td.tree._next_id
    clone = TreeDecomposition.__new__(TreeDecomposition)
    clone.tree = tree
    clone.bags = dict(td.bags)
    return clone


@st.composite
def mutations(draw, max_mutations: int = 4):
    """A list of (kind, salt) mutation directives, applied in order."""
    kinds = st.sampled_from(
        ["drop-element", "inject-alien", "clear-bag", "rewire-edge"]
    )
    n = draw(st.integers(min_value=1, max_value=max_mutations))
    return [
        (draw(kinds), draw(st.integers(min_value=0, max_value=10**6)))
        for _ in range(n)
    ]


def apply_mutations(td, directives):
    """Deterministically apply each directive; returns the number that
    actually changed something."""
    applied = 0
    for kind, salt in directives:
        nodes = sorted(td.bags)
        if not nodes:
            break
        node = nodes[salt % len(nodes)]
        if kind == "drop-element":
            bag = sorted(td.bags[node], key=repr)
            if not bag:
                continue
            victim = bag[salt % len(bag)]
            td.bags[node] = td.bags[node] - {victim}
            applied += 1
        elif kind == "inject-alien":
            td.bags[node] = td.bags[node] | {9000 + salt % 7}
            applied += 1
        elif kind == "clear-bag":
            if not td.bags[node]:
                continue
            td.bags[node] = frozenset()
            applied += 1
        elif kind == "rewire-edge":
            # re-parent a non-root node onto an arbitrary node --
            # possibly creating a cycle or orphaning a subtree
            non_root = [n for n in nodes if n != td.tree.root]
            if not non_root:
                continue
            child = non_root[salt % len(non_root)]
            target = nodes[(salt // 7) % len(nodes)]
            if target == child:
                continue
            old = td.tree._parent.get(child)
            if old is not None and child in td.tree._children.get(old, ()):
                td.tree._children[old].remove(child)
            td.tree._parent[child] = target
            td.tree._children.setdefault(target, []).append(child)
            applied += 1
    return applied


@given(graph=small_trees(), directives=mutations())
def test_mutated_decompositions_repair_clean_or_reject_with_report(
    graph, directives
):
    structure = graph_to_structure(graph)
    td = decompose_structure(structure)
    mutated = clone_td(td)
    apply_mutations(mutated, directives)
    try:
        result = admit(
            structure,
            signature=GRAPH_SIGNATURE,
            width=1,
            td=mutated,
            policy="repair",
        )
    except AdmissionRejected as exc:
        # a rejection must carry evidence, and that evidence must be
        # real: re-verifying the mutated input reproduces the codes
        assert exc.report.violations
        if exc.report.redecomposed or not any(
            v.code == "width-exceeded" for v in exc.report.violations
        ):
            recheck = {
                v.code
                for v in verify_decomposition(mutated, structure, 1)
            }
            assert {v.code for v in exc.report.violations} & recheck
        return
    assert result.report.verdict in ("admitted", "repaired")
    if result.action == "solve":
        # whatever the ladder hands the solver must satisfy the
        # Section 2.2 axioms and the width envelope, unconditionally
        assert verify_decomposition(result.td, result.structure, 1) == []


@given(graph=small_graphs(), directives=mutations())
def test_admitted_answers_agree_with_direct_evaluation(
    neighbor_solver, graph, directives
):
    """Conformance: for every graph (any treewidth) and any corruption,
    an answer served through the admission pipeline under ``degrade``
    equals ground-truth direct MSO evaluation -- repair and degradation
    may change *how* we solve, never *what* the answer is."""
    structure = graph_to_structure(graph)
    td = decompose_structure(structure)
    mutated = clone_td(td)
    apply_mutations(mutated, directives)
    expected = mso_query(structure, HAS_NEIGHBOR, "x")
    got = neighbor_solver.query(structure, mutated, admission="degrade")
    assert got == expected
