"""Shared fixtures for the admission-layer tests."""

from __future__ import annotations

import os

import pytest

from repro.core import CourcelleSolver, undirected_graph_filter
from repro.mso import formulas
from repro.structures import GRAPH_SIGNATURE

CORPUS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "data", "malformed"
)


@pytest.fixture(scope="session")
def neighbor_solver():
    """A width-1 has_neighbor solver -- the cheap compiled program the
    admission tests drive end to end."""
    return CourcelleSolver(
        formulas.has_neighbor("x"),
        GRAPH_SIGNATURE,
        width=1,
        free_var="x",
        structure_filter=undirected_graph_filter,
    )
