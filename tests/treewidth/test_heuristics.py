"""Unit and property tests for the elimination-order heuristics."""

import pytest
from hypothesis import given

from repro.structures import Graph, running_example
from repro.treewidth import (
    decompose_graph,
    decompose_structure,
    decomposition_from_order,
    min_degree_order,
    min_fill_order,
)

from ..conftest import small_graphs


class TestOrders:
    @given(small_graphs())
    def test_orders_are_permutations(self, g):
        for order in (min_degree_order(g), min_fill_order(g)):
            assert sorted(order, key=repr) == sorted(g.vertices, key=repr)

    def test_min_degree_prefers_leaves(self):
        g = Graph.path(3)
        order = min_degree_order(g)
        assert order[0] in {0, 2}

    def test_min_fill_zero_on_chordal(self):
        # a triangle has no fill-in anywhere
        order = min_fill_order(Graph.complete(3))
        assert len(order) == 3


class TestDecompositionConstruction:
    def test_empty_graph(self):
        td = decompose_graph(Graph())
        assert td.width <= 0

    def test_wrong_order_raises(self):
        with pytest.raises(ValueError):
            decomposition_from_order(Graph.path(3), [0, 1])

    @given(small_graphs())
    def test_heuristic_decompositions_are_valid(self, g):
        for method in ("min_fill", "min_degree"):
            td = decompose_graph(g, method=method)
            td.validate_for_graph(g)

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            decompose_graph(Graph.path(2), method="magic")

    def test_known_widths(self):
        assert decompose_graph(Graph.path(6)).width == 1
        assert decompose_graph(Graph.cycle(6)).width == 2
        assert decompose_graph(Graph.complete(5)).width == 4

    def test_disconnected_graph(self):
        g = Graph(vertices=[0, 1, 2, 3], edges=[(0, 1), (2, 3)])
        td = decompose_graph(g)
        td.validate_for_graph(g)

    def test_structure_decomposition_covers_tuples(self):
        s = running_example().to_structure()
        td = decompose_structure(s)
        td.validate_for_structure(s)
        assert td.width == 2  # Example 2.2: tw of the schema structure is 2


def test_matches_networkx_quality_on_families():
    """Our heuristics should be no worse than networkx's on easy graphs."""
    import networkx as nx
    from networkx.algorithms.approximation import treewidth_min_fill_in

    for g in (Graph.cycle(8), Graph.grid(3, 4), Graph.path(9)):
        nxg = nx.Graph(list(g.edges()))
        nx_width, _ = treewidth_min_fill_in(nxg)
        ours = decompose_graph(g).width
        assert ours <= nx_width + 1
