"""Tests for the Definition 2.3 normal form (Proposition 2.4)."""

import pytest
from hypothesis import given

from repro.structures import Graph, graph_to_structure, running_example
from repro.treewidth import (
    NormalizedNodeKind,
    decompose_graph,
    decompose_structure,
    normalize,
    widen,
)
from repro.treewidth.normalize import (
    assign_tuples,
    binarize,
    equalize_branches,
    interpolate_edges,
    pad_bags_to_full_size,
)

from ..conftest import small_graphs


def normalized_of(graph):
    td = decompose_graph(graph)
    return td, normalize(td)


class TestPipelineSteps:
    def test_padding_fills_all_bags(self):
        td = decompose_graph(Graph.path(5))
        padded = pad_bags_to_full_size(td)
        target = td.width + 1
        assert all(len(b) == target for b in padded.bags.values())
        padded.validate_for_graph(Graph.path(5))

    def test_padding_to_explicit_width(self):
        td = decompose_graph(Graph.cycle(6))
        padded = pad_bags_to_full_size(td, td.width)
        assert padded.width == td.width

    def test_binarize_caps_children(self):
        g = Graph(vertices=[0, 1, 2, 3, 4], edges=[(0, i) for i in range(1, 5)])
        td = decompose_graph(g)
        b = binarize(td)
        assert all(len(b.tree.children(n)) <= 2 for n in b.tree.nodes())
        b.validate_for_graph(g)

    def test_equalize_branches(self):
        g = Graph(vertices=[0, 1, 2, 3, 4], edges=[(0, i) for i in range(1, 5)])
        td = equalize_branches(binarize(pad_bags_to_full_size(decompose_graph(g))))
        for n in td.tree.nodes():
            if len(td.tree.children(n)) == 2:
                for c in td.tree.children(n):
                    assert td.bags[c] == td.bags[n]

    def test_interpolation_single_swaps(self):
        g = Graph.cycle(8)
        td = interpolate_edges(
            equalize_branches(binarize(pad_bags_to_full_size(decompose_graph(g))))
        )
        for n in td.tree.nodes():
            for c in td.tree.children(n):
                assert len(td.bags[n] - td.bags[c]) <= 1
        td.validate_for_graph(g)


class TestNormalize:
    def test_single_node_graph(self):
        g = Graph(vertices=[0, 1], edges=[(0, 1)])
        ntd = normalize(decompose_graph(g))
        ntd.validate(graph_to_structure(g))

    @given(small_graphs(max_vertices=7))
    def test_normal_form_on_random_graphs(self, g):
        if g.vertex_count() < 2:
            return
        td = decompose_graph(g)
        ntd = normalize(td)
        # Definition 2.3 plus the TD axioms, checked structurally:
        ntd.validate(graph_to_structure(g))
        # width preserved exactly (Proposition 2.4)
        assert ntd.width == td.width

    def test_node_kinds_partition(self):
        td, ntd = normalized_of(Graph.grid(3, 3))
        kinds = {ntd.node_kind(n) for n in ntd.tree.nodes()}
        assert NormalizedNodeKind.LEAF in kinds

    def test_bags_are_distinct_tuples(self):
        _, ntd = normalized_of(Graph.cycle(6))
        for n in ntd.tree.nodes():
            bag = ntd.bag(n)
            assert len(set(bag)) == len(bag) == ntd.width + 1

    def test_branch_children_identical(self):
        g = Graph(vertices=list(range(7)), edges=[(0, i) for i in range(1, 7)])
        _, ntd = normalized_of(g)
        for n in ntd.tree.nodes():
            children = ntd.tree.children(n)
            if len(children) == 2:
                assert ntd.bag(children[0]) == ntd.bag(n)
                assert ntd.bag(children[1]) == ntd.bag(n)

    def test_permutation_of(self):
        _, ntd = normalized_of(Graph.cycle(5))
        for n in ntd.tree.nodes():
            if ntd.node_kind(n) is NormalizedNodeKind.PERMUTATION:
                pi = ntd.permutation_of(n)
                (child,) = ntd.tree.children(n)
                bag, child_bag = ntd.bag(n), ntd.bag(child)
                assert tuple(bag[pi[i]] for i in range(len(pi))) == child_bag

    def test_schema_structure_normalization(self):
        s = running_example().to_structure()
        td = decompose_structure(s)
        ntd = normalize(td)
        ntd.validate(s)
        assert ntd.width == 2

    def test_as_set_decomposition_valid(self):
        g = Graph.grid(2, 3)
        _, ntd = normalized_of(g)
        ntd.as_set_decomposition().validate_for_graph(g)


class TestWiden:
    def test_widen_to_larger_width(self):
        g = Graph.path(6)
        td = decompose_graph(g)  # width 1
        wide = widen(td, 3)
        assert wide.width == 3
        wide.validate_for_graph(g)
        assert all(len(b) == 4 for b in wide.bags.values())

    def test_widen_noop_at_same_width(self):
        g = Graph.cycle(5)
        td = decompose_graph(g)
        assert widen(td, td.width).width == td.width

    def test_widen_smaller_raises(self):
        td = decompose_graph(Graph.complete(4))
        with pytest.raises(ValueError):
            widen(td, 1)

    def test_widen_impossible_raises(self):
        td = decompose_graph(Graph.path(2))
        with pytest.raises(ValueError):
            widen(td, 3)  # only two elements exist

    @given(small_graphs(max_vertices=6))
    def test_widen_then_normalize(self, g):
        if g.vertex_count() < 4:
            return
        td = decompose_graph(g)
        if td.width >= 3:
            return
        wide = widen(td, 3)
        ntd = normalize(wide)
        ntd.validate(graph_to_structure(g))
        assert ntd.width == 3
