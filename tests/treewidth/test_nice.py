"""Tests for the Section 5 modified ("nice") normal form."""

import pytest
from hypothesis import given

from repro.structures import Graph, graph_to_structure, running_example
from repro.treewidth import (
    NiceNodeKind,
    decompose_graph,
    decompose_structure,
    ensure_elements_in_leaves,
    make_nice,
    reroot_to_contain,
    surround_branches,
)

from ..conftest import small_graphs


class TestMakeNice:
    @given(small_graphs(max_vertices=7))
    def test_valid_on_random_graphs(self, g):
        if g.vertex_count() == 0:
            return
        td = decompose_graph(g)
        nice = make_nice(td)
        nice.validate(graph_to_structure(g))
        assert nice.width == td.width

    def test_unary_nodes_change_one_element(self):
        nice = make_nice(decompose_graph(Graph.grid(3, 3)))
        for n in nice.tree.nodes():
            kind = nice.node_kind(n)
            if kind is NiceNodeKind.INTRODUCTION:
                v = nice.introduced_element(n)
                (child,) = nice.tree.children(n)
                assert nice.bag(n) == nice.bag(child) | {v}
            elif kind is NiceNodeKind.REMOVAL:
                v = nice.removed_element(n)
                (child,) = nice.tree.children(n)
                assert nice.bag(n) == nice.bag(child) - {v}

    def test_branch_children_equal(self):
        g = Graph(vertices=list(range(7)), edges=[(0, i) for i in range(1, 7)])
        nice = make_nice(decompose_graph(g))
        for n in nice.tree.nodes():
            children = nice.tree.children(n)
            if len(children) == 2:
                assert nice.bag(children[0]) == nice.bag(n)
                assert nice.bag(children[1]) == nice.bag(n)

    def test_no_copy_nodes_without_surround(self):
        nice = make_nice(decompose_graph(Graph.cycle(6)))
        kinds = {nice.node_kind(n) for n in nice.tree.nodes()}
        assert NiceNodeKind.COPY not in kinds

    def test_interpolation_keys_control_order(self):
        """The PRIMALITY invariant: removal of FDs first, introduction of
        attributes first (exercised fully in the primality tests)."""
        s = running_example().to_structure()
        td = decompose_structure(s)
        fd_names = {f.name for f in running_example().fds}
        nice = make_nice(
            td,
            removal_key=lambda e: 0 if e in fd_names else 1,
            introduction_key=lambda e: 0 if e not in fd_names else 1,
        )
        nice.validate(s)


class TestSurroundBranches:
    def test_branch_parents_have_equal_bags(self):
        g = Graph(vertices=list(range(7)), edges=[(0, i) for i in range(1, 7)])
        nice = surround_branches(make_nice(decompose_graph(g)))
        nice.validate(graph_to_structure(g))
        for n in nice.tree.nodes():
            if nice.node_kind(n) is NiceNodeKind.BRANCH:
                parent = nice.tree.parent(n)
                assert parent is not None  # the root is never a branch
                assert nice.bag(parent) == nice.bag(n)

    def test_introduces_copy_kinds(self):
        g = Graph(vertices=list(range(7)), edges=[(0, i) for i in range(1, 7)])
        nice = surround_branches(make_nice(decompose_graph(g)))
        kinds = [nice.node_kind(n) for n in nice.tree.nodes()]
        if any(k is NiceNodeKind.BRANCH for k in kinds):
            assert any(k is NiceNodeKind.COPY for k in kinds)


class TestEnumerationPrep:
    @given(small_graphs(max_vertices=6))
    def test_every_vertex_reaches_a_leaf(self, g):
        if g.vertex_count() == 0:
            return
        td = ensure_elements_in_leaves(decompose_graph(g), g.vertices)
        td.validate_for_graph(g)
        leaf_elements = set()
        for node in td.tree.nodes():
            if td.tree.is_leaf(node):
                leaf_elements |= td.bags[node]
        assert g.vertices <= leaf_elements

    def test_leaf_coverage_survives_nicification(self):
        g = Graph.grid(3, 3)
        td = ensure_elements_in_leaves(decompose_graph(g), g.vertices)
        nice = surround_branches(make_nice(td))
        leaf_elements = set()
        for node in nice.tree.nodes():
            if nice.tree.is_leaf(node):
                leaf_elements |= nice.bag(node)
        assert g.vertices <= leaf_elements


class TestReroot:
    @given(small_graphs(max_vertices=6))
    def test_reroot_to_contain(self, g):
        if g.vertex_count() == 0:
            return
        td = decompose_graph(g)
        for v in sorted(g.vertices)[:3]:
            rerooted = reroot_to_contain(td, v)
            assert v in rerooted.bags[rerooted.tree.root]
            rerooted.validate_for_graph(g)

    def test_missing_element_raises(self):
        td = decompose_graph(Graph.path(3))
        with pytest.raises(ValueError):
            reroot_to_contain(td, 99)
