"""Tests for the exact treewidth DP."""

import pytest
from hypothesis import given

from repro.structures import Graph, gaifman_graph, running_example
from repro.treewidth import (
    decompose_graph,
    is_treewidth_at_most,
    treewidth_exact,
)

from ..conftest import small_graphs, small_trees


class TestKnownFamilies:
    def test_empty_and_edgeless(self):
        assert treewidth_exact(Graph()) == 0
        assert treewidth_exact(Graph(vertices=[1, 2, 3])) == 0

    def test_trees_have_width_one(self):
        assert treewidth_exact(Graph.path(7)) == 1

    def test_cycles_have_width_two(self):
        for n in (3, 4, 6):
            assert treewidth_exact(Graph.cycle(n)) == 2

    def test_cliques(self):
        for n in (2, 3, 5):
            assert treewidth_exact(Graph.complete(n)) == n - 1

    def test_grids(self):
        assert treewidth_exact(Graph.grid(2, 4)) == 2
        assert treewidth_exact(Graph.grid(3, 3)) == 3

    def test_running_example_schema_is_width_two(self):
        """Example 2.2: tw(A) = 2 for the running-example schema."""
        g = gaifman_graph(running_example().to_structure())
        assert treewidth_exact(g) == 2

    def test_too_large_raises(self):
        with pytest.raises(ValueError):
            treewidth_exact(Graph.complete(23))

    def test_decision_variant(self):
        assert is_treewidth_at_most(Graph.cycle(5), 2)
        assert not is_treewidth_at_most(Graph.cycle(5), 1)


@given(small_graphs(max_vertices=7))
def test_heuristics_upper_bound_exact(g):
    if g.vertex_count() == 0:
        return
    exact = treewidth_exact(g)
    assert decompose_graph(g, "min_fill").width >= exact
    assert decompose_graph(g, "min_degree").width >= exact


@given(small_trees(max_vertices=8))
def test_trees_are_width_at_most_one(g):
    assert treewidth_exact(g) <= 1
    # min_fill is exact on trees
    assert decompose_graph(g).width == treewidth_exact(g)
