"""Unit tests for repro.treewidth.decomposition."""

import pytest
from hypothesis import given

from repro.structures import Graph, graph_to_structure
from repro.treewidth import RootedTree, TreeDecomposition, decompose_graph

from ..conftest import small_graphs


class TestRootedTree:
    def test_single_node(self):
        t = RootedTree()
        assert t.node_count() == 1
        assert t.is_leaf(t.root)

    def test_add_child(self):
        t = RootedTree()
        c = t.add_child(t.root)
        assert t.parent(c) == t.root
        assert t.children(t.root) == (c,)

    def test_add_existing_child_raises(self):
        t = RootedTree()
        c = t.add_child(t.root)
        with pytest.raises(ValueError):
            t.add_child(t.root, c)

    def test_insert_above_middle(self):
        t = RootedTree()
        c = t.add_child(t.root)
        mid = t.insert_above(c)
        assert t.parent(c) == mid
        assert t.parent(mid) == t.root

    def test_insert_above_root_changes_root(self):
        t = RootedTree()
        old_root = t.root
        new_root = t.insert_above(old_root)
        assert t.root == new_root
        assert t.parent(old_root) == new_root

    def test_insert_chain_above_is_top_down(self):
        t = RootedTree()
        c = t.add_child(t.root)
        chain = t.insert_chain_above(c, 3)
        # chain[0] is nearest the root, chain[-1] is the parent of c
        assert t.parent(chain[0]) == t.root
        assert t.parent(c) == chain[-1]
        assert t.parent(chain[1]) == chain[0]

    def test_orders(self):
        t = RootedTree()
        a = t.add_child(t.root)
        b = t.add_child(t.root)
        aa = t.add_child(a)
        pre = list(t.preorder())
        post = list(t.postorder())
        assert pre[0] == t.root
        assert post[-1] == t.root
        assert set(pre) == set(post) == {t.root, a, b, aa}
        assert post.index(aa) < post.index(a)

    def test_subtree_nodes(self):
        t = RootedTree()
        a = t.add_child(t.root)
        aa = t.add_child(a)
        b = t.add_child(t.root)
        assert set(t.subtree_nodes(a)) == {a, aa}

    def test_rerooted_preserves_node_set(self):
        t = RootedTree()
        a = t.add_child(t.root)
        aa = t.add_child(a)
        r = t.rerooted(aa)
        assert r.root == aa
        assert set(r.nodes()) == set(t.nodes())
        assert r.parent(a) == aa
        assert r.parent(t.root) == a

    def test_copy_independent(self):
        t = RootedTree()
        c = t.copy()
        c.add_child(c.root)
        assert t.node_count() == 1


def chain_td(bags):
    tree = RootedTree()
    mapping = {0: tree.root}
    for i in range(1, len(bags)):
        mapping[i] = tree.add_child(mapping[i - 1])
    return TreeDecomposition(tree, {mapping[i]: bags[i] for i in range(len(bags))})


class TestTreeDecomposition:
    def test_width(self):
        td = chain_td([{1, 2}, {2, 3, 4}])
        assert td.width == 2

    def test_validate_accepts_valid(self):
        g = Graph.path(3)
        td = chain_td([{0, 1}, {1, 2}])
        td.validate_for_graph(g)

    def test_validate_rejects_uncovered_vertex(self):
        g = Graph.path(3)
        td = chain_td([{0, 1}])
        with pytest.raises(ValueError, match="never covered"):
            td.validate_for_graph(g)

    def test_validate_rejects_uncovered_edge(self):
        g = Graph.path(3)
        td = chain_td([{0, 1}, {2}])
        with pytest.raises(ValueError, match="covered by no bag"):
            td.validate_for_graph(g)

    def test_validate_rejects_disconnected_occurrences(self):
        g = Graph(vertices=[0, 1, 2])
        td = chain_td([{0}, {1}, {0, 2}])
        with pytest.raises(ValueError, match="connectedness"):
            td.validate_for_graph(g)

    def test_validate_rejects_alien_elements(self):
        g = Graph.path(2)
        td = chain_td([{0, 1, 99}])
        with pytest.raises(ValueError, match="non-vertices"):
            td.validate_for_graph(g)

    def test_structure_validation_checks_tuples(self):
        s = graph_to_structure(Graph.path(3))
        td = chain_td([{0, 1}, {1, 2}])
        td.validate_for_structure(s)
        bad = chain_td([{0}, {1}, {2}])
        assert not bad.is_valid_for_structure(s)

    def test_subtree_and_envelope_elements(self):
        td = chain_td([{1, 2}, {2, 3}, {3, 4}])
        nodes = list(td.tree.preorder())
        mid = nodes[1]
        assert td.subtree_elements(mid) == frozenset({2, 3, 4})
        assert td.envelope_elements(mid) == frozenset({1, 2, 3})

    def test_induced_substructures(self):
        """Definition 3.2 on the running path example."""
        s = graph_to_structure(Graph.path(3))
        td = chain_td([{0, 1}, {1, 2}])
        nodes = list(td.tree.preorder())
        sub = td.induced_substructure(s, nodes[1])
        assert sub.domain == frozenset({1, 2})
        env = td.induced_envelope_substructure(s, nodes[1])
        assert env.domain == frozenset({0, 1, 2})

    def test_find_node_containing(self):
        td = chain_td([{1}, {2}])
        assert td.bags[td.find_node_containing(2)] == frozenset({2})
        with pytest.raises(ValueError):
            td.find_node_containing(99)

    @given(small_graphs(max_vertices=6))
    def test_rerooting_preserves_validity(self, g):
        if g.vertex_count() == 0:
            return
        td = decompose_graph(g)
        for node in list(td.tree.nodes()):
            td.rerooted(node).validate_for_graph(g)
