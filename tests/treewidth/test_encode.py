"""Tests for the tau_td encodings (Section 4 / Section 5)."""

from repro.structures import Graph, graph_to_structure, running_example
from repro.treewidth import (
    TDNode,
    decompose_graph,
    decompose_structure,
    encode_nice,
    encode_normalized,
    make_nice,
    normalize,
)


def normalized_encoding(graph):
    structure = graph_to_structure(graph)
    ntd = normalize(decompose_graph(graph))
    return structure, ntd, encode_normalized(structure, ntd)


class TestEncodeNormalized:
    def test_signature_extension(self):
        _, ntd, encoded = normalized_encoding(Graph.cycle(5))
        assert encoded.signature.arity("bag") == ntd.width + 2
        for name in ("root", "leaf", "child1", "child2", "e"):
            assert name in encoded.signature

    def test_exactly_one_root(self):
        _, _, encoded = normalized_encoding(Graph.path(5))
        assert len(encoded.relation("root")) == 1

    def test_bag_facts_cover_all_nodes(self):
        _, ntd, encoded = normalized_encoding(Graph.cycle(6))
        assert len(encoded.relation("bag")) == ntd.node_count()

    def test_child_facts_match_tree(self):
        _, ntd, encoded = normalized_encoding(Graph.grid(2, 3))
        unary_or_binary = sum(
            1 for n in ntd.tree.nodes() if len(ntd.tree.children(n)) >= 1
        )
        assert len(encoded.relation("child1")) == unary_or_binary
        binary = sum(
            1 for n in ntd.tree.nodes() if len(ntd.tree.children(n)) == 2
        )
        assert len(encoded.relation("child2")) == binary

    def test_child1_direction_is_child_then_parent(self):
        """Section 4: child1(s1, s) -- s1 is the first child of s."""
        _, ntd, encoded = normalized_encoding(Graph.path(4))
        for s1, s in encoded.relation("child1"):
            assert ntd.tree.parent(s1.index) == s.index

    def test_original_facts_preserved(self):
        structure, _, encoded = normalized_encoding(Graph.path(3))
        assert encoded.relation("e") == structure.relation("e")

    def test_domain_is_union(self):
        """Section 4: dom(A_td) = dom(A) + tree nodes."""
        structure, ntd, encoded = normalized_encoding(Graph.cycle(4))
        expected = set(structure.domain) | {
            TDNode(n) for n in ntd.tree.nodes()
        }
        assert encoded.domain == frozenset(expected)

    def test_tdnode_str(self):
        assert str(TDNode(7)) == "s7"


class TestEncodeNice:
    def test_default_payload_is_frozenset(self):
        g = Graph.cycle(5)
        structure = graph_to_structure(g)
        nice = make_nice(decompose_graph(g))
        encoded = encode_nice(structure, nice)
        assert encoded.signature.arity("bag") == 2
        for node, bag in encoded.relation("bag"):
            assert isinstance(bag, frozenset)
            assert bag == nice.bag(node.index)

    def test_custom_payload_splits_bag(self):
        schema = running_example()
        structure = schema.to_structure()
        nice = make_nice(decompose_structure(structure))
        fd_names = {f.name for f in schema.fds}

        def payload(bag):
            return (
                frozenset(e for e in bag if e not in fd_names),
                frozenset(e for e in bag if e in fd_names),
            )

        encoded = encode_nice(structure, nice, bag_payload=payload)
        assert encoded.signature.arity("bag") == 3
        for node, at, fd in encoded.relation("bag"):
            assert at | fd == nice.bag(node.index)
            assert not (at & fd_names)

    def test_payload_constants_are_in_domain(self):
        g = Graph.path(3)
        structure = graph_to_structure(g)
        nice = make_nice(decompose_graph(g))
        encoded = encode_nice(structure, nice)
        for _, bag in encoded.relation("bag"):
            assert bag in encoded.domain
