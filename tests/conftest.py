"""Shared hypothesis strategies and settings for the test-suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings, strategies as st

from repro.structures import FunctionalDependency, Graph, RelationalSchema

settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def small_graphs(draw, max_vertices: int = 7):
    """Random simple undirected graphs with up to ``max_vertices`` nodes."""
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    graph = Graph(range(n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    if possible:
        chosen = draw(
            st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
        )
        for u, v in chosen:
            graph.add_edge(u, v)
    return graph


@st.composite
def small_trees(draw, max_vertices: int = 9):
    """Random labelled trees (treewidth <= 1)."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    graph = Graph(range(n))
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        graph.add_edge(v, parent)
    return graph


@st.composite
def small_schemas(draw, max_attrs: int = 6, max_fds: int = 5):
    """Random relational schemas small enough for brute-force checking."""
    n = draw(st.integers(min_value=1, max_value=max_attrs))
    attrs = [chr(ord("a") + i) for i in range(n)]
    num_fds = draw(st.integers(min_value=0, max_value=max_fds))
    fds = []
    for i in range(num_fds):
        rhs = draw(st.sampled_from(attrs))
        pool = [x for x in attrs if x != rhs]
        if not pool:
            continue
        lhs_size = draw(st.integers(min_value=1, max_value=min(3, len(pool))))
        lhs = frozenset(
            draw(
                st.lists(
                    st.sampled_from(pool),
                    min_size=lhs_size,
                    max_size=lhs_size,
                    unique=True,
                )
            )
        )
        fds.append(FunctionalDependency(f"f{i + 1}", lhs, rhs))
    return RelationalSchema(attrs, fds)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xBEEF)
