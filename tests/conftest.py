"""Shared hypothesis strategies and settings for the test-suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings, strategies as st

from repro.datalog import (
    Atom,
    Constant,
    Database,
    Literal,
    Program,
    Rule,
    Variable,
)
from repro.structures import FunctionalDependency, Graph, RelationalSchema

settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def small_graphs(draw, max_vertices: int = 7):
    """Random simple undirected graphs with up to ``max_vertices`` nodes."""
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    graph = Graph(range(n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    if possible:
        chosen = draw(
            st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
        )
        for u, v in chosen:
            graph.add_edge(u, v)
    return graph


@st.composite
def small_trees(draw, max_vertices: int = 9):
    """Random labelled trees (treewidth <= 1)."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    graph = Graph(range(n))
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        graph.add_edge(v, parent)
    return graph


@st.composite
def small_schemas(draw, max_attrs: int = 6, max_fds: int = 5):
    """Random relational schemas small enough for brute-force checking."""
    n = draw(st.integers(min_value=1, max_value=max_attrs))
    attrs = [chr(ord("a") + i) for i in range(n)]
    num_fds = draw(st.integers(min_value=0, max_value=max_fds))
    fds = []
    for i in range(num_fds):
        rhs = draw(st.sampled_from(attrs))
        pool = [x for x in attrs if x != rhs]
        if not pool:
            continue
        lhs_size = draw(st.integers(min_value=1, max_value=min(3, len(pool))))
        lhs = frozenset(
            draw(
                st.lists(
                    st.sampled_from(pool),
                    min_size=lhs_size,
                    max_size=lhs_size,
                    unique=True,
                )
            )
        )
        fds.append(FunctionalDependency(f"f{i + 1}", lhs, rhs))
    return RelationalSchema(attrs, fds)


#: the canonical query-driven workload shared by the backend and cache
#: tests (and mirrored by benchmarks/bench_datalog_engine.py): right-
#: linear transitive closure, whose linearity is load-bearing for the
#: magic-set O(n) single-source claim.
TC_TEXT = """
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
"""


def chain_edges(n: int) -> Database:
    """An n-node chain as an ``edge`` database."""
    db = Database()
    for i in range(n - 1):
        db.add("edge", (i, i + 1))
    return db


#: vocabulary shared by the random-program strategies: fixed arities so
#: generated rules and databases always line up.
EDB_ARITIES = {"edge": 2, "color": 1}
IDB_ARITIES = {"p": 2, "q": 1, "r": 1}
DATALOG_DOMAIN = list(range(5))

_VARS = [Variable(n) for n in ("X", "Y", "Z")]


@st.composite
def _rule(draw):
    """One safe rule: all variables occur in a positive body literal."""
    body: list[Literal] = []
    n_literals = draw(st.integers(min_value=1, max_value=3))
    all_preds = {**EDB_ARITIES, **IDB_ARITIES}
    for _ in range(n_literals):
        pred = draw(st.sampled_from(sorted(all_preds)))
        args = tuple(
            draw(st.sampled_from(_VARS))
            for _ in range(all_preds[pred])
        )
        body.append(Literal(Atom(pred, args)))
    bound = sorted(
        {a for lit in body for a in lit.atom.args}, key=lambda v: v.name
    )
    # optional negated *extensional* literal over already-bound variables
    if draw(st.booleans()):
        pred = draw(st.sampled_from(sorted(EDB_ARITIES)))
        args = tuple(
            draw(
                st.one_of(
                    st.sampled_from(bound),
                    st.sampled_from(DATALOG_DOMAIN).map(Constant),
                )
            )
            for _ in range(EDB_ARITIES[pred])
        )
        body.append(Literal(Atom(pred, args), positive=False))
    head_pred = draw(st.sampled_from(sorted(IDB_ARITIES)))
    head_args = tuple(
        draw(
            st.one_of(
                st.sampled_from(bound),
                st.sampled_from(DATALOG_DOMAIN).map(Constant),
            )
        )
        for _ in range(IDB_ARITIES[head_pred])
    )
    return Rule(Atom(head_pred, head_args), tuple(body))


@st.composite
def datalog_programs(draw, max_rules: int = 5):
    """Random safe, stratified programs over the shared vocabulary."""
    n = draw(st.integers(min_value=1, max_value=max_rules))
    return Program([draw(_rule()) for _ in range(n)])


@st.composite
def datalog_databases(draw, max_facts: int = 12):
    """Random extensional databases matching the shared vocabulary."""
    db = Database()
    n = draw(st.integers(min_value=0, max_value=max_facts))
    for _ in range(n):
        pred = draw(st.sampled_from(sorted(EDB_ARITIES)))
        args = tuple(
            draw(st.sampled_from(DATALOG_DOMAIN))
            for _ in range(EDB_ARITIES[pred])
        )
        db.add(pred, args)
    return db


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xBEEF)
