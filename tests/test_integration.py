"""Cross-system integration tests: every route to the same answer.

The paper's central claim is that the datalog route, the generic
MSO-to-datalog route, the MSO-to-FTA route and direct MSO evaluation all
compute the same queries -- these tests pin that down end-to-end on
shared instances.
"""

import random

import pytest

from repro.mso import evaluate, formulas, query
from repro.problems import (
    PrimalityDatalog,
    ThreeColoringDatalog,
    prime_attributes_datalog,
    prime_attributes_direct,
    prime_attributes_rerooting,
    primality_direct,
    random_partial_ktree,
    three_coloring_bruteforce,
    three_coloring_direct,
)
from repro.structures import (
    Graph,
    RelationalSchema,
    graph_to_structure,
    running_example,
)


class TestPrimalityAllRoutes:
    SCHEMAS = [
        running_example(),
        RelationalSchema.parse("R = abcd; a -> b, b -> c, c -> d"),
        RelationalSchema.parse("R = abc; ab -> c, c -> a"),
        RelationalSchema.parse("R = abcde; ab -> c, cd -> e, e -> a"),
    ]

    @pytest.mark.parametrize("schema", SCHEMAS, ids=lambda s: "".join(s.attributes))
    def test_five_routes_agree(self, schema):
        want = schema.prime_attributes_bruteforce()
        # 1. MSO evaluation of Example 2.6's query
        mso = query(schema.to_structure(), formulas.primality("x"), "x")
        # 2. Figure 6 direct DP per attribute
        direct = frozenset(
            a for a in schema.attributes if primality_direct(schema, a)
        )
        # 3. Section 5.3 linear enumeration
        enum = prime_attributes_direct(schema)
        # 4. quadratic re-rooting
        reroot = prime_attributes_rerooting(schema)
        # 5. the datalog interpreter
        datalog = prime_attributes_datalog(schema)
        assert mso == direct == enum == reroot == datalog == want


class TestThreeColoringAllRoutes:
    def test_routes_agree_on_random_partial_ktrees(self):
        rng = random.Random(2024)
        solver = ThreeColoringDatalog()
        for _ in range(6):
            graph, td = random_partial_ktree(rng, rng.randint(3, 8), 2)
            want = three_coloring_bruteforce(graph)
            assert three_coloring_direct(graph, td)[0] == want
            assert solver.decide(graph, td) == want
            assert evaluate(
                graph_to_structure(graph), formulas.three_colorability()
            ) == want

    def test_mso_agrees_on_families(self):
        solver = ThreeColoringDatalog()
        for g in (Graph.cycle(7), Graph.complete(4), Graph.grid(2, 4)):
            assert solver.decide(g) == evaluate(
                graph_to_structure(g), formulas.three_colorability()
            )


class TestCompiledSolverVsHandwritten:
    def test_generic_compiler_agrees_with_direct_query(self):
        """Theorem 4.5's generic program vs naive MSO on shared trees."""
        from repro.core import CourcelleSolver, undirected_graph_filter
        from repro.structures import GRAPH_SIGNATURE

        solver = CourcelleSolver(
            formulas.has_neighbor("x"),
            GRAPH_SIGNATURE,
            width=1,
            free_var="x",
            structure_filter=undirected_graph_filter,
        )
        rng = random.Random(7)
        for _ in range(4):
            n = rng.randint(2, 8)
            g = Graph(range(n))
            for v in range(1, n):
                g.add_edge(v, rng.randrange(v))
            s = graph_to_structure(g)
            assert solver.query(s) == query(s, formulas.has_neighbor("x"), "x")


class TestDecisionEnumerationConsistency:
    def test_decision_matches_enumeration_membership(self):
        rng = random.Random(31)
        from repro.problems import random_schema

        for _ in range(5):
            schema = random_schema(rng, rng.randint(2, 5), rng.randint(1, 4))
            primes = prime_attributes_direct(schema)
            for a in schema.attributes:
                assert primality_direct(schema, a) == (a in primes)
