"""Tests for rank-k MSO types and their composition laws (Section 3)."""

from hypothesis import given, settings, strategies as st

from repro.mso import equivalent, evaluate, formulas, mso_type
from repro.structures import Graph, Structure, Signature, graph_to_structure

from ..conftest import small_graphs

SIG = Signature.of(e=2)


def g2s(g):
    return graph_to_structure(g)


class TestBasicInvariance:
    def test_isomorphic_structures_share_types(self):
        a = g2s(Graph(vertices=[0, 1, 2], edges=[(0, 1)]))
        b = g2s(Graph(vertices=["x", "y", "z"], edges=[("y", "z")]))
        for k in (0, 1):
            assert mso_type(a, (0, 1), k) == mso_type(b, ("y", "z"), k)

    def test_point_order_matters(self):
        a = g2s(Graph(vertices=[0, 1, 2], edges=[(0, 1)]))
        assert mso_type(a, (0, 2), 0) != mso_type(a, (0, 1), 0)

    def test_rank_zero_sees_only_points(self):
        a = g2s(Graph(vertices=[0, 1, 2], edges=[(1, 2)]))
        b = g2s(Graph(vertices=[0, 1, 2]))
        assert mso_type(a, (0,), 0) == mso_type(b, (0,), 0)
        # rank 1 still cannot see an edge between two non-points (a single
        # point move reveals at most pairs involving the point) ...
        assert mso_type(a, (0,), 1) == mso_type(b, (0,), 1)
        # ... but two point moves (rank 2) expose it.
        assert mso_type(a, (0,), 2) != mso_type(b, (0,), 2)

    def test_path_lengths_distinguished_at_depth_two(self):
        p2, p3 = g2s(Graph.path(2)), g2s(Graph.path(3))
        assert equivalent(p2, (), p3, (), 1)
        assert not equivalent(p2, (), p3, (), 2)


class TestEquivalenceSemantics:
    @given(small_graphs(max_vertices=4), small_graphs(max_vertices=4))
    @settings(max_examples=15)
    def test_k_equivalence_preserves_depth_k_formulas(self, g1, g2):
        """The defining property of ≡_k, checked on depth-1 sentences."""
        s1, s2 = g2s(g1), g2s(g2)
        if not equivalent(s1, (), s2, (), 1):
            return
        import repro.mso.syntax as syn

        sentences = [
            syn.ExistsInd("x", syn.RelAtom("e", ("x", "x"))),
            syn.ForallInd("x", syn.RelAtom("e", ("x", "x"))),
            syn.ExistsInd("x", syn.Eq("x", "x")),
        ]
        for sentence in sentences:
            assert evaluate(s1, sentence) == evaluate(s2, sentence)

    @given(small_graphs(max_vertices=4))
    @settings(max_examples=10)
    def test_reflexive(self, g):
        s = g2s(g)
        assert equivalent(s, (), s, (), 1)

    def test_signature_mismatch_not_equivalent(self):
        a = Structure(SIG, [0])
        b = Structure(Signature.of(p=1), [0])
        assert not equivalent(a, (), b, (), 0)

    def test_point_count_mismatch_not_equivalent(self):
        a = g2s(Graph.path(2))
        assert not equivalent(a, (0,), a, (0, 1), 1)


class TestCompositionLemmas:
    """Lemma 3.5-style composition on concrete small structures."""

    def test_union_respects_types(self):
        """Glueing equal-typed parts onto the same bag yields equal types
        (the essence of Lemma 3.5(3))."""
        # two pointed paths of equal type
        a = g2s(Graph(vertices=[0, 1, 2], edges=[(0, 1), (1, 2)]))
        b = g2s(Graph(vertices=[0, 1, 9], edges=[(0, 1), (1, 9)]))
        k = 1
        assert mso_type(a, (0, 1), k) == mso_type(b, (0, 1), k)
        # extend both by the same extra structure on the bag
        extra = Graph(vertices=[0, 1, 5], edges=[(0, 5)])
        au = a.disjoint_union(g2s(extra))
        bu = b.disjoint_union(g2s(extra))
        assert mso_type(au, (0, 1), k) == mso_type(bu, (0, 1), k)

    def test_renaming_preserves_types(self):
        a = g2s(Graph(vertices=[0, 1, 2], edges=[(0, 1), (1, 2)]))
        renamed = a.renamed({0: "u", 1: "v", 2: "w"})
        assert mso_type(a, (0, 1), 1) == mso_type(renamed, ("u", "v"), 1)


class TestLastRoundSetMoveOptimization:
    def test_depth_one_set_moves_match_full_enumeration(self):
        """The optimized set-successor computation at depth 1 must agree
        with brute-force enumeration over all subsets of the domain."""
        from itertools import chain, combinations

        from repro.mso.types import TypeContext

        g = Graph(vertices=[0, 1, 2, 3], edges=[(0, 1), (2, 3)])
        s = g2s(g)
        pts = (0, 1)
        domain = sorted(s.domain, key=repr)
        context = TypeContext(s)
        full = frozenset(
            context.type_of(pts, 0, (frozenset(q),))
            for q in chain.from_iterable(
                combinations(domain, r) for r in range(len(domain) + 1)
            )
        )
        computed = mso_type(s, pts, 1, context=context)
        assert computed[3] == full  # the set-successor component

    def test_depth_one_point_moves_match_full_retyping(self):
        """The prefix-extension fast path for point moves must agree
        with retyping the extended point tuple from scratch."""
        from repro.mso.types import TypeContext

        g = Graph(vertices=[0, 1, 2, 3], edges=[(0, 1), (1, 2), (2, 3)])
        s = g2s(g)
        pts = (0, 2)
        context = TypeContext(s)
        computed = mso_type(s, pts, 1, context=context)
        full = frozenset(
            TypeContext(s).type_of(pts + (c,), 0)
            for c in sorted(s.domain, key=repr)
        )
        assert computed[2] == full  # the point-successor component
