"""Tests for naive MSO model checking against ground truths."""

import pytest
from hypothesis import given

from repro.mso import (
    Budget,
    BudgetExceeded,
    Const,
    Eq,
    ExistsInd,
    ExistsSet,
    ForallInd,
    ForallSet,
    In,
    Not,
    RelAtom,
    evaluate,
    formulas,
    query,
)
from repro.structures import Graph, graph_to_structure, running_example

from ..conftest import small_graphs, small_schemas


class TestBasics:
    def test_atom(self):
        s = graph_to_structure(Graph.path(2))
        assert evaluate(s, RelAtom("e", ("x", "y")), {"x": 0, "y": 1})
        assert not evaluate(s, RelAtom("e", ("x", "y")), {"x": 0, "y": 0})

    def test_constants(self):
        s = graph_to_structure(Graph.path(2))
        assert evaluate(s, RelAtom("e", (Const(0), Const(1))))

    def test_equality(self):
        s = graph_to_structure(Graph.path(2))
        assert evaluate(s, Eq("x", "x"), {"x": 0})
        assert not evaluate(s, Eq("x", "y"), {"x": 0, "y": 1})

    def test_unbound_variable_raises(self):
        s = graph_to_structure(Graph.path(2))
        with pytest.raises(ValueError):
            evaluate(s, RelAtom("e", ("x", "y")), {"x": 0})

    def test_unbound_set_variable_raises(self):
        s = graph_to_structure(Graph.path(2))
        with pytest.raises(ValueError):
            evaluate(s, In("x", "X"), {"x": 0})

    def test_membership(self):
        s = graph_to_structure(Graph.path(2))
        assert evaluate(s, In("x", "X"), {"x": 0}, {"X": frozenset({0})})

    def test_fo_quantifiers(self):
        s = graph_to_structure(Graph.path(3))
        has_nb = ExistsInd("y", RelAtom("e", ("x", "y")))
        assert evaluate(s, has_nb, {"x": 1})
        all_nb = ForallInd("x", ExistsInd("y", RelAtom("e", ("x", "y"))))
        assert evaluate(s, all_nb)

    def test_so_quantifiers(self):
        s = graph_to_structure(Graph.path(2))
        some_set = ExistsSet("X", In("x", "X"))
        assert evaluate(s, some_set, {"x": 0})
        every_set = ForallSet("X", In("x", "X"))
        assert not evaluate(s, every_set, {"x": 0})


class TestQuery:
    def test_has_neighbor_query(self):
        s = graph_to_structure(Graph(vertices=[0, 1, 2], edges=[(0, 1)]))
        assert query(s, formulas.has_neighbor("x"), "x") == frozenset({0, 1})

    def test_isolated_query(self):
        s = graph_to_structure(Graph(vertices=[0, 1, 2], edges=[(0, 1)]))
        assert query(s, formulas.isolated("x"), "x") == frozenset({2})


class TestPaperFormulas:
    @given(small_graphs(max_vertices=5))
    def test_three_colorability_matches_bruteforce(self, g):
        from repro.problems import three_coloring_bruteforce

        if g.vertex_count() == 0:
            return
        s = graph_to_structure(g)
        assert evaluate(s, formulas.three_colorability()) == (
            three_coloring_bruteforce(g)
        )

    def test_primality_on_running_example(self):
        """Example 2.6: (A, a) |= phi(x) and (A, e) |/= phi(x)."""
        s = running_example().to_structure()
        phi = formulas.primality("x")
        assert evaluate(s, phi, {"x": "a"})
        assert not evaluate(s, phi, {"x": "e"})
        assert query(s, phi, "x") == frozenset("abcd")

    @given(small_schemas(max_attrs=4, max_fds=3))
    def test_primality_formula_matches_bruteforce(self, schema):
        s = schema.to_structure()
        phi = formulas.primality("x")
        got = {a for a in schema.attributes if evaluate(s, phi, {"x": a})}
        assert got == set(schema.prime_attributes_bruteforce())

    def test_primality_false_on_fd_elements(self):
        s = running_example().to_structure()
        assert not evaluate(s, formulas.primality("x"), {"x": "f1"})


class TestBudget:
    def test_budget_exhausts_on_so_quantification(self):
        s = running_example().to_structure()
        with pytest.raises(BudgetExceeded):
            evaluate(
                s,
                formulas.primality("x"),
                {"x": "a"},
                budget=Budget(limit=500),
            )

    def test_budget_counts_steps(self):
        s = graph_to_structure(Graph.path(2))
        budget = Budget()
        evaluate(s, RelAtom("e", ("x", "y")), {"x": 0, "y": 1}, budget=budget)
        assert budget.steps == 1

    def test_generous_budget_suffices(self):
        s = graph_to_structure(Graph.path(3))
        budget = Budget(limit=10_000)
        assert evaluate(s, formulas.three_colorability(), budget=budget)
