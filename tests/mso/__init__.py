"""Test package for the repro suite."""
