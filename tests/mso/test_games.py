"""Ehrenfeucht-Fraïssé game tests (the independent route to ≡_k)."""

from hypothesis import given, settings

from repro.mso import duplicator_wins, equivalent, is_partial_isomorphism
from repro.structures import Graph, graph_to_structure

from ..conftest import small_graphs


def g2s(g):
    return graph_to_structure(g)


class TestPartialIsomorphism:
    def test_empty_position_is_iso(self):
        a, b = g2s(Graph.path(2)), g2s(Graph.path(3))
        assert is_partial_isomorphism(a, (), (), b, (), ())

    def test_relation_mismatch_detected(self):
        a = g2s(Graph(vertices=[0, 1], edges=[(0, 1)]))
        b = g2s(Graph(vertices=[0, 1]))
        assert not is_partial_isomorphism(a, (0, 1), (), b, (0, 1), ())

    def test_equality_pattern_detected(self):
        a = g2s(Graph(vertices=[0, 1]))
        assert not is_partial_isomorphism(a, (0, 0), (), a, (0, 1), ())

    def test_set_membership_detected(self):
        a = g2s(Graph(vertices=[0, 1]))
        assert not is_partial_isomorphism(
            a, (0,), (frozenset({0}),), a, (0,), (frozenset(),)
        )
        assert is_partial_isomorphism(
            a, (0,), (frozenset({0}),), a, (1,), (frozenset({1}),)
        )


class TestGames:
    def test_zero_rounds_is_iso_check(self):
        a = g2s(Graph(vertices=[0, 1], edges=[(0, 1)]))
        b = g2s(Graph(vertices=[0, 1]))
        assert duplicator_wins(a, (), b, (), 0)  # nothing chosen yet
        assert not duplicator_wins(a, (0, 1), b, (0, 1), 0)

    def test_one_round_separates_edge_from_no_edge(self):
        a = g2s(Graph(vertices=[0, 1], edges=[(0, 1)]))
        b = g2s(Graph(vertices=[0, 1]))
        # spoiler picks a set or point exposing the edge only at depth 2;
        # pointed at both endpoints, one round suffices via rank-0 check
        assert not duplicator_wins(a, (0,), b, (0,), 1)

    def test_p2_vs_p3_separated_at_two_rounds(self):
        p2, p3 = g2s(Graph.path(2)), g2s(Graph.path(3))
        assert duplicator_wins(p2, (), p3, (), 1)
        assert not duplicator_wins(p2, (), p3, (), 2)

    @given(small_graphs(max_vertices=3), small_graphs(max_vertices=3))
    @settings(max_examples=10)
    def test_games_agree_with_canonical_types(self, g1, g2):
        """Two independent implementations of ≡_1 must coincide."""
        s1, s2 = g2s(g1), g2s(g2)
        assert duplicator_wins(s1, (), s2, (), 1) == equivalent(
            s1, (), s2, (), 1
        )

    @given(small_graphs(max_vertices=3))
    @settings(max_examples=8)
    def test_game_reflexivity(self, g):
        s = g2s(g)
        assert duplicator_wins(s, (), s, (), 1)
