"""Tests for the MSO formula library."""

from repro.mso import evaluate, formulas, query
from repro.structures import Graph, RelationalSchema, graph_to_structure, running_example


class TestThreeColorability:
    def test_known_graphs(self):
        for g, expect in [
            (Graph.cycle(4), True),
            (Graph.cycle(5), True),
            (Graph.complete(3), True),
            (Graph.complete(4), False),
            (Graph.grid(2, 3), True),
            (Graph(vertices=[0], edges=[(0, 0)]), False),  # self-loop
        ]:
            assert evaluate(graph_to_structure(g), formulas.three_colorability()) == expect

    def test_empty_graph_colorable(self):
        g = Graph(vertices=[0, 1, 2])
        assert evaluate(graph_to_structure(g), formulas.three_colorability())


class TestPrimality:
    def test_running_example(self):
        s = running_example().to_structure()
        assert query(s, formulas.primality("x"), "x") == frozenset("abcd")

    def test_schema_with_no_fds_every_attribute_prime(self):
        s = RelationalSchema.parse("R = abc;").to_structure()
        assert query(s, formulas.primality("x"), "x") == frozenset("abc")

    def test_single_key_schema(self):
        s = RelationalSchema.parse("R = ab; a -> b").to_structure()
        assert query(s, formulas.primality("x"), "x") == frozenset("a")

    def test_closed_macro(self):
        """Closed(Y) is exactly Y+ = Y on the running example."""
        schema = running_example()
        s = schema.to_structure()
        cases = [frozenset(), frozenset("bc"), frozenset("bcdeg"), frozenset("c")]
        for y in cases:
            assert evaluate(s, formulas.closed("Y"), sets={"Y": y}) == (
                schema.is_closed(y)
            )


class TestSmallQueries:
    def test_has_neighbor(self):
        g = Graph(vertices=[0, 1, 2], edges=[(0, 1)])
        s = graph_to_structure(g)
        assert query(s, formulas.has_neighbor("x"), "x") == frozenset({0, 1})

    def test_isolated_complements_has_neighbor_on_simple_graphs(self):
        g = Graph(vertices=[0, 1, 2, 3], edges=[(0, 1), (1, 2)])
        s = graph_to_structure(g)
        nb = query(s, formulas.has_neighbor("x"), "x")
        iso = query(s, formulas.isolated("x"), "x")
        assert nb | iso == s.domain and not (nb & iso)

    def test_has_self_loop(self):
        g = Graph(vertices=[0, 1], edges=[(0, 0)])
        s = graph_to_structure(g)
        assert query(s, formulas.has_self_loop("x"), "x") == frozenset({0})

    def test_some_edge(self):
        assert evaluate(
            graph_to_structure(Graph.path(2)), formulas.some_edge()
        )
        assert not evaluate(
            graph_to_structure(Graph(vertices=[0, 1])), formulas.some_edge()
        )

    def test_in_some_left_hand_side(self):
        # the attributes appearing on some lhs in Example 2.1: a,b,c,d,e,g
        s = running_example().to_structure()
        got = query(s, formulas.in_some_left_hand_side("x"), "x")
        assert got == frozenset("abcdeg")
