"""Tests for the MSO abstract syntax."""

from repro.mso import (
    And,
    Const,
    Eq,
    ExistsInd,
    ExistsSet,
    FALSE,
    ForallInd,
    ForallSet,
    Implies,
    In,
    Not,
    Or,
    RelAtom,
    TRUE,
    and_all,
    formulas,
    not_in,
    or_all,
    proper_subset,
    subset_eq,
)


class TestQuantifierDepth:
    def test_atoms_are_depth_zero(self):
        assert RelAtom("e", ("x", "y")).quantifier_depth() == 0
        assert Eq("x", "y").quantifier_depth() == 0
        assert In("x", "X").quantifier_depth() == 0

    def test_connectives_take_max(self):
        f = And(ExistsInd("x", TRUE), RelAtom("p", ("y",)))
        assert f.quantifier_depth() == 1

    def test_quantifiers_add_one(self):
        f = ExistsSet("X", ForallInd("x", In("x", "X")))
        assert f.quantifier_depth() == 2

    def test_paper_formulas(self):
        # Section 5.1 three-colorability: ∃R∃G∃B [∀v ... ∧ ∀v1∀v2 ...]
        assert formulas.three_colorability().quantifier_depth() == 5
        assert formulas.primality().quantifier_depth() == 4
        assert formulas.has_neighbor().quantifier_depth() == 1
        assert formulas.has_self_loop().quantifier_depth() == 0

    def test_sugar_depth(self):
        assert subset_eq("X", "Y").quantifier_depth() == 1
        assert proper_subset("X", "Y").quantifier_depth() == 1
        assert TRUE.quantifier_depth() == 0


class TestFreeVariables:
    def test_rel_atom(self):
        f = RelAtom("e", ("x", Const(3)))
        assert f.free_individual_vars() == {"x"}

    def test_quantifier_binds(self):
        f = ExistsInd("x", RelAtom("e", ("x", "y")))
        assert f.free_individual_vars() == {"y"}

    def test_set_quantifier_binds_set_var(self):
        f = ExistsSet("X", And(In("x", "X"), In("y", "Y")))
        assert f.free_set_vars() == {"Y"}
        assert f.free_individual_vars() == {"x", "y"}

    def test_primality_has_one_free_variable(self):
        f = formulas.primality("x")
        assert f.free_individual_vars() == {"x"}
        assert f.free_set_vars() == frozenset()

    def test_three_colorability_is_a_sentence(self):
        f = formulas.three_colorability()
        assert f.free_individual_vars() == frozenset()
        assert f.free_set_vars() == frozenset()


class TestHelpers:
    def test_and_all_empty_is_true(self):
        assert and_all([]) is TRUE

    def test_or_all_empty_is_false(self):
        assert or_all([]) is FALSE

    def test_and_all_chains(self):
        f = and_all([TRUE, TRUE, TRUE])
        assert isinstance(f, And)

    def test_operator_sugar(self):
        f = RelAtom("p", ("x",)) & RelAtom("q", ("x",))
        assert isinstance(f, And)
        g = RelAtom("p", ("x",)) | RelAtom("q", ("x",))
        assert isinstance(g, Or)
        assert isinstance(~TRUE, Not)
        assert isinstance(TRUE.implies(FALSE), Implies)

    def test_not_in(self):
        f = not_in("x", "Y")
        assert isinstance(f, Not) and isinstance(f.body, In)

    def test_str_renders(self):
        f = ExistsSet("X", ForallInd("x", In("x", "X")))
        text = str(f)
        assert "∃²X" in text and "∀x" in text and "∈" in text
