"""Tests for the textual MSO syntax."""

import pytest

from repro.mso import And, Const, Eq, ExistsInd, ExistsSet, ForallInd, In, Not, evaluate
from repro.mso.parser import MSOParseError, parse_formula
from repro.structures import Graph, graph_to_structure, running_example


class TestAtoms:
    def test_relation_atom(self):
        f = parse_formula("e(x, y)")
        assert f.free_individual_vars() == {"x", "y"}

    def test_equality_and_disequality(self):
        assert isinstance(parse_formula("x = y"), Eq)
        f = parse_formula("x != y")
        assert isinstance(f, Not) and isinstance(f.body, Eq)

    def test_membership(self):
        f = parse_formula("x in X")
        assert isinstance(f, In)
        g = parse_formula("x notin X")
        assert isinstance(g, Not)

    def test_membership_needs_set_variable(self):
        with pytest.raises(MSOParseError):
            parse_formula("x in y")

    def test_constants(self):
        f = parse_formula('e("a", x)')
        assert Const("a") in f.args

    def test_subset_sugar_desugars(self):
        f = parse_formula("X <= Y")
        assert f.quantifier_depth() == 1
        g = parse_formula("X < Y")
        assert g.quantifier_depth() == 1


class TestConnectives:
    def test_precedence_and_over_or(self):
        f = parse_formula("p(x) | q(x) & r(x)")
        # parses as p | (q & r)
        assert str(f).startswith("(p(x) ∨")

    def test_implication_right_associative(self):
        f = parse_formula("p(x) -> q(x) -> r(x)")
        assert str(f) == "(p(x) → (q(x) → r(x)))"

    def test_negation(self):
        f = parse_formula("~p(x)")
        assert isinstance(f, Not)

    def test_parentheses_override(self):
        f = parse_formula("(p(x) | q(x)) & r(x)")
        assert isinstance(f, And)


class TestQuantifiers:
    def test_individual(self):
        f = parse_formula("EX x. e(x, y)")
        assert isinstance(f, ExistsInd)
        assert f.free_individual_vars() == {"y"}

    def test_set(self):
        f = parse_formula("EXS X. x in X")
        assert isinstance(f, ExistsSet)

    def test_set_quantifier_needs_uppercase(self):
        with pytest.raises(MSOParseError):
            parse_formula("EXS x. p(x)")

    def test_quantifier_after_connective_scopes_right(self):
        f = parse_formula("p(x) -> EX y. q(y) & r(y)")
        # the quantifier swallows the conjunction
        assert isinstance(f.right, ExistsInd)
        assert isinstance(f.right.body, And)

    def test_nested(self):
        f = parse_formula("ALL x. EX y. e(x, y)")
        assert isinstance(f, ForallInd)
        assert f.quantifier_depth() == 2


class TestSemantics:
    def test_parsed_formula_evaluates(self):
        s = graph_to_structure(Graph.path(3))
        f = parse_formula("ALL x. EX y. e(x, y)")
        assert evaluate(s, f)

    def test_closed_macro_roundtrip(self):
        """The Example 2.6 Closed(Y) macro, parsed from text."""
        closed = parse_formula(
            "ALL f. fd(f) -> EX b. (rh(b, f) & b in Y) | (lh(b, f) & b notin Y)"
        )
        schema = running_example()
        structure = schema.to_structure()
        for y in (frozenset(), frozenset("bcdeg"), frozenset("c")):
            assert evaluate(structure, closed, sets={"Y": y}) == (
                schema.is_closed(y)
            )


class TestErrors:
    def test_garbage(self):
        with pytest.raises(MSOParseError):
            parse_formula("@@@")

    def test_dangling_term(self):
        with pytest.raises(MSOParseError):
            parse_formula("x")

    def test_trailing_tokens(self):
        with pytest.raises(MSOParseError):
            parse_formula("p(x) q(x)")

    def test_missing_dot(self):
        with pytest.raises(MSOParseError):
            parse_formula("EX x p(x)")
