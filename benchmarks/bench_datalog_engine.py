"""Engine internals: the evaluation backends head-to-head.

Not a paper table, but the substrate claim behind the MD column:
Section 6 stresses that the viability of the monadic-datalog route
hinges on the interpreter's constant factors.  This benchmark pits the
backends against each other on three reachability workloads:

* ``chain-N``  -- an N-node path graph (the magic-set showcase);
* ``grid-K``   -- a K x K grid with right/down edges (denser joins,
  many alternative derivations per fact);
* ``tree-N``   -- a random N-node tree, seeded (branching fan-out).

Backends compared:

* ``naive``            -- Jacobi re-derivation (ablation baseline;
  capped, it is O(n^3)-ish here);
* ``semi-naive``       -- the set-at-a-time engine (interned ids,
  columnar batches, relation-level hash joins, bitset unary
  relations);
* ``semi-naive-tuple`` -- the same plans executed tuple-at-a-time
  (the PR-1 engine, kept for this ablation);
* ``magic``            -- demand transformation + set-at-a-time
  evaluation, goal-directed on a single-source query.

Alongside the engine backends, the **solver workloads** benchmark the
Theorem 4.4 pipeline (grounding + linear-time Horn) on the same three
workload families, across its three execution forms: the streamed,
demand-pruned production path (``quasi-guarded``: ground rules
instantiated on demand into an online LTUR), the eager interned
materialization retained as the ablation (``quasi-guarded-eager``, the
PR 3 path), and the raw-value PR 2 pipeline (``quasi-guarded-raw``):

* ``solve-chain-N`` / ``solve-tree-N`` -- the compiled Theorem 4.5
  ``has_neighbor`` MSO program, evaluated over the ``A_td`` encoding
  of a path graph / random tree (width 1);
* ``solve-grid2x-N`` -- the *width-2* grid family: a 2 x N ladder
  grid solved through the real Theorem 4.5 path (``has_neighbor``
  compiled at width 2 relative to the grid class --
  ``grid_graph_filter``).  Runs the streamed production form (the
  fold+unfold shrunk program -- ~770 rules since the v8 shrinking
  passes -- on the single-pass route) against the ``passes=()``
  ablation (the ~20k-rule program PR 9 served, multi-pass
  delta-iteration); the eager/raw ablations ground the full cross
  product -- 1.4M ground rules at N=40 -- and are benchmarked on the
  width-1 workloads instead.  Gated on exact agreement with *direct
  MSO evaluation* and with the hand-written cover DP over the same
  ``A_td`` encoding, and on the shrunk program beating the ablation
  by ``GRID2X_PASSES_SPEEDUP``;
* ``solve-grid-K`` -- a K x K grid is decomposed at its natural width
  (≈ K, far outside the compiler's envelope), and a Figure-style
  quasi-guarded dynamic program over its wide-bag ``A_td`` encoding
  stands in for the compiled MSO solve: same rule shapes
  (bag-guarded leaf/child1/child2 recursion + monadic projections),
  genuinely wide guards.

A **solve_many** workload shards a batch of independent tree
structures through ``CourcelleSolver.solve_many`` with 1 worker vs a
small multiprocessing pool and digests the canonicalized answers --
the results must be identical whatever the worker count (wall-clock is
recorded, not gated: CI cores vary).

Two entry points:

* ``pytest benchmarks/bench_datalog_engine.py --benchmark-only`` --
  pytest-benchmark timings of each backend;
* ``python benchmarks/bench_datalog_engine.py [--quick]`` -- the
  head-to-head table (the CI smoke test).  It writes the
  machine-readable baseline ``BENCH_engine.json`` to the repo root
  (``--out`` overrides) and exits non-zero if a contract regresses:

  1. all full-fixpoint backends derive *identical* ``path`` relations,
     and magic's answers match the single-source slice of them;
  2. magic derives strictly fewer facts than semi-naive;
  3. on the largest chain, set-at-a-time semi-naive is no slower than
     ``semi-naive-tuple`` -- and at chain >= 800 (the default full
     run) it must be >= 3x faster;
  4. on the largest chain, magic is >= 2x faster than full semi-naive;
  5. all quasi-guarded forms run on a workload derive identical unary
     answers; the streamed form prunes rules (``rules_pruned > 0``)
     on the chain, tree and grid2x solves, is >= 2x faster than the
     eager ablation on the tree solve and >= 1.3x on the chain solve
     (the Theorem 4.5 programs are minimized since PR 5, so eager's
     dead weight -- and the streamed form's headroom -- shrank); the
     eager interned form stays >= 2x faster than the raw ablation on
     the grid cover DP; the grid2x answers equal direct MSO
     evaluation and the hand-written cover DP on the same encoding,
     and the shrunk (fold+unfold, single-pass) grid2x solve beats the
     ``passes=()`` ablation by >= ``GRID2X_PASSES_SPEEDUP`` (v8);
  6. ``solve_many`` returns identical (canonically serialized)
     results for 1 worker and N workers;
  7. the checked-in ``BENCH_engine.json`` must match the harness's
     schema version and workload/backend shape (drift fails CI until
     the baseline is regenerated);
  8. the **planner workloads** gate the feedback loop (PR 8): a
     profiled replan derives identical relations, is never slower
     than the static textual plans (1.25x jitter tolerance), clears
     >= 1.5x wall-clock on the skewed join, and MinIndexSelection
     covers every search signature of the nested-signature workload
     with strictly fewer indexes than one-per-pattern.
"""

import argparse
import json
import random
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running as a plain script without install
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench import compare_backends, format_ms, format_table, time_ms
from repro.datalog import (
    CostModel,
    Database,
    EvaluationStats,
    PlanProfile,
    ProgramCache,
    SemiNaiveEvaluator,
    SetDatabase,
    SetSemiNaiveEvaluator,
    atom,
    const,
    least_fixpoint,
    naive_least_fixpoint,
    parse_program,
    prepare_program,
    solve,
    td_key_dependencies,
    var,
)
from repro.datalog.evaluate import _search_signatures

TC = parse_program(
    """
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
    """
)

#: the query-driven workload: reachability *from one source*; full
#: evaluation materializes all path facts, demand-driven evaluation
#: needs only the ones rooted at the source (node 0 in every workload).
SOURCE_QUERY = atom("path", const(0), var("Y"))

SIZES = [30, 60, 120]

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_engine.json"

FULL_BACKENDS = ["naive", "semi-naive", "semi-naive-tuple"]
ALL_BACKENDS = FULL_BACKENDS + ["magic"]


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------


def chain_db(n):
    """An n-node path graph: 0 -> 1 -> ... -> n-1."""
    db = Database()
    for i in range(n - 1):
        db.add("edge", (i, i + 1))
    return db


def grid_db(k):
    """A k x k grid, edges right and down; node (i, j) is i * k + j."""
    db = Database()
    for i in range(k):
        for j in range(k):
            v = i * k + j
            if j + 1 < k:
                db.add("edge", (v, v + 1))
            if i + 1 < k:
                db.add("edge", (v, v + k))
    return db


def random_tree_db(n, seed=0xC0FFEE):
    """A random n-node tree, edges parent -> child, rooted at 0."""
    rng = random.Random(seed)
    db = Database()
    for v in range(1, n):
        db.add("edge", (rng.randint(0, v - 1), v))
    return db


def workloads(quick):
    """(name, database, include-naive) triples, largest chain last in
    the chain group so the speedup contracts read off the end."""
    if quick:
        chains, grid_k, tree_n, naive_cap = [100, 200, 400], 8, 300, 100
    else:
        chains, grid_k, tree_n, naive_cap = [100, 200, 400, 800], 16, 2000, 100
    out = [(f"chain-{n}", chain_db(n), n <= naive_cap) for n in chains]
    out.append((f"grid-{grid_k}", grid_db(grid_k), False))
    out.append((f"tree-{tree_n}", random_tree_db(tree_n), False))
    return out


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - pytest always present in CI
    pytest = None

if pytest is not None:

    @pytest.mark.parametrize("n", SIZES, ids=lambda n: f"chain{n}")
    def test_set_semi_naive_transitive_closure(benchmark, n):
        db = chain_db(n)
        result = benchmark.pedantic(
            solve, args=(TC, db), rounds=3, iterations=1
        )
        assert len(result.relation("path")) == n * (n - 1) // 2

    @pytest.mark.parametrize("n", SIZES, ids=lambda n: f"chain{n}")
    def test_tuple_semi_naive_transitive_closure(benchmark, n):
        db = chain_db(n)
        result = benchmark.pedantic(
            least_fixpoint, args=(TC, db), rounds=3, iterations=1
        )
        assert len(result.relation("path")) == n * (n - 1) // 2

    @pytest.mark.parametrize("n", SIZES[:2], ids=lambda n: f"chain{n}")
    def test_naive_transitive_closure(benchmark, n):
        db = chain_db(n)
        result = benchmark.pedantic(
            naive_least_fixpoint, args=(TC, db), rounds=2, iterations=1
        )
        assert len(result.relation("path")) == n * (n - 1) // 2

    @pytest.mark.parametrize("n", SIZES, ids=lambda n: f"chain{n}")
    def test_magic_single_source(benchmark, n):
        db = chain_db(n)
        result = benchmark.pedantic(
            solve,
            args=(TC, db),
            kwargs={"backend": "magic", "query": SOURCE_QUERY},
            rounds=3,
            iterations=1,
        )
        assert len(result.relation("path")) == n - 1

    def test_firing_counts_gap(benchmark):
        """Semi-naive fires each derivation O(1) times; naive re-fires
        everything every round; magic only fires what the query needs."""
        n = 40
        evaluator = SemiNaiveEvaluator(TC)
        evaluator.evaluate(chain_db(n))
        semi = evaluator.stats.rule_firings
        naive_stats = EvaluationStats()
        naive_least_fixpoint(TC, chain_db(n), stats=naive_stats)
        magic_stats = EvaluationStats()
        solve(
            TC,
            chain_db(n),
            backend="magic",
            query=SOURCE_QUERY,
            stats=magic_stats,
        )
        benchmark.extra_info["semi_naive_firings"] = semi
        benchmark.extra_info["naive_firings"] = naive_stats.rule_firings
        benchmark.extra_info["magic_firings"] = magic_stats.rule_firings
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert naive_stats.rule_firings > 5 * semi
        assert magic_stats.rule_firings * 5 < semi


# ----------------------------------------------------------------------
# Standalone head-to-head comparison (the CI smoke test)
# ----------------------------------------------------------------------


def check_agreement(name, db, include_naive, cache, failures):
    """All full-fixpoint backends must derive the *same* path relation,
    and magic's single-source answers must be its source-0 slice."""
    reference = None
    backends = FULL_BACKENDS if include_naive else FULL_BACKENDS[1:]
    for backend in backends:
        rel = solve(TC, db, backend=backend, cache=cache).relation("path")
        if reference is None:
            reference = rel
        elif rel != reference:
            failures.append(
                f"{name}: backend {backend!r} derived a different path "
                f"relation ({len(rel)} facts vs {len(reference)})"
            )
    goal = solve(
        TC, db, backend="magic", query=SOURCE_QUERY, cache=cache
    ).relation("path")
    want = {t for t in reference if t[0] == 0}
    got = {t for t in goal if t[0] == 0}
    if got != want:
        failures.append(
            f"{name}: magic single-source answers disagree "
            f"({len(got)} vs {len(want)} facts from source 0)"
        )
    return reference


def run_comparison(quick, repeat=3):
    """Compare the backends on the reachability workloads.

    Returns (table rows, per-workload results dict, contract
    violations).
    """
    cache = ProgramCache()
    rows = []
    failures = []
    results = {}
    largest_chain = None
    for name, db, include_naive in workloads(quick):
        check_agreement(name, db, include_naive, cache, failures)
        backends = list(ALL_BACKENDS)
        if not include_naive:
            backends.remove("naive")
        runs = {
            r.backend: r
            for r in compare_backends(
                TC, db, SOURCE_QUERY, backends, repeat=repeat, cache=cache
            )
        }
        results[name] = {
            backend: {
                "ms": round(run.ms, 3),
                "facts_derived": run.facts_derived,
                "rule_firings": run.rule_firings,
            }
            for backend, run in runs.items()
        }
        semi = runs["semi-naive"]
        for backend in ALL_BACKENDS:
            run = runs.get(backend)
            if run is None:
                rows.append([name, backend, "-", "-", "-"])
                continue
            speedup = semi.ms / run.ms if run.ms else float("inf")
            # sub-1x would truncate to a meaningless "0.0x"
            shown = (
                f"{speedup:.1f}x" if speedup >= 1 else f"1/{1 / speedup:.0f}x"
            )
            rows.append(
                [name, backend, run.facts_derived, format_ms(run.ms), shown]
            )
        if not runs["magic"].facts_derived < semi.facts_derived:
            failures.append(
                f"{name}: magic derived {runs['magic'].facts_derived} "
                f"facts, semi-naive {semi.facts_derived} -- not strictly "
                "fewer"
            )
        if name.startswith("chain-"):
            largest_chain = (name, int(name.split("-")[1]), runs)

    # speedup contracts on the largest chain
    name, n, runs = largest_chain
    semi, tup, magic = (
        runs["semi-naive"],
        runs["semi-naive-tuple"],
        runs["magic"],
    )
    if semi.ms > tup.ms:
        failures.append(
            f"{name}: set-at-a-time semi-naive ({semi.ms:.1f}ms) is "
            f"slower than semi-naive-tuple ({tup.ms:.1f}ms)"
        )
    if n >= 800 and semi.ms * 3 > tup.ms:
        failures.append(
            f"{name}: set-at-a-time {semi.ms:.1f}ms vs tuple "
            f"{tup.ms:.1f}ms -- less than the required 3x speedup"
        )
    if magic.ms * 2 > semi.ms:
        failures.append(
            f"{name}: magic {magic.ms:.1f}ms vs semi-naive "
            f"{semi.ms:.1f}ms -- less than the required 2x speedup"
        )
    return rows, results, failures


# ----------------------------------------------------------------------
# Solver workloads: the Theorem 4.4 pipeline -- streamed+pruned vs the
# eager interned ablation vs raw values -- on chain/grid/tree families.
# ----------------------------------------------------------------------

SCHEMA_VERSION = "bench-engine/v8"

#: the v8 gate on the grid2x solve: the shrunk program (fold + unfold
#: passes, single-pass evaluation) must beat the passes=() ablation --
#: the program PR 9 served -- by this factor
GRID2X_PASSES_SPEEDUP = 3.0

SOLVER_BACKENDS = [
    "quasi-guarded",
    "quasi-guarded-eager",
    "quasi-guarded-raw",
]

#: backend name -> QuasiGuardedEvaluator mode (mirrors CourcelleSolver)
SOLVER_MODES = {
    "quasi-guarded": "streamed",
    "quasi-guarded-eager": "eager",
    "quasi-guarded-raw": "raw",
}


def graph_grid(k):
    # int-labelled (unlike Graph.grid's (row, col) tuples) so the
    # dense-int identity-interner fast path stays exercised
    from repro.structures import Graph

    g = Graph(range(k * k))
    for i in range(k):
        for j in range(k):
            v = i * k + j
            if j + 1 < k:
                g.add_edge(v, v + 1)
            if i + 1 < k:
                g.add_edge(v, v + k)
    return g


def solver_workloads(quick):
    """Workload dicts -- encoding and MSO compilation happen here,
    outside the timed region, so the timings isolate the grounding +
    Horn pipeline the backends differ on.

    Keys: ``name``, ``program``, ``dependencies``, ``encoded`` (the
    ``A_td``), ``answer_predicate``, ``expected`` (answer count),
    ``backends`` (the quasi-guarded forms to run), and optionally
    ``reference`` -- the exact answer set from *direct MSO
    evaluation*, cross-checked against the hand-written cover DP on
    the same encoding for the grid2x workload (the Theorem 4.5
    conformance contract of the width-2 envelope).
    """
    from repro.bench import atd_cover_program
    from repro.core import (
        ANSWER_PREDICATE,
        QuasiGuardedEvaluator,
        compile_unary_query,
        grid_graph_filter,
        undirected_graph_filter,
    )
    from repro.mso import formulas
    from repro.mso import query as mso_query
    from repro.problems import random_tree_graph
    from repro.structures import GRAPH_SIGNATURE, Graph, graph_to_structure
    from repro.treewidth import (
        decompose_structure,
        encode_normalized,
        normalize,
        widen,
    )

    def encode(graph, min_width=None):
        s = graph_to_structure(graph)
        td = decompose_structure(s)
        if min_width is not None and td.width < min_width:
            td = widen(td, min_width)
        return s, encode_normalized(s, normalize(td)), td.width

    chain_n, tree_n, grid_k, ladder_n = (
        (120, 100, 8, 20) if quick else (400, 300, 12, 40)
    )
    compiled = compile_unary_query(
        formulas.has_neighbor("x"),
        GRAPH_SIGNATURE,
        width=1,
        free_var="x",
        structure_filter=undirected_graph_filter,
    )
    out = []
    for name, graph, n in (
        (f"solve-chain-{chain_n}", Graph.path(chain_n), chain_n),
        (
            f"solve-tree-{tree_n}",
            random_tree_graph(random.Random(0xC0FFEE), tree_n),
            tree_n,
        ),
    ):
        _, encoded, _ = encode(graph, min_width=1)
        out.append(
            {
                "name": name,
                "program": compiled.program,
                "dependencies": compiled.dependencies(),
                "encoded": encoded,
                "answer_predicate": ANSWER_PREDICATE,
                "expected": n,
                "backends": SOLVER_BACKENDS,
            }
        )

    # the width-2 grid family through the real Theorem 4.5 path
    # (ROADMAP (d)): compile at width 2 relative to the grid class,
    # solve a ladder, and pin the answers to direct MSO evaluation and
    # to the hand-written cover DP over the same A_td encoding
    compiled2 = compile_unary_query(
        formulas.has_neighbor("x"),
        GRAPH_SIGNATURE,
        width=2,
        free_var="x",
        structure_filter=grid_graph_filter,
    )
    # the passes=() ablation: the very same query compiled without the
    # program-shrinking passes (ROADMAP D) -- the program PR 9 served.
    # The v8 gate times it on the same encoding; the shrunk program on
    # the single-pass route must beat it by GRID2X_PASSES_SPEEDUP.
    compiled2_ablated = compile_unary_query(
        formulas.has_neighbor("x"),
        GRAPH_SIGNATURE,
        width=2,
        free_var="x",
        structure_filter=grid_graph_filter,
        passes=(),
    )
    structure, encoded, width = encode(Graph.grid(2, ladder_n), min_width=2)
    reference = mso_query(structure, formulas.has_neighbor("x"), "x")
    dp = QuasiGuardedEvaluator(
        atd_cover_program(width + 2),
        dependencies=td_key_dependencies(width + 2),
    )
    dp_answers = dp.evaluate(encoded).unary_answers("covered")
    out.append(
        {
            "name": f"solve-grid2x-{ladder_n}",
            "program": compiled2.program,
            "dependencies": compiled2.dependencies(),
            "encoded": encoded,
            "answer_predicate": ANSWER_PREDICATE,
            "expected": 2 * ladder_n,
            # streamed only: the eager/raw forms ground the full
            # program x structure cross product (1.4M ground rules at
            # N=40) -- demand pruning is precisely what makes the
            # width-2 compiled program practical
            "backends": ["quasi-guarded"],
            "reference": reference,
            "dp_answers": dp_answers,
            "ablation_program": compiled2_ablated.program,
            "ablation_dependencies": compiled2_ablated.dependencies(),
        }
    )

    _, encoded, width = encode(graph_grid(grid_k))
    out.append(
        {
            "name": f"solve-grid-{grid_k}",
            "program": atd_cover_program(width + 2),
            "dependencies": td_key_dependencies(width + 2),
            "encoded": encoded,
            "answer_predicate": "covered",
            "expected": grid_k * grid_k,
            "backends": SOLVER_BACKENDS,
        }
    )
    return out


def run_solver_comparison(quick, repeat=3):
    """The Theorem 4.4 pipeline: streamed vs eager vs raw.

    Returns (table rows, per-workload results dict, contract
    violations).  Contracts: identical unary answers across all three
    forms; the streamed form prunes rules and is >= 2x faster than
    eager on the chain and tree solves; eager stays >= 2x faster than
    raw on the grid solve.
    """
    from repro.core import QuasiGuardedEvaluator

    rows = []
    results = {}
    failures = []
    for workload in solver_workloads(quick):
        name = workload["name"]
        encoded = workload["encoded"]
        answer_pred = workload["answer_predicate"]
        answers = {}
        runs = {}
        for backend in workload["backends"]:
            mode = SOLVER_MODES[backend]
            evaluator = QuasiGuardedEvaluator(
                workload["program"],
                dependencies=workload["dependencies"],
                mode=mode,
                demand=answer_pred if mode == "streamed" else None,
            )
            warm = evaluator.evaluate(encoded)  # warm-up / cache fill
            answers[backend] = warm.unary_answers(answer_pred)
            ms = time_ms(
                lambda: evaluator.evaluate(encoded).unary_answers(
                    answer_pred
                ),
                repeat=repeat,
            )
            runs[backend] = {
                "ms": round(ms, 3),
                "ground_rules": warm.ground_rules,
                "answers": len(answers[backend]),
            }
            if mode == "streamed":
                runs[backend]["rules_pruned"] = warm.stats.rules_pruned
                runs[backend]["peak_live_rules"] = (
                    warm.stats.peak_live_rules
                )
        if "ablation_program" in workload:
            # the passes=() arm: same query, unshrunk program, the
            # multi-pass delta-iteration route (single_pass=False)
            evaluator = QuasiGuardedEvaluator(
                workload["ablation_program"],
                dependencies=workload["ablation_dependencies"],
                mode="streamed",
                demand=answer_pred,
                single_pass=False,
            )
            warm = evaluator.evaluate(encoded)
            answers["quasi-guarded-nopasses"] = warm.unary_answers(
                answer_pred
            )
            ms = time_ms(
                lambda: evaluator.evaluate(encoded).unary_answers(
                    answer_pred
                ),
                repeat=repeat,
            )
            runs["quasi-guarded-nopasses"] = {
                "ms": round(ms, 3),
                "ground_rules": warm.ground_rules,
                "answers": len(answers["quasi-guarded-nopasses"]),
                "rules_pruned": warm.stats.rules_pruned,
                "peak_live_rules": warm.stats.peak_live_rules,
            }
        results[name] = runs
        streamed_run = runs["quasi-guarded"]
        arms = list(runs)
        for backend in arms:
            run = runs[backend]
            speedup = (
                run["ms"] / streamed_run["ms"]
                if streamed_run["ms"]
                else float("inf")
            )
            rows.append(
                [
                    name,
                    backend,
                    run["answers"],
                    run["ground_rules"],
                    run.get("rules_pruned", "-"),
                    format_ms(run["ms"]),
                    f"{speedup:.1f}x",
                ]
            )
        reference = answers["quasi-guarded"]
        for backend in arms:
            if answers[backend] != reference:
                failures.append(
                    f"{name}: {backend} disagrees with the streamed "
                    f"pipeline ({len(answers[backend])} vs "
                    f"{len(reference)} answers)"
                )
        if len(reference) != workload["expected"]:
            failures.append(
                f"{name}: expected {workload['expected']} answers, got "
                f"{len(reference)}"
            )
        # conformance pins (the grid2x workload): the compiled width-2
        # program must agree exactly with direct MSO evaluation and
        # with the hand-written cover DP over the same encoding
        if "reference" in workload and reference != workload["reference"]:
            failures.append(
                f"{name}: compiled answers disagree with direct MSO "
                f"evaluation ({len(reference)} vs "
                f"{len(workload['reference'])} answers)"
            )
        if (
            "dp_answers" in workload
            and reference != workload["dp_answers"]
        ):
            failures.append(
                f"{name}: compiled answers disagree with the "
                f"hand-written cover DP ({len(reference)} vs "
                f"{len(workload['dp_answers'])} answers)"
            )
        failures.extend(check_solver_contracts(name, runs))
    return rows, results, failures


def check_solver_contracts(name, runs):
    """The perf contracts of one solver workload; separated out so the
    test-suite can exercise the gate logic on synthetic timings.

    The streamed form must dominate on the compiled-MSO chain/tree
    solves, where most of the eager ground program is dead weight.
    Since the Theorem 4.5 compiler minimizes its type table (PR 5) the
    compiled programs -- and eager's dead weight -- are much smaller,
    so the chain gate is 1.3x where it used to be 2x (the tree solve
    still clears 2x).  The grid cover DP is the counter-case the
    eager ablation is retained for: its ground program is fully live,
    so batch materialization has nothing to prune -- per-round driver
    batching (ROADMAP (f)) closed most of the per-event overhead
    (streamed went from 0.49x to ~0.75x of eager there), but there
    the streamed form still only has to beat the raw-value pipeline,
    and the eager-vs-raw interning gate of schema v2 still applies.
    The grid2x workload (width-2 Theorem 4.5 path) runs the streamed
    form only; its gate is pruning engagement -- the answer
    conformance pins live in ``run_solver_comparison``.
    """
    failures = []
    streamed = runs["quasi-guarded"]
    eager = runs.get("quasi-guarded-eager")
    raw = runs.get("quasi-guarded-raw")
    chain_or_tree = name.startswith(("solve-chain-", "solve-tree-"))
    if raw is not None and streamed["ms"] > raw["ms"]:
        failures.append(
            f"{name}: streamed quasi-guarded ({streamed['ms']:.1f}ms) "
            f"is slower than the raw ablation ({raw['ms']:.1f}ms)"
        )
    if chain_or_tree:
        required = 2.0 if name.startswith("solve-tree-") else 1.3
        if streamed["ms"] * required > eager["ms"]:
            failures.append(
                f"{name}: streamed {streamed['ms']:.1f}ms vs eager "
                f"{eager['ms']:.1f}ms -- less than the required "
                f"{required:g}x speedup"
            )
    if (
        chain_or_tree or name.startswith("solve-grid2x-")
    ) and streamed.get("rules_pruned", 0) <= 0:
        failures.append(
            f"{name}: streamed grounding pruned no rules -- demand "
            "pruning is not engaging"
        )
    if name.startswith("solve-grid-") and eager["ms"] * 2 > raw["ms"]:
        failures.append(
            f"{name}: eager interned {eager['ms']:.1f}ms vs raw "
            f"{raw['ms']:.1f}ms -- less than the required 2x speedup "
            "on the grid solve"
        )
    nopasses = runs.get("quasi-guarded-nopasses")
    if nopasses is not None and (
        streamed["ms"] * GRID2X_PASSES_SPEEDUP > nopasses["ms"]
    ):
        failures.append(
            f"{name}: shrunk program {streamed['ms']:.1f}ms vs "
            f"passes=() ablation {nopasses['ms']:.1f}ms -- less than "
            f"the required {GRID2X_PASSES_SPEEDUP:g}x speedup from "
            "the program-shrinking passes + single-pass route"
        )
    return failures


# ----------------------------------------------------------------------
# Feedback-directed planning: profile -> replan -> re-index (PR 8)
# ----------------------------------------------------------------------

SKEW_PROGRAM = parse_program("match(X, Z) :- big(X, Y), tiny(Y, Z).")

NESTED_PROGRAM = parse_program(
    """
    viaA(Z) :- arc(0, Y, Z).
    viaB(Z) :- arc(0, 1, Z).
    """
)


def skew_db(n):
    """A skewed join: ``big`` is n facts, ``tiny`` is 10.  The textual
    body order scans ``big`` and probes ``tiny`` (n probes, 10 hits);
    the profiled replan scans ``tiny`` and probes ``big``."""
    db = Database()
    for i in range(n):
        db.add("big", (i, i))
    for j in range(10):
        db.add("tiny", (j, j))
    return db


def nested_db(n):
    """A ternary relation probed on the nested signatures {0} and
    {0, 1} -- the MinChainCover showcase: one shared lexicographic
    index replaces two per-pattern hash indexes."""
    db = Database()
    for i in range(n):
        db.add("arc", (i % 50, i % 7, i))
    return db


def planner_workloads(quick):
    big_n, arc_n = (20_000, 20_000) if quick else (60_000, 50_000)
    return [
        ("skew-join", SKEW_PROGRAM, skew_db(big_n)),
        ("nested-sigs", NESTED_PROGRAM, nested_db(arc_n)),
    ]


def _planner_arm(prepared, db, apply_selection, profile=None):
    evaluator = SetSemiNaiveEvaluator.from_prepared(
        prepared, profile=profile, apply_index_selection=apply_selection
    )
    evaluator.run(db)
    return evaluator


def run_planner_comparison(quick, repeat=3):
    """The profile -> replan -> re-index loop on the set engine.

    Per workload: a profiled static run (textual plans, no shared
    indexes) feeds the cost model; the replanned prepared program (with
    its MinIndexSelection installed) re-runs the same workload.  Each
    arm interns and warms its database once, outside the timed region;
    the timings are warm re-evaluations of the full fixpoint, so they
    compare the *plans and probes*, not EDB interning (identical in
    both arms by construction).  Returns (table rows, per-workload
    results dict, contract violations).  Contracts: identical derived
    relations; replanned never slower than static (1.25x tolerance for
    timer jitter); >= 1.5x wall-clock on the skewed join;
    MinIndexSelection covers every search signature of the nested
    workload with strictly fewer indexes than one-per-pattern.
    """
    rows = []
    results = {}
    failures = []
    for name, program, db in planner_workloads(quick):
        static_prepared = prepare_program(program)
        profile = PlanProfile()
        static_db = SetDatabase.from_edb(db)
        static_eval = _planner_arm(
            static_prepared, static_db, False, profile=profile
        )
        replanned = prepare_program(program, cost=CostModel(profile))
        replan_db = SetDatabase.from_edb(db)
        replan_eval = _planner_arm(replanned, replan_db, True)
        for predicate in program.intensional_predicates():
            if replan_db.decode_relation(predicate) != static_db.decode_relation(
                predicate
            ):
                failures.append(
                    f"{name}: replanned plans derive a different "
                    f"{predicate!r} relation"
                )
        static_ms = time_ms(
            lambda: _planner_arm(static_prepared, static_db, False),
            repeat=repeat,
        )
        replanned_ms = time_ms(
            lambda: _planner_arm(replanned, replan_db, True),
            repeat=repeat,
        )
        selection = replanned.index_selection
        signatures = _search_signatures(
            replanned.program, replanned.plans, replanned.idb
        )
        covered = all(
            selection.covers(predicate, sig)
            for predicate, sigs in signatures.items()
            for sig in sigs
        )
        results[name] = {
            "static_ms": round(static_ms, 3),
            "replanned_ms": round(replanned_ms, 3),
            "speedup": round(static_ms / replanned_ms, 2)
            if replanned_ms
            else float("inf"),
            "bindings_static": static_eval.stats.bindings_explored,
            "bindings_replanned": replan_eval.stats.bindings_explored,
            "indexes_before": selection.n_signatures,
            "indexes_after": selection.n_indexes,
            "lex_indexes": len(selection.lex_specs),
            "covered": covered,
        }
        for arm, ms, stats in (
            ("static", static_ms, static_eval.stats),
            ("replanned", replanned_ms, replan_eval.stats),
        ):
            rows.append(
                [
                    name,
                    arm,
                    stats.facts_derived,
                    stats.bindings_explored,
                    format_ms(ms),
                    f"{static_ms / ms:.1f}x" if ms else "inf",
                ]
            )
        failures.extend(check_planner_contracts(name, results[name]))
    return rows, results, failures


def check_planner_contracts(name, record):
    """The perf and coverage contracts of one planner workload;
    separated out so the test-suite can exercise the gate logic on
    synthetic records.

    The replanned arm must never lose to static (1.25x tolerance: the
    nested workload's arms run the same plans, so the comparison is
    shared-lex vs per-pattern-hash index builds and sits near 1x).
    The skewed join is where feedback pays: the profiled replan scans
    the 10-row guard first, so >= 1.5x wall-clock and strictly fewer
    explored bindings are both required.  MinIndexSelection must cover
    every search signature, and on the nested workload with strictly
    fewer indexes than the one-hash-per-pattern baseline.
    """
    failures = []
    if record["replanned_ms"] > record["static_ms"] * 1.25:
        failures.append(
            f"{name}: replanned ({record['replanned_ms']:.1f}ms) is "
            f"slower than static ({record['static_ms']:.1f}ms)"
        )
    if not record["covered"]:
        failures.append(
            f"{name}: MinIndexSelection left a search signature "
            "uncovered"
        )
    if name == "skew-join":
        if record["replanned_ms"] * 1.5 > record["static_ms"]:
            failures.append(
                f"{name}: replanned {record['replanned_ms']:.1f}ms vs "
                f"static {record['static_ms']:.1f}ms -- less than the "
                "required 1.5x speedup"
            )
        if not record["bindings_replanned"] < record["bindings_static"]:
            failures.append(
                f"{name}: replanned explored "
                f"{record['bindings_replanned']} bindings, static "
                f"{record['bindings_static']} -- not strictly fewer"
            )
    if name == "nested-sigs":
        if not record["indexes_after"] < record["indexes_before"]:
            failures.append(
                f"{name}: MinIndexSelection kept "
                f"{record['indexes_after']} indexes for "
                f"{record['indexes_before']} signatures -- no sharing"
            )
    return failures


# ----------------------------------------------------------------------
# solve_many: sharded batch solving (ROADMAP item (c))
# ----------------------------------------------------------------------


def _canonical_digest(results) -> str:
    """A worker-count-independent digest of a solve_many result list."""
    import hashlib

    canonical = repr(
        [tuple(sorted(answers, key=repr)) for answers in results]
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def run_solve_many_comparison(quick):
    """``CourcelleSolver.solve_many`` with 1 worker vs a small pool.

    Returns (results dict, contract violations).  Gated on result
    identity (canonical digests must match); wall-clock for both
    worker counts is recorded but not gated -- CI machines differ in
    core count, and on a single-core runner the pool can only add
    overhead.
    """
    import os

    from repro.core import CourcelleSolver, undirected_graph_filter
    from repro.mso import formulas
    from repro.problems import random_tree_graph
    from repro.structures import GRAPH_SIGNATURE, graph_to_structure

    batch_size, tree_n = (8, 48) if quick else (16, 120)
    rng = random.Random(0xBEEF)
    structures = [
        graph_to_structure(random_tree_graph(rng, tree_n))
        for _ in range(batch_size)
    ]
    solver = CourcelleSolver(
        formulas.has_neighbor("x"),
        GRAPH_SIGNATURE,
        width=1,
        free_var="x",
        structure_filter=undirected_graph_filter,
    )
    workers = max(2, min(4, os.cpu_count() or 1))
    # capture the timed run's results: solving (and spawning the pool)
    # twice per worker setting would double a multi-second CI step
    serial_runs, sharded_runs = [], []
    serial_ms = time_ms(
        lambda: serial_runs.append(solver.solve_many(structures, workers=1)),
        repeat=1,
    )
    sharded_ms = time_ms(
        lambda: sharded_runs.append(
            solver.solve_many(structures, workers=workers)
        ),
        repeat=1,
    )
    serial, sharded = serial_runs[-1], sharded_runs[-1]
    digest_serial = _canonical_digest(serial)
    digest_sharded = _canonical_digest(sharded)
    identical = serial == sharded and digest_serial == digest_sharded
    failures = []
    if not identical:
        failures.append(
            f"solve_many: 1-worker and {workers}-worker results differ "
            f"(digests {digest_serial[:12]} vs {digest_sharded[:12]})"
        )
    results = {
        "batch_size": batch_size,
        "tree_n": tree_n,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "ms_workers_1": round(serial_ms, 3),
        f"ms_workers_{workers}": round(sharded_ms, 3),
        "identical": identical,
        "digest": digest_serial[:16],
    }
    return results, failures


# ----------------------------------------------------------------------
# Baseline drift: the checked-in JSON must match the harness
# ----------------------------------------------------------------------


def check_baseline_drift(previous, payload):
    """Compare the checked-in baseline against a fresh payload.

    Timings are expected to move; the *shape* is not: a schema-version
    bump or a workload/backend set change without a regenerated
    ``BENCH_engine.json`` fails CI here rather than silently
    gatekeeping against a stale baseline.
    """
    failures = []
    if previous is None:
        return failures  # first run: nothing checked in yet
    if previous.get("schema") != payload["schema"]:
        failures.append(
            f"baseline drift: checked-in schema "
            f"{previous.get('schema')!r} != harness schema "
            f"{payload['schema']!r} -- regenerate BENCH_engine.json"
        )
        return failures  # shape comparisons are meaningless across schemas
    if previous.get("quick") == payload["quick"]:
        for section in ("workloads", "solver_workloads", "planner"):
            old_keys = set(previous.get(section, ()))
            new_keys = set(payload.get(section, ()))
            if old_keys != new_keys:
                failures.append(
                    f"baseline drift: {section} changed "
                    f"{sorted(old_keys)} -> {sorted(new_keys)} -- "
                    "regenerate BENCH_engine.json"
                )
    for name, backends in payload.get("solver_workloads", {}).items():
        old = previous.get("solver_workloads", {}).get(name)
        if old is not None and set(old) != set(backends):
            failures.append(
                f"baseline drift: solver backends for {name} changed "
                f"{sorted(old)} -> {sorted(backends)} -- regenerate "
                "BENCH_engine.json"
            )
    return failures


def build_payload(
    results,
    solver_results,
    solve_many_results,
    quick,
    planner_results=None,
    service_throughput=None,
    service_resilience=None,
    admission=None,
):
    """The machine-readable perf trajectory consumed by later PRs.

    ``solver_speedups`` records the eager-vs-streamed grounding ratio;
    the service sections -- ``service_throughput`` (v4),
    ``service_resilience`` (v5, the fault-injection goodput record)
    and ``admission`` (v7, the untrusted-input overhead + containment
    record) -- are *owned* by ``bench_solver_service.py``; this
    harness carries the checked-in records through unchanged so the
    benchmarks can regenerate the baseline in either order."""
    payload = {
        "schema": SCHEMA_VERSION,
        "benchmark": "benchmarks/bench_datalog_engine.py",
        "quick": quick,
        "query": str(SOURCE_QUERY),
        "program": "transitive closure (right-linear)",
        "workloads": results,
        "speedups": {
            name: round(
                backends["semi-naive-tuple"]["ms"]
                / backends["semi-naive"]["ms"],
                2,
            )
            for name, backends in results.items()
            if backends.get("semi-naive", {}).get("ms")
        },
        "solver_program": (
            "Theorem 4.5 has_neighbor, minimized + shrinking passes "
            "(chain/tree at width 1; grid2x ladder at width 2 via "
            "grid_graph_filter, streamed shrunk program vs passes=() "
            "ablation, conformance-pinned to direct MSO + cover DP); "
            "A_td cover DP at natural width (grid)"
        ),
        "solver_workloads": solver_results,
        "solver_speedups": {
            name: round(
                backends["quasi-guarded-eager"]["ms"]
                / backends["quasi-guarded"]["ms"],
                2,
            )
            for name, backends in solver_results.items()
            if backends.get("quasi-guarded", {}).get("ms")
            and "quasi-guarded-eager" in backends
        },
        "solve_many": solve_many_results,
    }
    if planner_results is not None:
        payload["planner"] = planner_results
        payload["planner_speedups"] = {
            name: record["speedup"]
            for name, record in planner_results.items()
        }
    if service_throughput is not None:
        payload["service_throughput"] = service_throughput
    if service_resilience is not None:
        payload["service_resilience"] = service_resilience
    if admission is not None:
        payload["admission"] = admission
    return payload


def write_baseline(path, payload):
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sizes and fewer repeats (the CI smoke test)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=BENCH_JSON,
        help=f"where to write the JSON baseline (default {BENCH_JSON})",
    )
    args = parser.parse_args(argv)
    repeat = 2 if args.quick else 3

    print(f"reachability workloads, query = {SOURCE_QUERY}")
    rows, results, failures = run_comparison(args.quick, repeat=repeat)
    print(
        format_table(
            ["workload", "backend", "facts", "ms", "vs semi-naive"], rows
        )
    )
    print(
        "\nsolver workloads (Theorem 4.4 pipeline: "
        "streamed+pruned vs eager vs raw)"
    )
    solver_rows, solver_results, solver_failures = run_solver_comparison(
        args.quick, repeat=repeat
    )
    failures.extend(solver_failures)
    print(
        format_table(
            [
                "workload",
                "backend",
                "answers",
                "ground rules",
                "pruned",
                "ms",
                "vs streamed",
            ],
            solver_rows,
        )
    )
    print(
        "\nplanner workloads (feedback-directed replan + "
        "MinIndexSelection vs static plans)"
    )
    planner_rows, planner_results, planner_failures = (
        run_planner_comparison(args.quick, repeat=repeat)
    )
    failures.extend(planner_failures)
    print(
        format_table(
            [
                "workload",
                "arm",
                "facts",
                "bindings",
                "ms",
                "vs static",
            ],
            planner_rows,
        )
    )
    print("\nsolve_many (sharded batch, 1 worker vs pool)")
    solve_many_results, solve_many_failures = run_solve_many_comparison(
        args.quick
    )
    failures.extend(solve_many_failures)
    for key, value in sorted(solve_many_results.items()):
        print(f"  {key}: {value}")
    previous = None
    if args.out.exists():
        try:
            previous = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            failures.append(f"baseline drift: {args.out} is not valid JSON")
    payload = build_payload(
        results,
        solver_results,
        solve_many_results,
        args.quick,
        planner_results=planner_results,
        service_throughput=(
            previous.get("service_throughput")
            if previous is not None
            else None
        ),
        service_resilience=(
            previous.get("service_resilience")
            if previous is not None
            else None
        ),
        admission=(
            previous.get("admission") if previous is not None else None
        ),
    )
    failures.extend(check_baseline_drift(previous, payload))
    out = write_baseline(args.out, payload)
    print(f"\nwrote {out}")
    if failures:
        print("\nCONTRACT VIOLATIONS:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "\nok: identical derived facts across full backends; magic derives "
        "strictly fewer facts and is >= 2x faster on the largest chain; "
        "set-at-a-time semi-naive beats tuple-at-a-time; the streamed "
        "quasi-guarded pipeline matches the eager and raw ablations' "
        "answers, prunes rules, and beats eager >= 2x on the tree solve "
        "and >= 1.3x on the chain solve; the width-2 grid2x solve matches "
        "direct MSO evaluation and the hand-written cover DP and beats "
        "the passes=() ablation; eager stays "
        ">= 2x over raw on the grid solve; the profiled replan matches "
        "static plans, clears 1.5x on the skewed join, and "
        "MinIndexSelection shares indexes across nested signatures; "
        "solve_many is worker-count-invariant; the baseline schema "
        "matches the harness"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
