"""Engine internals: semi-naive vs naive fixpoint evaluation.

Not a paper table, but the substrate claim behind the MD column: the
interpreter's lazy delta-driven evaluation (Section 6, optimization (2))
needs far fewer rule firings than naive re-derivation.

Run:  pytest benchmarks/bench_datalog_engine.py --benchmark-only
"""

import pytest

from repro.datalog import (
    Database,
    EvaluationStats,
    SemiNaiveEvaluator,
    least_fixpoint,
    naive_least_fixpoint,
    parse_program,
)

TC = parse_program(
    """
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
    """
)

SIZES = [30, 60, 120]


def chain_db(n):
    db = Database()
    for i in range(n - 1):
        db.add("edge", (i, i + 1))
    return db


@pytest.mark.parametrize("n", SIZES, ids=lambda n: f"chain{n}")
def test_semi_naive_transitive_closure(benchmark, n):
    db = chain_db(n)
    result = benchmark.pedantic(
        least_fixpoint, args=(TC, db), rounds=3, iterations=1
    )
    assert len(result.relation("path")) == n * (n - 1) // 2


@pytest.mark.parametrize("n", SIZES[:2], ids=lambda n: f"chain{n}")
def test_naive_transitive_closure(benchmark, n):
    db = chain_db(n)
    result = benchmark.pedantic(
        naive_least_fixpoint, args=(TC, db), rounds=2, iterations=1
    )
    assert len(result.relation("path")) == n * (n - 1) // 2


def test_firing_counts_gap(benchmark):
    """Semi-naive fires each derivation O(1) times; naive re-fires
    everything every round."""
    n = 40
    evaluator = SemiNaiveEvaluator(TC)
    evaluator.evaluate(chain_db(n))
    semi = evaluator.stats.rule_firings
    naive_stats = EvaluationStats()
    naive_least_fixpoint(TC, chain_db(n), stats=naive_stats)
    benchmark.extra_info["semi_naive_firings"] = semi
    benchmark.extra_info["naive_firings"] = naive_stats.rule_firings
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert naive_stats.rule_firings > 5 * semi
