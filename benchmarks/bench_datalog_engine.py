"""Engine internals: the three evaluation backends head-to-head.

Not a paper table, but the substrate claim behind the MD column: the
interpreter's lazy delta-driven evaluation (Section 6, optimization (2))
needs far fewer rule firings than naive re-derivation, and the
magic-set backend goes one step further on query-driven workloads by
deriving only the facts the query demands.

Two entry points:

* ``pytest benchmarks/bench_datalog_engine.py --benchmark-only`` --
  pytest-benchmark timings of each backend;
* ``python benchmarks/bench_datalog_engine.py [--quick]`` -- the
  head-to-head comparison table (used as the CI smoke test).  The
  script asserts the engine's two contract claims and exits non-zero
  if either regresses:

  1. the magic-set backend derives strictly fewer facts than plain
     semi-naive on the query-driven workload;
  2. on the largest configuration its wall clock is at least 2x faster.
"""

import argparse
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running as a plain script without install
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench import compare_backends, format_ms, format_table
from repro.datalog import (
    Database,
    EvaluationStats,
    ProgramCache,
    SemiNaiveEvaluator,
    atom,
    const,
    least_fixpoint,
    naive_least_fixpoint,
    parse_program,
    solve,
    var,
)

TC = parse_program(
    """
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
    """
)

#: the query-driven workload: reachability *from one source*; full
#: evaluation materializes all O(n^2) path facts, demand-driven
#: evaluation needs only the O(n) facts rooted at the source.
SOURCE_QUERY = atom("path", const(0), var("Y"))

SIZES = [30, 60, 120]


def chain_db(n):
    db = Database()
    for i in range(n - 1):
        db.add("edge", (i, i + 1))
    return db


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - pytest always present in CI
    pytest = None

if pytest is not None:

    @pytest.mark.parametrize("n", SIZES, ids=lambda n: f"chain{n}")
    def test_semi_naive_transitive_closure(benchmark, n):
        db = chain_db(n)
        result = benchmark.pedantic(
            least_fixpoint, args=(TC, db), rounds=3, iterations=1
        )
        assert len(result.relation("path")) == n * (n - 1) // 2

    @pytest.mark.parametrize("n", SIZES[:2], ids=lambda n: f"chain{n}")
    def test_naive_transitive_closure(benchmark, n):
        db = chain_db(n)
        result = benchmark.pedantic(
            naive_least_fixpoint, args=(TC, db), rounds=2, iterations=1
        )
        assert len(result.relation("path")) == n * (n - 1) // 2

    @pytest.mark.parametrize("n", SIZES, ids=lambda n: f"chain{n}")
    def test_magic_single_source(benchmark, n):
        db = chain_db(n)
        result = benchmark.pedantic(
            solve,
            args=(TC, db),
            kwargs={"backend": "magic", "query": SOURCE_QUERY},
            rounds=3,
            iterations=1,
        )
        assert len(result.relation("path")) == n - 1

    def test_firing_counts_gap(benchmark):
        """Semi-naive fires each derivation O(1) times; naive re-fires
        everything every round; magic only fires what the query needs."""
        n = 40
        evaluator = SemiNaiveEvaluator(TC)
        evaluator.evaluate(chain_db(n))
        semi = evaluator.stats.rule_firings
        naive_stats = EvaluationStats()
        naive_least_fixpoint(TC, chain_db(n), stats=naive_stats)
        magic_stats = EvaluationStats()
        solve(
            TC,
            chain_db(n),
            backend="magic",
            query=SOURCE_QUERY,
            stats=magic_stats,
        )
        benchmark.extra_info["semi_naive_firings"] = semi
        benchmark.extra_info["naive_firings"] = naive_stats.rule_firings
        benchmark.extra_info["magic_firings"] = magic_stats.rule_firings
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert naive_stats.rule_firings > 5 * semi
        assert magic_stats.rule_firings * 5 < semi


# ----------------------------------------------------------------------
# Standalone head-to-head comparison (the CI smoke test)
# ----------------------------------------------------------------------


def run_comparison(sizes, naive_cap, repeat=3):
    """Compare the backends on single-source reachability.

    Returns (table rows, contract violations).  Naive evaluation is
    O(n^3)-ish on this workload and is skipped above ``naive_cap``.
    """
    cache = ProgramCache()
    rows = []
    failures = []
    largest = max(sizes)
    for n in sizes:
        db = chain_db(n)
        backends = ["semi-naive", "magic"]
        if n <= naive_cap:
            backends.insert(0, "naive")
        runs = {
            r.backend: r
            for r in compare_backends(
                TC, db, SOURCE_QUERY, backends, repeat=repeat, cache=cache
            )
        }
        semi, magic = runs["semi-naive"], runs["magic"]
        for name in ["naive", "semi-naive", "magic"]:
            run = runs.get(name)
            if run is None:
                rows.append([f"chain{n}", name, "-", "-", "-"])
                continue
            speedup = semi.ms / run.ms if run.ms else float("inf")
            # sub-1x (naive) would truncate to a meaningless "0.0x"
            shown = (
                f"{speedup:.1f}x" if speedup >= 1 else f"1/{1 / speedup:.0f}x"
            )
            rows.append(
                [
                    f"chain{n}",
                    name,
                    run.facts_derived,
                    format_ms(run.ms),
                    shown,
                ]
            )
        if not magic.facts_derived < semi.facts_derived:
            failures.append(
                f"chain{n}: magic derived {magic.facts_derived} facts, "
                f"semi-naive {semi.facts_derived} -- not strictly fewer"
            )
        if n == largest and magic.ms * 2 > semi.ms:
            failures.append(
                f"chain{n}: magic {magic.ms:.1f}ms vs semi-naive "
                f"{semi.ms:.1f}ms -- less than the required 2x speedup"
            )
    return rows, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sizes and fewer repeats (the CI smoke test)",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help="chain lengths to benchmark (default 100 200 400)",
    )
    args = parser.parse_args(argv)
    if args.sizes is not None:
        sizes = args.sizes
    elif args.quick:
        sizes = [50, 100, 200]
    else:
        sizes = [100, 200, 400]
    repeat = 2 if args.quick else 3
    naive_cap = 50 if args.quick else 100

    print(f"single-source reachability, query = {SOURCE_QUERY}")
    rows, failures = run_comparison(sizes, naive_cap, repeat=repeat)
    print(
        format_table(
            ["workload", "backend", "facts", "ms", "vs semi-naive"], rows
        )
    )
    if failures:
        print("\nCONTRACT VIOLATIONS:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nok: magic derives strictly fewer facts and is >= 2x faster "
          "on the largest configuration")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
