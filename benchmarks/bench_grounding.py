"""Section 6, optimization (2): lazy grounding vs full materialization.

"A further improvement is achieved by the natural idea of generating
only those ground instances of rules which actually produce new facts."
We materialize the *complete* ground 3-Colorability program -- every
(R, G, B) partition of every bag, reachable or not -- solve it with
LTUR, and compare against the lazy semi-naive evaluation of the same
succinct program, which "turns out that the vast majority of possible
instantiations is never computed".

Run:  pytest benchmarks/bench_grounding.py --benchmark-only
"""

import random
from itertools import product

import pytest

from repro.datalog import GroundRule, horn_least_model
from repro.problems import ThreeColoringDatalog, random_partial_ktree
from repro.problems.three_coloring import (
    _has_internal_edge,
    prepare_decomposition,
)
from repro.treewidth.nice import NiceNodeKind

SIZES = [15, 30, 60]


def _all_states(bag):
    """Every (R, G, B) partition of the bag -- the full monadic atom
    space at one node, before any reachability pruning."""
    items = sorted(bag, key=repr)
    for assignment in product(range(3), repeat=len(items)):
        parts = [set(), set(), set()]
        for v, color in zip(items, assignment):
            parts[color].add(v)
        yield tuple(frozenset(p) for p in parts)


def materialize_ground_program(graph, nice):
    """All ground instances of the Figure 5 rules, Theorem 4.4 style."""
    rules: list[GroundRule] = []
    tree = nice.tree
    for node in tree.postorder():
        kind = nice.node_kind(node)
        bag = nice.bag(node)
        if kind is NiceNodeKind.LEAF:
            for state in _all_states(bag):
                if any(_has_internal_edge(graph, part) for part in state):
                    continue
                rules.append(GroundRule(("solve", node, state)))
        elif kind is NiceNodeKind.INTRODUCTION:
            (child,) = tree.children(node)
            v = nice.introduced_element(node)
            for state in _all_states(nice.bag(child)):
                for i in range(3):
                    grown = tuple(
                        part | {v} if j == i else part
                        for j, part in enumerate(state)
                    )
                    if _has_internal_edge(graph, grown[i]):
                        continue
                    rules.append(
                        GroundRule(
                            ("solve", node, grown), (("solve", child, state),)
                        )
                    )
        elif kind is NiceNodeKind.REMOVAL:
            (child,) = tree.children(node)
            v = nice.removed_element(node)
            for state in _all_states(nice.bag(child)):
                shrunk = tuple(part - {v} for part in state)
                rules.append(
                    GroundRule(
                        ("solve", node, shrunk), (("solve", child, state),)
                    )
                )
        elif kind is NiceNodeKind.COPY:
            (child,) = tree.children(node)
            for state in _all_states(bag):
                rules.append(
                    GroundRule(("solve", node, state), (("solve", child, state),))
                )
        else:  # branch
            c1, c2 = tree.children(node)
            for state in _all_states(bag):
                rules.append(
                    GroundRule(
                        ("solve", node, state),
                        (("solve", c1, state), ("solve", c2, state)),
                    )
                )
    root = tree.root
    for state in _all_states(nice.bag(root)):
        rules.append(GroundRule(("success",), (("solve", root, state),)))
    return rules


def materialized_decide(graph, td):
    nice = prepare_decomposition(graph, td)
    rules = materialize_ground_program(graph, nice)
    return ("success",) in horn_least_model(rules), len(rules)


@pytest.fixture(scope="module")
def instances():
    rng = random.Random(4242)
    return {n: random_partial_ktree(rng, n, 2, 0.6) for n in SIZES}


@pytest.mark.parametrize("n", SIZES, ids=lambda n: f"n{n}")
def test_full_materialization(benchmark, instances, n):
    graph, td = instances[n]
    colorable, rule_count = benchmark.pedantic(
        materialized_decide, args=(graph, td), rounds=3, iterations=1
    )
    benchmark.extra_info["ground_rules"] = rule_count


@pytest.mark.parametrize("n", SIZES, ids=lambda n: f"n{n}")
def test_lazy_semi_naive(benchmark, instances, n):
    graph, td = instances[n]
    solver = ThreeColoringDatalog()
    run = benchmark.pedantic(
        solver.run, args=(graph, td), rounds=3, iterations=1
    )
    benchmark.extra_info["solve_facts"] = run.solve_fact_count


def test_lazy_touches_fewer_instances(benchmark, instances):
    """The point of optimization (2): reachable facts << full atom space."""
    graph, td = instances[SIZES[-1]]
    nice = prepare_decomposition(graph, td)
    full = sum(3 ** len(nice.bag(n)) for n in nice.tree.nodes())
    run = ThreeColoringDatalog().run(graph, td)
    benchmark.extra_info["full_atom_space"] = full
    benchmark.extra_info["reachable_facts"] = run.solve_fact_count
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert run.solve_fact_count < full
