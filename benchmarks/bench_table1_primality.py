"""Table 1 (Section 6): PRIMALITY processing time, MD vs the MONA stand-in.

Regenerates every row of the paper's only experimental table.  The MD
column is benchmarked for all eleven sizes (the paper: 0.1 ... 2.2 ms,
"an essentially linear increase"); the MONA stand-in is benchmarked on
the two smallest rows and shown to exhaust its budget afterwards, the
analogue of the paper's out-of-memory dashes from row 4 on.

Run:  pytest benchmarks/bench_table1_primality.py --benchmark-only
"""

import pytest

from repro.bench import DECISION_ATTRIBUTE
from repro.mso.eval import Budget, BudgetExceeded, evaluate
from repro.mso.formulas import primality as primality_formula
from repro.problems import PrimalityDatalog, table1_instance, TABLE1_SIZES
from repro.problems.primality import primality_direct

ROW_IDS = [f"Att{a}_FD{f}" for a, f in TABLE1_SIZES]


@pytest.fixture(scope="module")
def instances():
    return {f: table1_instance(f) for _, f in TABLE1_SIZES}


@pytest.mark.parametrize("num_fd", [f for _, f in TABLE1_SIZES], ids=ROW_IDS)
def test_md_column(benchmark, instances, num_fd):
    """The 'MD' column: Figure 6 as a direct dynamic program."""
    inst = instances[num_fd]
    result = benchmark(
        primality_direct, inst.schema, DECISION_ATTRIBUTE, inst.decomposition
    )
    benchmark.extra_info["num_attributes"] = inst.num_attributes
    benchmark.extra_info["treewidth"] = inst.treewidth
    assert isinstance(result, bool)


@pytest.mark.parametrize("num_fd", [1, 2, 4, 11], ids=lambda f: f"FD{f}")
def test_md_datalog_column(benchmark, instances, num_fd):
    """The same program run by the semi-naive datalog interpreter."""
    inst = instances[num_fd]
    solver = PrimalityDatalog(inst.schema)
    result = benchmark.pedantic(
        solver.decide,
        args=(DECISION_ATTRIBUTE, inst.decomposition),
        rounds=3,
        iterations=1,
    )
    assert isinstance(result, bool)


@pytest.mark.parametrize("num_fd", [1, 2], ids=["Att3", "Att6"])
def test_mona_standin_small_rows(benchmark, instances, num_fd):
    """Naive MSO evaluation is feasible only on the two smallest rows
    (the paper's MONA manages three before going out of memory)."""
    inst = instances[num_fd]
    structure = inst.schema.to_structure()
    formula = primality_formula("x")
    benchmark.pedantic(
        evaluate,
        args=(structure, formula, {"x": DECISION_ATTRIBUTE}),
        rounds=2,
        iterations=1,
    )


@pytest.mark.parametrize("num_fd", [3, 4], ids=["Att9", "Att12"])
def test_mona_standin_exhausts_budget(benchmark, instances, num_fd):
    """From row 3 on the stand-in dies within its step budget -- the
    shape of the paper's '-' entries."""
    inst = instances[num_fd]
    structure = inst.schema.to_structure()
    formula = primality_formula("x")

    def budgeted() -> bool:
        try:
            evaluate(
                structure,
                formula,
                {"x": DECISION_ATTRIBUTE},
                budget=Budget(limit=500_000),
            )
            return False
        except BudgetExceeded:
            return True

    exhausted = benchmark.pedantic(budgeted, rounds=1, iterations=1)
    assert exhausted
