"""Section 5.1: 3-Colorability scales linearly for fixed treewidth.

Theorem 5.1 promises O(f(w) * |(V, E)|).  We grow random partial
2-trees and benchmark both the direct DP and the datalog-interpreted
Figure 5 program; doubling n should roughly double the time.

Run:  pytest benchmarks/bench_three_coloring.py --benchmark-only
"""

import random

import pytest

from repro.problems import ThreeColoringDatalog, random_partial_ktree
from repro.problems.three_coloring import three_coloring_direct

SIZES = [20, 40, 80, 160]


@pytest.fixture(scope="module")
def instances():
    rng = random.Random(12345)
    return {n: random_partial_ktree(rng, n, 2, edge_probability=0.6) for n in SIZES}


@pytest.mark.parametrize("n", SIZES, ids=lambda n: f"n{n}")
def test_direct_dp_scaling(benchmark, instances, n):
    graph, td = instances[n]
    colorable, _ = benchmark(three_coloring_direct, graph, td)
    benchmark.extra_info["vertices"] = n
    benchmark.extra_info["colorable"] = colorable


@pytest.mark.parametrize("n", SIZES[:3], ids=lambda n: f"n{n}")
def test_datalog_scaling(benchmark, instances, n):
    graph, td = instances[n]
    solver = ThreeColoringDatalog()
    benchmark.pedantic(
        solver.decide, args=(graph, td), rounds=3, iterations=1
    )


def test_linearity_of_direct_dp(benchmark, instances):
    """A single benchmark wrapping the whole sweep so that the fitted
    slope lands in the report's extra_info."""
    from repro.bench import fit_linear, time_ms

    times = {
        n: time_ms(
            lambda n=n: three_coloring_direct(*instances[n]), repeat=3
        )
        for n in SIZES
    }
    fit = fit_linear(list(times), list(times.values()))
    benchmark.extra_info["r_squared"] = round(fit.r_squared, 3)
    benchmark.extra_info["ms_per_vertex"] = round(fit.slope, 4)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert fit.is_convincingly_linear or fit.r_squared > 0.8
