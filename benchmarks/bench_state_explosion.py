"""Sections 1 and 6: the MSO-to-FTA state explosion, measured.

The generic constructions (the Theorem 4.5 compiler and the FTA type
automaton share the Θ↑ type space) are exponential in the signature,
width and quantifier depth.  We measure construction time and state /
rule counts as each parameter grows, and show the unfiltered directed-
graph case blowing through its budget -- the quantitative version of
"even relatively simple MSO formulae may lead to a state explosion".

Run:  pytest benchmarks/bench_state_explosion.py --benchmark-only
"""

import pytest

from repro.core import (
    CompilerLimitError,
    compile_sentence,
    compile_unary_query,
    undirected_graph_filter,
)
from repro.fta import build_type_automaton
from repro.mso import And, ExistsInd, Not, RelAtom, formulas
from repro.structures import GRAPH_SIGNATURE, Signature

PSIG = Signature.of(p=1)
P_SENTENCE_D1 = ExistsInd("x", RelAtom("p", ("x",)))
P_SENTENCE_D2 = ExistsInd(
    "x", And(RelAtom("p", ("x",)), ExistsInd("y", Not(RelAtom("p", ("y",)))))
)


@pytest.mark.parametrize("width", [1, 2], ids=["w1", "w2"])
def test_compiler_growth_with_width(benchmark, width):
    """Unary-signature sentence, depth 1: width drives the blow-up."""
    compiled = benchmark.pedantic(
        compile_sentence,
        args=(P_SENTENCE_D1, PSIG, width),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["types"] = compiled.up_type_count
    benchmark.extra_info["rules"] = len(compiled.program)


@pytest.mark.parametrize(
    "sentence,label", [(P_SENTENCE_D1, "k1"), (P_SENTENCE_D2, "k2")],
    ids=["k1", "k2"],
)
def test_compiler_growth_with_depth(benchmark, sentence, label):
    compiled = benchmark.pedantic(
        compile_sentence, args=(sentence, PSIG, 1), rounds=1, iterations=1
    )
    benchmark.extra_info["types"] = compiled.up_type_count
    benchmark.extra_info["rules"] = len(compiled.program)


def test_fta_construction_k2(benchmark):
    automaton = benchmark.pedantic(
        build_type_automaton, args=(P_SENTENCE_D2, PSIG, 1),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["states"] = automaton.state_count()
    benchmark.extra_info["transitions"] = automaton.transition_count()


def test_filtered_graph_query_compiles(benchmark):
    """Restricting to the undirected-graph class keeps w=1/k=1 feasible."""
    compiled = benchmark.pedantic(
        compile_unary_query,
        args=(formulas.has_neighbor("x"), GRAPH_SIGNATURE, 1),
        kwargs={"structure_filter": undirected_graph_filter},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["types"] = compiled.up_type_count
    benchmark.extra_info["rules"] = len(compiled.program)


def test_unfiltered_graphs_blow_the_budget(benchmark):
    """Directed graphs without a class filter: thousands of types and no
    convergence within the budget -- the paper's state explosion."""

    def blown() -> bool:
        try:
            compile_unary_query(
                formulas.has_neighbor("x"),
                GRAPH_SIGNATURE,
                width=1,
                max_types=2000,
            )
            return False
        except CompilerLimitError:
            return True

    assert benchmark.pedantic(blown, rounds=1, iterations=1)
