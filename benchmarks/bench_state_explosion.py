"""Sections 1 and 6: the MSO-to-datalog state explosion, measured.

The generic constructions (the Theorem 4.5 compiler and the FTA type
automaton share the Θ↑ type space) are exponential in the signature,
width and quantifier depth.  This harness measures construction time,
type/class/rule counts and witness sizes as each parameter grows, and
shows the unfiltered graph case blowing through its budget -- the
quantitative version of "even relatively simple MSO formulae may lead
to a state explosion".

``python benchmarks/bench_state_explosion.py [--quick]`` writes the
machine-readable baseline ``BENCH_compiler.json`` to the repo root
(``--out`` overrides) and exits non-zero if a contract regresses:

1. the **width-2 grid-class compile** (``has_neighbor`` over the grid
   class at width 2 -- the ROADMAP (d) envelope gate) succeeds at the
   *default* ``max_witness_size`` without ``CompilerLimitError``;
2. witness reduction keeps every stored witness within the configured
   bound (``max_reduced_witness <= max_witness_size``) on every
   workload -- the minimal-representative closure claim;
3. type minimization never *grows* the predicate count
   (``classes <= types``) and the width-2 grid program stays under
   ``MAX_GRID2_RULES`` rules (the emitted program must remain
   practically evaluable, not just constructible);
3b. (v2) the program-shrinking passes only shrink
   (``rules_after_passes <= rules``, ``classes_folded >= 0``) and the
   width-2 grid program lands under ``MAX_GRID2_RULES_AFTER_PASSES``
   rules after ⊥-insensitive folding + recursion elimination
   (ROADMAP D);
4. the unfiltered graph compile still exhausts a 2000-type budget --
   the paper's state explosion is a property of the construction, not
   a bug to be fixed, and this gate fails if a change accidentally
   "loses" the full type space;
5. the checked-in ``BENCH_compiler.json`` must match the harness's
   schema version and workload/field shape (drift fails CI until the
   baseline is regenerated), mirroring the ``BENCH_engine.json``
   drift rule.
"""

import argparse
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running as a plain script without install
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_compiler.json"
SCHEMA_VERSION = "bench-compiler/v2"

#: contract 3: the width-2 grid-class program must stay evaluable
MAX_GRID2_RULES = 60000

#: contract 6 (v2): after the program-shrinking passes (ROADMAP D --
#: ⊥-insensitive folding + recursion elimination) the same width-2
#: grid-class program must land well under the evaluability bound
MAX_GRID2_RULES_AFTER_PASSES = 10000

#: the per-record fields whose *presence* the drift gate pins
RECORD_FIELDS = (
    "signature",
    "width",
    "k",
    "filter",
    "kind",
    "ms",
    "types",
    "classes",
    "rules",
    "classes_folded",
    "rules_after_passes",
    "bounded_predicates",
    "max_reduced_witness",
    "max_witness_typed",
    "type_computations",
    "glue_pairs",
)


def _sentences():
    from repro.mso import And, ExistsInd, Not, RelAtom

    d1 = ExistsInd("x", RelAtom("p", ("x",)))
    d2 = ExistsInd(
        "x",
        And(RelAtom("p", ("x",)), ExistsInd("y", Not(RelAtom("p", ("y",))))),
    )
    return d1, d2


def compiler_workloads(quick):
    """(name, thunk) pairs; each thunk compiles and returns the
    ``CompiledQuery``.  All run at the *default* witness bound -- the
    envelope is measured, not configured around."""
    from repro.core import (
        compile_sentence,
        compile_unary_query,
        grid_graph_filter,
        undirected_graph_filter,
    )
    from repro.mso import formulas
    from repro.structures import GRAPH_SIGNATURE, Signature

    psig = Signature.of(p=1)
    d1, d2 = _sentences()
    neighbor = formulas.has_neighbor("x")
    workloads = [
        (
            "p-sentence-w1-k1",
            dict(signature="{p}", width=1, k=1, filter=None, kind="sentence"),
            lambda: compile_sentence(d1, psig, 1),
        ),
        (
            "p-sentence-w2-k1",
            dict(signature="{p}", width=2, k=1, filter=None, kind="sentence"),
            lambda: compile_sentence(d1, psig, 2),
        ),
        (
            "p-sentence-w1-k2",
            dict(signature="{p}", width=1, k=2, filter=None, kind="sentence"),
            lambda: compile_sentence(d2, psig, 1),
        ),
        (
            "graph-neighbor-w1-undirected",
            dict(
                signature="{e}",
                width=1,
                k=1,
                filter="undirected_graph_filter",
                kind="unary",
            ),
            lambda: compile_unary_query(
                neighbor,
                GRAPH_SIGNATURE,
                1,
                structure_filter=undirected_graph_filter,
            ),
        ),
        (
            "graph-neighbor-w1-grid",
            dict(
                signature="{e}",
                width=1,
                k=1,
                filter="grid_graph_filter",
                kind="unary",
            ),
            lambda: compile_unary_query(
                neighbor,
                GRAPH_SIGNATURE,
                1,
                structure_filter=grid_graph_filter,
            ),
        ),
        (
            # ROADMAP (d): the width >= 2 envelope, CI-gated.  Interned
            # k-types + minimal witnesses + EDB-bucketed gluing keep
            # the fixpoint finite and fast; minimization keeps the
            # emitted program evaluable.
            "graph-neighbor-w2-grid",
            dict(
                signature="{e}",
                width=2,
                k=1,
                filter="grid_graph_filter",
                kind="unary",
            ),
            lambda: compile_unary_query(
                neighbor,
                GRAPH_SIGNATURE,
                2,
                structure_filter=grid_graph_filter,
            ),
        ),
    ]
    return workloads


def run_compiles(quick):
    """Compile every workload; returns (records, failures)."""
    from repro.core import CompilerLimitError
    from repro.core.mso_to_datalog import DEFAULT_MAX_WITNESS_SIZE

    records = {}
    failures = []
    for name, meta, thunk in compiler_workloads(quick):
        start = time.perf_counter()
        try:
            compiled = thunk()
        except CompilerLimitError as error:
            failures.append(
                f"{name}: CompilerLimitError at the default witness "
                f"bound -- the practical envelope regressed ({error})"
            )
            continue
        ms = (time.perf_counter() - start) * 1000.0
        stats = compiled.stats
        record = dict(meta)
        record.update(
            ms=round(ms, 1),
            types=stats.up_types,
            classes=stats.up_classes,
            rules=stats.rules,
            classes_folded=stats.classes_folded,
            rules_after_passes=stats.rules_after_passes,
            bounded_predicates=stats.bounded_predicates,
            max_reduced_witness=stats.max_reduced_witness,
            max_witness_typed=stats.max_witness_typed,
            type_computations=stats.type_computations,
            glue_pairs=stats.glue_pairs,
        )
        records[name] = record
        if stats.max_reduced_witness > DEFAULT_MAX_WITNESS_SIZE:
            failures.append(
                f"{name}: max_reduced_witness {stats.max_reduced_witness} "
                "exceeds the default witness bound -- reduction is not "
                "holding the minimal-representative closure"
            )
        if stats.up_classes > stats.up_types:
            failures.append(
                f"{name}: minimization grew the predicate count "
                f"({stats.up_classes} classes > {stats.up_types} types)"
            )
        if stats.classes_folded < 0:
            failures.append(
                f"{name}: classes_folded {stats.classes_folded} is "
                "negative -- folding must only merge"
            )
        if stats.rules_after_passes > stats.rules:
            failures.append(
                f"{name}: the shrinking passes grew the program "
                f"({stats.rules_after_passes} rules after passes > "
                f"{stats.rules} emitted)"
            )
    grid2 = records.get("graph-neighbor-w2-grid")
    if grid2 is not None and grid2["rules"] > MAX_GRID2_RULES:
        failures.append(
            f"graph-neighbor-w2-grid: {grid2['rules']} rules exceeds "
            f"the {MAX_GRID2_RULES}-rule evaluability bound"
        )
    if (
        grid2 is not None
        and grid2["rules_after_passes"] > MAX_GRID2_RULES_AFTER_PASSES
    ):
        failures.append(
            f"graph-neighbor-w2-grid: {grid2['rules_after_passes']} "
            f"rules after the shrinking passes exceeds the "
            f"{MAX_GRID2_RULES_AFTER_PASSES}-rule bound (ROADMAP D)"
        )
    return records, failures


def run_blowup_check():
    """Contract 4: unfiltered graphs must exhaust the type budget."""
    from repro.core import CompilerLimitError, compile_unary_query
    from repro.mso import formulas
    from repro.structures import GRAPH_SIGNATURE

    start = time.perf_counter()
    try:
        compile_unary_query(
            formulas.has_neighbor("x"),
            GRAPH_SIGNATURE,
            width=1,
            max_types=2000,
        )
    except CompilerLimitError:
        ms = (time.perf_counter() - start) * 1000.0
        return {"blown": True, "max_types": 2000, "ms": round(ms, 1)}, []
    return {"blown": False, "max_types": 2000}, [
        "unfiltered graph compile no longer exhausts a 2000-type "
        "budget -- the full type space went missing"
    ]


def check_baseline_drift(previous, payload):
    """Schema/shape comparison against the checked-in baseline (the
    ``BENCH_engine.json`` drift rule, applied to the compiler)."""
    failures = []
    if previous is None:
        return failures  # first run: nothing checked in yet
    if previous.get("schema") != payload["schema"]:
        failures.append(
            f"baseline drift: checked-in schema "
            f"{previous.get('schema')!r} != harness schema "
            f"{payload['schema']!r} -- regenerate BENCH_compiler.json"
        )
        return failures
    old_keys = set(previous.get("compiles", ()))
    new_keys = set(payload.get("compiles", ()))
    if old_keys != new_keys:
        failures.append(
            f"baseline drift: compile workloads changed "
            f"{sorted(old_keys)} -> {sorted(new_keys)} -- regenerate "
            "BENCH_compiler.json"
        )
    for name, record in payload.get("compiles", {}).items():
        old = previous.get("compiles", {}).get(name)
        if old is not None and set(old) != set(record):
            failures.append(
                f"baseline drift: fields of {name} changed "
                f"{sorted(old)} -> {sorted(record)} -- regenerate "
                "BENCH_compiler.json"
            )
    return failures


def format_table(records):
    header = [
        "workload",
        "w",
        "k",
        "types",
        "classes",
        "folded",
        "rules",
        "after passes",
        "max wit",
        "ms",
    ]
    rows = [
        [
            name,
            r["width"],
            r["k"],
            r["types"],
            r["classes"],
            r["classes_folded"],
            r["rules"],
            r["rules_after_passes"],
            r["max_reduced_witness"],
            r["ms"],
        ]
        for name, r in records.items()
    ]
    widths = [
        max(len(str(cell)) for cell in column)
        for column in zip(header, *rows)
    ]
    lines = [
        "  ".join(str(cell).rjust(w) for cell, w in zip(row, widths))
        for row in [header] + rows
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="accepted for CI symmetry; the workload set is identical "
        "(every compile is already seconds at most)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=BENCH_JSON,
        help=f"where to write the JSON baseline (default {BENCH_JSON})",
    )
    args = parser.parse_args(argv)

    records, failures = run_compiles(args.quick)
    print(format_table(records))
    blowup, blowup_failures = run_blowup_check()
    failures.extend(blowup_failures)
    print(f"\nunfiltered-blowup: {blowup}")

    from repro.core.mso_to_datalog import DEFAULT_MAX_WITNESS_SIZE

    payload = {
        "schema": SCHEMA_VERSION,
        "benchmark": "benchmarks/bench_state_explosion.py",
        "quick": args.quick,
        "default_max_witness_size": DEFAULT_MAX_WITNESS_SIZE,
        "compiles": records,
        "unfiltered_blowup": blowup,
    }
    previous = None
    if args.out.exists():
        try:
            previous = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            failures.append(f"baseline drift: {args.out} is not valid JSON")
    failures.extend(check_baseline_drift(previous, payload))
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")
    if failures:
        print("\nCONTRACT VIOLATIONS:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "\nok: the width-2 grid-class compile clears the default witness "
        "bound; reduced witnesses stay within the bound everywhere; "
        "minimization and the shrinking passes only shrink (grid-2 under "
        f"{MAX_GRID2_RULES_AFTER_PASSES} rules after passes); the "
        "unfiltered type space still explodes; the baseline schema "
        "matches the harness"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
