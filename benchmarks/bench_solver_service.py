"""Throughput harness for the persistent solver service.

Theorem 4.5's amortization claim is only a production story if the
serving layer can turn "compile once, solve many" into solves/sec.
This benchmark drives :class:`repro.service.SolverService` with the
mixed traffic shape the paper's workloads suggest (and the
Frochaux-Schweikardt unranked-tree workloads in PAPERS.md motivate):

* ``chain``  -- path graphs through the width-1 compiled
  ``has_neighbor`` program;
* ``tree``   -- random trees through the same width-1 program (chains
  and trees share one compiled program, so their requests coalesce
  into shared shards);
* ``ladder`` -- 2 x N ladder grids through the *width-2* Theorem 4.5
  program compiled against the grid class (``grid_graph_filter``) --
  the expensive compile that the service amortizes: it happens once
  here, never on the request path.

Measured, and recorded as ``service_throughput`` in
``BENCH_engine.json`` (schema ``bench-engine/v4``):

1. **serial**: the in-process loop over the whole traffic (the
   baseline the service must beat);
2. **service**: the same traffic submitted request-by-request to a
   warm ``SolverService`` at N workers -- wall-clock, solves/sec, and
   per-request latency percentiles (p50/p95, measured from submit to
   future resolution via done-callbacks);
3. **warm vs cold**: ``CourcelleSolver.solve_many`` through the
   caller-held service handle vs the one-shot ``multiprocessing.Pool``
   path that re-pickles the solver and cold-starts workers per call.

Contracts (CI-gated):

* the service's answers are identical to the serial loop's, in input
  order -- always;
* with >= 4 effective cores and >= 4 workers, service throughput must
  be >= 3x the serial loop (on smaller machines the speedup is
  recorded but not gated: a pool cannot beat the loop on one core);
* latency percentiles are sane (p50 > 0, p95 >= p50);
* the checked-in ``BENCH_engine.json`` must already be on the
  harness's schema version (run ``bench_datalog_engine.py`` first).

Run ``python benchmarks/bench_solver_service.py [--quick]``; ``--quick``
is the CI smoke test.
"""

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running as a plain script without install
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_engine.json"

#: must match bench_datalog_engine.SCHEMA_VERSION -- both harnesses
#: write sections of the same baseline file
ENGINE_SCHEMA = "bench-engine/v4"

#: the acceptance gate: at >= GATE_WORKERS workers on >= GATE_WORKERS
#: cores, the service must clear GATE_SPEEDUP x the serial loop
GATE_WORKERS = 4
GATE_SPEEDUP = 3.0


# ----------------------------------------------------------------------
# Traffic
# ----------------------------------------------------------------------


def build_solvers():
    """(width-1 chain/tree solver, width-2 ladder solver) -- compiled
    once, outside every timed region."""
    from repro.core import (
        CourcelleSolver,
        grid_graph_filter,
        undirected_graph_filter,
    )
    from repro.mso import formulas
    from repro.structures import GRAPH_SIGNATURE

    width1 = CourcelleSolver(
        formulas.has_neighbor("x"),
        GRAPH_SIGNATURE,
        width=1,
        free_var="x",
        structure_filter=undirected_graph_filter,
    )
    ladder = CourcelleSolver(
        formulas.has_neighbor("x"),
        GRAPH_SIGNATURE,
        width=2,
        free_var="x",
        structure_filter=grid_graph_filter,
    )
    return width1, ladder


def build_traffic(quick, seed=0xFEED):
    """The mixed request stream: a list of (class, solver_index,
    structure), interleaved round-robin so per-program coalescing is
    actually exercised (solver_index 0 = width-1, 1 = ladder)."""
    from repro.problems import random_tree_graph
    from repro.structures import Graph, graph_to_structure

    if quick:
        chain_n, tree_n, ladder_n = 120, 100, 6
        chains, trees, ladders = 12, 12, 3
    else:
        chain_n, tree_n, ladder_n = 200, 150, 10
        chains, trees, ladders = 24, 24, 6
    rng = random.Random(seed)
    classes = {
        "chain": [
            (0, graph_to_structure(Graph.path(chain_n)))
            for _ in range(chains)
        ],
        "tree": [
            (0, graph_to_structure(random_tree_graph(rng, tree_n)))
            for _ in range(trees)
        ],
        "ladder": [
            (1, graph_to_structure(Graph.grid(2, ladder_n)))
            for _ in range(ladders)
        ],
    }
    # round-robin interleave: chain, tree, ladder, chain, tree, ...
    queues = {name: list(items) for name, items in classes.items()}
    traffic = []
    while any(queues.values()):
        for name in ("chain", "tree", "ladder"):
            if queues[name]:
                idx, structure = queues[name].pop(0)
                traffic.append((name, idx, structure))
    shape = {
        "chain": {"count": chains, "n": chain_n},
        "tree": {"count": trees, "n": tree_n},
        "ladder": {"count": ladders, "n": ladder_n},
    }
    return traffic, shape


def percentile(values, q):
    """The q-quantile (0..1) of values by linear interpolation."""
    if not values:
        return 0.0
    if len(values) == 1:
        return values[0]
    return statistics.quantiles(values, n=100, method="inclusive")[
        max(0, min(98, round(q * 100) - 1))
    ]


# ----------------------------------------------------------------------
# The measured runs
# ----------------------------------------------------------------------


def run_serial(solvers, traffic):
    """The in-process baseline: one loop, no pool, no service."""
    t0 = time.perf_counter()
    results = [solvers[idx].query(structure) for _, idx, structure in traffic]
    return (time.perf_counter() - t0) * 1000.0, results


def run_service(solvers, traffic, workers, max_shard):
    """The same traffic through a warm SolverService.

    The service is started and the programs warmed (every worker has
    solved each program once) *before* the timed region: steady-state
    throughput is the claim, and worker fork + the one-time program
    load are the cold cost the service exists to amortize.  Returns
    (ms, results, per-request latency ms list, stats, warm_vs_cold).
    """
    from repro.service import SolverService

    with SolverService(workers=workers, max_shard=max_shard) as service:
        handles = [service.register(solver) for solver in solvers]
        # warm-up: one full round of every (worker x program) pair --
        # send `workers` copies of a tiny structure per program
        warm = []
        for name, idx, structure in traffic:
            if len(warm) < workers * len(handles):
                warm.extend(
                    handles[idx].submit(structure) for _ in range(workers)
                )
        for future in warm:
            future.result(timeout=300)

        latencies = []
        t0 = time.perf_counter()
        futures = []
        for _name, idx, structure in traffic:
            submitted = time.perf_counter()
            future = handles[idx].submit(structure)
            future.add_done_callback(
                lambda _f, t=submitted: latencies.append(
                    (time.perf_counter() - t) * 1000.0
                )
            )
            futures.append(future)
        results = [future.result(timeout=600) for future in futures]
        service_ms = (time.perf_counter() - t0) * 1000.0

        # warm-vs-cold (the solve_many routing satellite): the same
        # batch through the caller-held service handle vs the one-shot
        # pool that re-pickles the solver and cold-starts workers
        batch = [s for _n, idx, s in traffic if idx == 0]
        t0 = time.perf_counter()
        warm_results = solvers[0].solve_many(batch, service=service)
        warm_ms = (time.perf_counter() - t0) * 1000.0
        stats = service.stats
    t0 = time.perf_counter()
    cold_results = solvers[0].solve_many(batch, workers=workers)
    cold_ms = (time.perf_counter() - t0) * 1000.0
    if warm_results != cold_results:
        raise AssertionError(
            "service-routed solve_many disagrees with the one-shot pool"
        )
    warm_vs_cold = {
        "batch_size": len(batch),
        "warm_service_ms": round(warm_ms, 3),
        "cold_pool_ms": round(cold_ms, 3),
        "cold_over_warm": round(cold_ms / warm_ms, 2) if warm_ms else None,
    }
    return service_ms, results, latencies, stats, warm_vs_cold


# ----------------------------------------------------------------------
# Contracts
# ----------------------------------------------------------------------


def check_service_contracts(record):
    """The CI gate over a ``service_throughput`` record; pure, so the
    test suite exercises it on synthetic records.

    Identity is gated unconditionally.  The throughput gate --
    ``GATE_SPEEDUP``x over the serial loop -- applies when the record
    was taken at >= GATE_WORKERS workers on >= GATE_WORKERS effective
    cores (``gate.applied``); on smaller machines the speedup is
    recorded for trend-tracking but a pool cannot beat a serial loop
    without cores to run on.
    """
    failures = []
    if not record.get("identical"):
        failures.append(
            "service answers differ from the serial in-process loop"
        )
    latency = record.get("latency_ms", {})
    p50, p95 = latency.get("p50", 0), latency.get("p95", 0)
    if not p50 > 0:
        failures.append("latency p50 must be positive")
    elif p95 < p50:
        failures.append(f"latency p95 ({p95}) below p50 ({p50})")
    gate = record.get("gate", {})
    if gate.get("applied"):
        required = gate.get("required_speedup", GATE_SPEEDUP)
        speedup = record.get("speedup", 0)
        if speedup < required:
            failures.append(
                f"service throughput {speedup}x the serial loop at "
                f"{record.get('workers')} workers -- below the required "
                f"{required}x"
            )
    return failures


def effective_cpus():
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def build_record(quick, workers, max_shard):
    solvers = build_solvers()
    traffic, shape = build_traffic(quick)
    serial_ms, serial_results = run_serial(solvers, traffic)
    service_ms, service_results, latencies, stats, warm_vs_cold = (
        run_service(solvers, traffic, workers, max_shard)
    )
    identical = service_results == serial_results
    n = len(traffic)
    cpus = effective_cpus()
    speedup = serial_ms / service_ms if service_ms else float("inf")
    record = {
        "schema_note": "service_throughput section of " + ENGINE_SCHEMA,
        "quick": quick,
        "workers": workers,
        "max_shard": max_shard,
        "cpu_count": cpus,
        "traffic": shape,
        "requests": n,
        "serial_ms": round(serial_ms, 3),
        "serial_solves_per_sec": round(n / (serial_ms / 1000.0), 2),
        "service_ms": round(service_ms, 3),
        "service_solves_per_sec": round(n / (service_ms / 1000.0), 2),
        "speedup": round(speedup, 2),
        "latency_ms": {
            "p50": round(percentile(sorted(latencies), 0.50), 3),
            "p95": round(percentile(sorted(latencies), 0.95), 3),
        },
        "identical": identical,
        "warm_vs_cold": warm_vs_cold,
        "scheduler": {
            "shards_dispatched": stats.shards_dispatched,
            "peak_queue_depth": stats.peak_queue_depth,
            "worker_restarts": stats.worker_restarts,
        },
        "gate": {
            "applied": cpus >= GATE_WORKERS and workers >= GATE_WORKERS,
            "required_speedup": GATE_SPEEDUP,
        },
    }
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller traffic (the CI smoke test)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=GATE_WORKERS,
        help=f"service worker count (default {GATE_WORKERS})",
    )
    parser.add_argument(
        "--max-shard",
        type=int,
        default=8,
        help="scheduler shard-size cap (default 8)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=BENCH_JSON,
        help=f"the baseline to update (default {BENCH_JSON})",
    )
    args = parser.parse_args(argv)

    failures = []
    baseline = None
    if args.out.exists():
        try:
            baseline = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            failures.append(f"{args.out} is not valid JSON")
    if baseline is None:
        failures.append(
            f"{args.out} missing -- run bench_datalog_engine.py first "
            "(this harness only owns the service_throughput section)"
        )
    elif baseline.get("schema") != ENGINE_SCHEMA:
        failures.append(
            f"baseline drift: {args.out} is on schema "
            f"{baseline.get('schema')!r}, this harness writes "
            f"{ENGINE_SCHEMA!r} -- regenerate with "
            "bench_datalog_engine.py first"
        )
    if failures:
        for failure in failures:
            print(f"  - {failure}")
        return 1

    record = build_record(args.quick, args.workers, args.max_shard)
    failures = check_service_contracts(record)

    print("solver service throughput (mixed chain/tree/ladder traffic)")
    print(f"  requests:      {record['requests']} {record['traffic']}")
    print(
        f"  serial loop:   {record['serial_ms']:.0f} ms "
        f"({record['serial_solves_per_sec']} solves/s)"
    )
    print(
        f"  service x{record['workers']}:    {record['service_ms']:.0f} ms "
        f"({record['service_solves_per_sec']} solves/s, "
        f"{record['speedup']}x)"
    )
    print(
        f"  latency:       p50 {record['latency_ms']['p50']:.0f} ms, "
        f"p95 {record['latency_ms']['p95']:.0f} ms"
    )
    print(
        f"  warm vs cold:  service {record['warm_vs_cold']['warm_service_ms']:.0f} ms "
        f"vs one-shot pool {record['warm_vs_cold']['cold_pool_ms']:.0f} ms "
        f"({record['warm_vs_cold']['cold_over_warm']}x colder)"
    )
    print(
        f"  gate:          {'applied' if record['gate']['applied'] else 'recorded only'}"
        f" (cpus={record['cpu_count']}, need >= {GATE_WORKERS} cores and"
        f" workers for the {GATE_SPEEDUP}x gate)"
    )

    baseline["service_throughput"] = record
    args.out.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nupdated {args.out} (service_throughput)")
    if failures:
        print("\nCONTRACT VIOLATIONS:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "\nok: service answers identical to the serial loop; latency "
        "percentiles sane; throughput gate "
        + (
            "cleared"
            if record["gate"]["applied"]
            else "recorded (machine below the gate's core count)"
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
