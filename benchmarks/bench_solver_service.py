"""Throughput harness for the persistent solver service.

Theorem 4.5's amortization claim is only a production story if the
serving layer can turn "compile once, solve many" into solves/sec.
This benchmark drives :class:`repro.service.SolverService` with the
mixed traffic shape the paper's workloads suggest (and the
Frochaux-Schweikardt unranked-tree workloads in PAPERS.md motivate):

* ``chain``  -- path graphs through the width-1 compiled
  ``has_neighbor`` program;
* ``tree``   -- random trees through the same width-1 program (chains
  and trees share one compiled program, so their requests coalesce
  into shared shards);
* ``ladder`` -- 2 x N ladder grids through the *width-2* Theorem 4.5
  program compiled against the grid class (``grid_graph_filter``) --
  the expensive compile that the service amortizes: it happens once
  here, never on the request path.

Measured, and recorded as ``service_throughput`` in
``BENCH_engine.json`` (schema ``bench-engine/v8``):

1. **serial**: the in-process loop over the whole traffic (the
   baseline the service must beat);
2. **service**: the same traffic submitted request-by-request to a
   warm ``SolverService`` at N workers -- wall-clock, solves/sec, and
   per-request latency percentiles (p50/p95, measured from submit to
   future resolution via done-callbacks);
3. **warm vs cold**: ``CourcelleSolver.solve_many`` through the
   caller-held service handle vs the one-shot ``multiprocessing.Pool``
   path that re-pickles the solver and cold-starts workers per call.

Contracts (CI-gated):

* the service's answers are identical to the serial loop's, in input
  order -- always;
* with >= 4 effective cores and >= 4 workers, service throughput must
  be >= 3x the serial loop (on smaller machines the speedup is
  recorded but not gated: a pool cannot beat the loop on one core);
* latency percentiles are sane (p50 > 0, p95 >= p50);
* the checked-in ``BENCH_engine.json`` must already be on the
  harness's schema version (run ``bench_datalog_engine.py`` first).

Run ``python benchmarks/bench_solver_service.py [--quick]``; ``--quick``
is the CI smoke test.

``--faults`` switches the harness to the **resilience** mode (the v5
tentpole): the same width-1 traffic is run once clean and once with
``crash@worker.solve+1`` injected (every worker's second solve kills
it), and the ``service_resilience`` section records goodput under
failure (clean vs faulty wall-clock), recovery latency percentiles
(from ``ServiceStats.recovery_ms``), and the crash-recovery scheduler
counters.  CI-gated contracts: the answers under injected crashes are
identical to the serial in-process loop (the 1-vs-N identity gate,
now under fire), no request fails, the fault plan demonstrably fired
(>= 1 worker restart), and the recovery percentiles are sane.

``--admission`` switches to the **untrusted-input** mode (the v7
tentpole): clean width-1 traffic is solved by the legacy trusting path
and again with ``admission="repair"`` active (best of 3 each), and the
checked-in malformed corpus (``tests/data/malformed``) is replayed
through a ``SolverService(admission="degrade")``.  The ``admission``
section records the clean-traffic overhead ratio and the containment
counters.  CI-gated contracts: admission-on answers are identical to
the legacy path and cost at most 1.05x on clean traffic; every corpus
request resolves (answer or typed ``AdmissionRejected``) with exactly
the verdicts the cases declare; and zero workers die doing it.
"""

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running as a plain script without install
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_engine.json"

#: must match bench_datalog_engine.SCHEMA_VERSION -- both harnesses
#: write sections of the same baseline file
ENGINE_SCHEMA = "bench-engine/v8"

#: the acceptance gate: at >= GATE_WORKERS workers on >= GATE_WORKERS
#: cores, the service must clear GATE_SPEEDUP x the serial loop
GATE_WORKERS = 4
GATE_SPEEDUP = 3.0

#: the fault recipe of the resilience mode: every worker's second
#: solve crashes it (``+1``: the respawned replacement's first solve
#: passes, so the pool always makes progress and the batch converges
#: within the retry cap)
RESILIENCE_FAULTS = "crash@worker.solve+1"
RESILIENCE_RETRIES = 8

#: the admission mode's clean-traffic overhead gate: admission-on
#: solves may cost at most 5% over the legacy trusting path (best of
#: ADMISSION_REPEATS runs each, so scheduler noise cannot fail CI)
ADMISSION_OVERHEAD_LIMIT = 1.05
ADMISSION_REPEATS = 3

#: the malformed-input corpus the containment half replays
CORPUS_DIR = REPO_ROOT / "tests" / "data" / "malformed"


# ----------------------------------------------------------------------
# Traffic
# ----------------------------------------------------------------------


def build_solvers():
    """(width-1 chain/tree solver, width-2 ladder solver) -- compiled
    once, outside every timed region."""
    from repro.core import (
        CourcelleSolver,
        grid_graph_filter,
        undirected_graph_filter,
    )
    from repro.mso import formulas
    from repro.structures import GRAPH_SIGNATURE

    width1 = CourcelleSolver(
        formulas.has_neighbor("x"),
        GRAPH_SIGNATURE,
        width=1,
        free_var="x",
        structure_filter=undirected_graph_filter,
    )
    ladder = CourcelleSolver(
        formulas.has_neighbor("x"),
        GRAPH_SIGNATURE,
        width=2,
        free_var="x",
        structure_filter=grid_graph_filter,
    )
    return width1, ladder


def build_traffic(quick, seed=0xFEED, cpus=None):
    """The mixed request stream: a list of (class, solver_index,
    structure), interleaved round-robin so per-program coalescing is
    actually exercised (solver_index 0 = width-1, 1 = ladder).

    ``cpus`` (the effective core count) caps the default volume on
    low-core machines: below ``GATE_WORKERS`` cores the throughput gate
    is skipped anyway, so the run only records trend data -- half the
    requests measure the same thing in half the wall-clock."""
    from repro.problems import random_tree_graph
    from repro.structures import Graph, graph_to_structure

    if quick:
        chain_n, tree_n, ladder_n = 120, 100, 6
        chains, trees, ladders = 12, 12, 3
    else:
        chain_n, tree_n, ladder_n = 200, 150, 10
        chains, trees, ladders = 24, 24, 6
    capped = cpus is not None and cpus < GATE_WORKERS
    if capped:
        chains = max(4, chains // 2)
        trees = max(4, trees // 2)
        ladders = max(2, ladders // 2)
    rng = random.Random(seed)
    classes = {
        "chain": [
            (0, graph_to_structure(Graph.path(chain_n)))
            for _ in range(chains)
        ],
        "tree": [
            (0, graph_to_structure(random_tree_graph(rng, tree_n)))
            for _ in range(trees)
        ],
        "ladder": [
            (1, graph_to_structure(Graph.grid(2, ladder_n)))
            for _ in range(ladders)
        ],
    }
    # round-robin interleave: chain, tree, ladder, chain, tree, ...
    queues = {name: list(items) for name, items in classes.items()}
    traffic = []
    while any(queues.values()):
        for name in ("chain", "tree", "ladder"):
            if queues[name]:
                idx, structure = queues[name].pop(0)
                traffic.append((name, idx, structure))
    shape = {
        "chain": {"count": chains, "n": chain_n},
        "tree": {"count": trees, "n": tree_n},
        "ladder": {"count": ladders, "n": ladder_n},
        "capped_for_low_cores": capped,
    }
    return traffic, shape


def percentile(values, q):
    """The q-quantile (0..1) of values by linear interpolation."""
    if not values:
        return 0.0
    if len(values) == 1:
        return values[0]
    return statistics.quantiles(values, n=100, method="inclusive")[
        max(0, min(98, round(q * 100) - 1))
    ]


# ----------------------------------------------------------------------
# The measured runs
# ----------------------------------------------------------------------


def run_serial(solvers, traffic):
    """The in-process baseline: one loop, no pool, no service."""
    t0 = time.perf_counter()
    results = [solvers[idx].query(structure) for _, idx, structure in traffic]
    return (time.perf_counter() - t0) * 1000.0, results


def run_service(solvers, traffic, workers, max_shard):
    """The same traffic through a warm SolverService.

    The service is started and the programs warmed (every worker has
    solved each program once) *before* the timed region: steady-state
    throughput is the claim, and worker fork + the one-time program
    load are the cold cost the service exists to amortize.  Returns
    (ms, results, per-request latency ms list, stats, warm_vs_cold).
    """
    from repro.service import SolverService

    with SolverService(workers=workers, max_shard=max_shard) as service:
        handles = [service.register(solver) for solver in solvers]
        # warm-up: one full round of every (worker x program) pair --
        # send `workers` copies of a tiny structure per program
        warm = []
        for name, idx, structure in traffic:
            if len(warm) < workers * len(handles):
                warm.extend(
                    handles[idx].submit(structure) for _ in range(workers)
                )
        for future in warm:
            future.result(timeout=300)

        latencies = []
        t0 = time.perf_counter()
        futures = []
        for _name, idx, structure in traffic:
            submitted = time.perf_counter()
            future = handles[idx].submit(structure)
            future.add_done_callback(
                lambda _f, t=submitted: latencies.append(
                    (time.perf_counter() - t) * 1000.0
                )
            )
            futures.append(future)
        results = [future.result(timeout=600) for future in futures]
        service_ms = (time.perf_counter() - t0) * 1000.0

        # warm-vs-cold (the solve_many routing satellite): the same
        # batch through the caller-held service handle vs the one-shot
        # pool that re-pickles the solver and cold-starts workers
        batch = [s for _n, idx, s in traffic if idx == 0]
        t0 = time.perf_counter()
        warm_results = solvers[0].solve_many(batch, service=service)
        warm_ms = (time.perf_counter() - t0) * 1000.0
        stats = service.stats
    t0 = time.perf_counter()
    cold_results = solvers[0].solve_many(batch, workers=workers)
    cold_ms = (time.perf_counter() - t0) * 1000.0
    if warm_results != cold_results:
        raise AssertionError(
            "service-routed solve_many disagrees with the one-shot pool"
        )
    warm_vs_cold = {
        "batch_size": len(batch),
        "warm_service_ms": round(warm_ms, 3),
        "cold_pool_ms": round(cold_ms, 3),
        "cold_over_warm": round(cold_ms / warm_ms, 2) if warm_ms else None,
    }
    return service_ms, results, latencies, stats, warm_vs_cold


# ----------------------------------------------------------------------
# Contracts
# ----------------------------------------------------------------------


def check_service_contracts(record):
    """The CI gate over a ``service_throughput`` record; pure, so the
    test suite exercises it on synthetic records.

    Identity is gated unconditionally.  The throughput gate --
    ``GATE_SPEEDUP``x over the serial loop -- applies when the record
    was taken at >= GATE_WORKERS workers on >= GATE_WORKERS effective
    cores (``gate.applied``); on smaller machines the speedup is
    recorded for trend-tracking but a pool cannot beat a serial loop
    without cores to run on.
    """
    failures = []
    if not record.get("identical"):
        failures.append(
            "service answers differ from the serial in-process loop"
        )
    latency = record.get("latency_ms", {})
    p50, p95 = latency.get("p50", 0), latency.get("p95", 0)
    if not p50 > 0:
        failures.append("latency p50 must be positive")
    elif p95 < p50:
        failures.append(f"latency p95 ({p95}) below p50 ({p50})")
    gate = record.get("gate", {})
    if gate.get("applied"):
        required = gate.get("required_speedup", GATE_SPEEDUP)
        speedup = record.get("speedup", 0)
        if speedup < required:
            failures.append(
                f"service throughput {speedup}x the serial loop at "
                f"{record.get('workers')} workers -- below the required "
                f"{required}x"
            )
    return failures


def effective_cpus():
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Resilience mode (--faults): goodput under injected worker crashes
# ----------------------------------------------------------------------


def build_width1_solver():
    """Just the width-1 program: the resilience mode skips the
    expensive width-2 ladder compile it does not use."""
    from repro.core import CourcelleSolver, undirected_graph_filter
    from repro.mso import formulas
    from repro.structures import GRAPH_SIGNATURE

    return CourcelleSolver(
        formulas.has_neighbor("x"),
        GRAPH_SIGNATURE,
        width=1,
        free_var="x",
        structure_filter=undirected_graph_filter,
    )


def build_resilience_traffic(quick, seed=0xFA17):
    """Width-1 chain/tree structures for the clean-vs-faulty runs."""
    from repro.problems import random_tree_graph
    from repro.structures import Graph, graph_to_structure

    rng = random.Random(seed)
    if quick:
        chain_sizes, trees, tree_n = (40, 60, 80, 50, 70, 90), 4, 40
    else:
        chain_sizes, trees, tree_n = (
            (60, 90, 120, 80, 100, 140, 70, 110),
            8,
            60,
        )
    structures = [graph_to_structure(Graph.path(n)) for n in chain_sizes]
    structures += [
        graph_to_structure(random_tree_graph(rng, tree_n))
        for _ in range(trees)
    ]
    return structures


def run_resilience(solver, structures, workers, faults):
    """One pass of the traffic through a service; ``faults=None`` is
    the clean control run.  Both runs start cold (fresh pool, first
    program load inside the timed region) so clean-vs-faulty measures
    the same pipeline with and without crashes.  Returns
    (ms, results, stats)."""
    from repro.service import SolverService

    with SolverService(
        workers=workers,
        max_shard=4,
        faults=faults,
        max_retries=RESILIENCE_RETRIES,
        retry_backoff=0.01,
    ) as service:
        handle = service.register(solver)
        t0 = time.perf_counter()
        results = handle.solve_many(structures, timeout=600)
        ms = (time.perf_counter() - t0) * 1000.0
        stats = service.stats
    return ms, results, stats


def build_resilience_record(quick, workers):
    solver = build_width1_solver()
    structures = build_resilience_traffic(quick)
    t0 = time.perf_counter()
    serial_results = [solver.query(s) for s in structures]
    serial_ms = (time.perf_counter() - t0) * 1000.0
    clean_ms, clean_results, _clean_stats = run_resilience(
        solver, structures, workers, None
    )
    faulty_ms, faulty_results, stats = run_resilience(
        solver, structures, workers, RESILIENCE_FAULTS
    )
    recovery = sorted(stats.recovery_ms)
    n = len(structures)
    return {
        "schema_note": "service_resilience section of " + ENGINE_SCHEMA,
        "quick": quick,
        "workers": workers,
        "cpu_count": effective_cpus(),
        "requests": n,
        "fault_plan": RESILIENCE_FAULTS,
        "max_retries": RESILIENCE_RETRIES,
        "serial_ms": round(serial_ms, 3),
        "clean_ms": round(clean_ms, 3),
        "faulty_ms": round(faulty_ms, 3),
        "goodput": {
            "clean_solves_per_sec": round(n / (clean_ms / 1000.0), 2),
            "faulty_solves_per_sec": round(n / (faulty_ms / 1000.0), 2),
            "degradation": (
                round(faulty_ms / clean_ms, 2) if clean_ms else None
            ),
        },
        "recovery_ms": {
            "count": len(recovery),
            "p50": round(percentile(recovery, 0.50), 3),
            "p95": round(percentile(recovery, 0.95), 3),
        },
        "scheduler": {
            "worker_restarts": stats.worker_restarts,
            "shards_resubmitted": stats.shards_resubmitted,
            "retries": stats.retries,
            "completed": stats.completed,
            "failed": stats.failed,
            "poisoned": stats.poisoned,
        },
        "identical": faulty_results == serial_results
        and clean_results == serial_results,
    }


def check_resilience_contracts(record):
    """The CI gate over a ``service_resilience`` record; pure, so the
    test suite exercises it on synthetic records.

    All four contracts are unconditional: identity under fire (answers
    with crashes injected match the serial loop), zero failed or
    poisoned requests (the retry cap absorbs every injected crash),
    proof the plan fired (>= 1 worker restart and >= 1 recovered
    shard), and sane recovery percentiles.
    """
    failures = []
    if not record.get("identical"):
        failures.append(
            "answers under injected crashes differ from the serial loop"
        )
    scheduler = record.get("scheduler", {})
    if scheduler.get("failed", 1) or scheduler.get("poisoned", 1):
        failures.append(
            f"requests lost under injected crashes: "
            f"failed={scheduler.get('failed')} "
            f"poisoned={scheduler.get('poisoned')}"
        )
    if not scheduler.get("worker_restarts"):
        failures.append(
            "no worker restarts recorded -- the fault plan never fired"
        )
    recovery = record.get("recovery_ms", {})
    if not recovery.get("count"):
        failures.append("no recovered shards recorded recovery latency")
    elif not recovery.get("p50", 0) > 0:
        failures.append("recovery latency p50 must be positive")
    elif recovery.get("p95", 0) < recovery.get("p50", 0):
        failures.append(
            f"recovery p95 ({recovery.get('p95')}) below "
            f"p50 ({recovery.get('p50')})"
        )
    return failures


# ----------------------------------------------------------------------
# Admission mode (--admission): clean-traffic overhead + containment
# ----------------------------------------------------------------------


def build_admission_record(quick, workers):
    """The ``admission`` section (v7): two halves.

    **Overhead** -- the same clean width-1 traffic solved by the legacy
    trusting path and again with ``admission="repair"`` active, best of
    ``ADMISSION_REPEATS`` runs each.  Clean inputs take the
    verification fast path, so the ratio is the price every trusting
    caller pays for the ladder's existence; CI gates it at
    ``ADMISSION_OVERHEAD_LIMIT``.

    **Containment** -- the checked-in malformed corpus
    (``tests/data/malformed``) replayed through a live
    ``SolverService(admission="degrade")``: every request must resolve
    (an answer or a typed ``AdmissionRejected``), no worker may die.
    """
    from repro.admission import load_corpus
    from repro.errors import AdmissionRejected

    solver = build_width1_solver()
    structures = build_resilience_traffic(quick)

    legacy_runs, admitted_runs = [], []
    legacy_results = admitted_results = None
    for _ in range(ADMISSION_REPEATS):
        t0 = time.perf_counter()
        legacy_results = [solver.query(s) for s in structures]
        legacy_runs.append((time.perf_counter() - t0) * 1000.0)
        t0 = time.perf_counter()
        admitted_results = [
            solver.query(s, admission="repair") for s in structures
        ]
        admitted_runs.append((time.perf_counter() - t0) * 1000.0)
    legacy_ms, admitted_ms = min(legacy_runs), min(admitted_runs)

    cases = load_corpus(CORPUS_DIR)
    from repro.service import SolverService

    resolved = rejected = 0
    verdict_expectations_met = True
    with SolverService(workers=workers, admission="degrade") as service:
        handle = service.register(solver)
        futures = [
            handle.submit(case["structure"], td=case["td"])
            for case in cases
        ]
        for case, future in zip(cases, futures):
            try:
                future.result(timeout=300)
                resolved += 1
                if case["expect"] == "rejected":
                    verdict_expectations_met = False
            except AdmissionRejected:
                resolved += 1
                rejected += 1
                if case["expect"] != "rejected":
                    verdict_expectations_met = False
        stats = service.stats
    return {
        "schema_note": "admission section of " + ENGINE_SCHEMA,
        "quick": quick,
        "workers": workers,
        "cpu_count": effective_cpus(),
        "overhead": {
            "requests": len(structures),
            "repeats": ADMISSION_REPEATS,
            "legacy_ms": round(legacy_ms, 3),
            "admission_ms": round(admitted_ms, 3),
            "ratio": round(admitted_ms / legacy_ms, 4) if legacy_ms else None,
            "limit": ADMISSION_OVERHEAD_LIMIT,
            "identical": admitted_results == legacy_results,
        },
        "containment": {
            "corpus": str(CORPUS_DIR.relative_to(REPO_ROOT)),
            "requests": len(cases),
            "resolved": resolved,
            "rejected": rejected,
            "expected_rejected": sum(
                1 for c in cases if c["expect"] == "rejected"
            ),
            "verdicts_as_declared": verdict_expectations_met,
            "worker_restarts": stats.worker_restarts,
            "stats": {
                "admitted": stats.admitted,
                "repaired": stats.repaired,
                "degraded": stats.degraded,
                "admission_rejected": stats.admission_rejected,
            },
        },
    }


def check_admission_contracts(record):
    """The CI gate over an ``admission`` record; pure, so the test
    suite exercises it on synthetic records.

    Three unconditional contracts: admission-on answers are identical
    to the legacy path on clean traffic and cost at most the gated
    overhead ratio; every malformed-corpus request resolved (to an
    answer or a typed rejection) with exactly the declared verdicts;
    and zero workers died doing it.
    """
    failures = []
    overhead = record.get("overhead", {})
    if not overhead.get("identical"):
        failures.append(
            "admission-on answers differ from the legacy path on "
            "clean traffic"
        )
    ratio = overhead.get("ratio")
    limit = overhead.get("limit", ADMISSION_OVERHEAD_LIMIT)
    if ratio is None or ratio > limit:
        failures.append(
            f"clean-traffic admission overhead {ratio}x exceeds the "
            f"{limit}x gate"
        )
    containment = record.get("containment", {})
    if containment.get("resolved") != containment.get("requests"):
        failures.append(
            f"hung/abandoned corpus requests: "
            f"{containment.get('resolved')} of "
            f"{containment.get('requests')} resolved"
        )
    if containment.get("rejected") != containment.get("expected_rejected"):
        failures.append(
            f"corpus rejections {containment.get('rejected')} != "
            f"expected {containment.get('expected_rejected')}"
        )
    if not containment.get("verdicts_as_declared"):
        failures.append(
            "corpus verdicts diverged from the cases' declared "
            "expectations"
        )
    if containment.get("worker_restarts", 1):
        failures.append(
            f"{containment.get('worker_restarts')} worker restarts -- "
            "malformed input must never kill a worker"
        )
    return failures


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def gate_skipped_reason(cpus, workers):
    """Why the throughput gate is skipped, or ``None`` when it applies
    -- recorded explicitly so a baseline from a small machine says so
    instead of looking like a silently-waived contract."""
    reasons = []
    if cpus < GATE_WORKERS:
        reasons.append(f"{cpus} effective cores < {GATE_WORKERS}")
    if workers < GATE_WORKERS:
        reasons.append(f"{workers} workers < {GATE_WORKERS}")
    if not reasons:
        return None
    return (
        "; ".join(reasons)
        + f" -- the {GATE_SPEEDUP}x gate needs >= {GATE_WORKERS} of each"
    )


def build_record(quick, workers, max_shard):
    cpus = effective_cpus()
    solvers = build_solvers()
    traffic, shape = build_traffic(quick, cpus=cpus)
    serial_ms, serial_results = run_serial(solvers, traffic)
    service_ms, service_results, latencies, stats, warm_vs_cold = (
        run_service(solvers, traffic, workers, max_shard)
    )
    identical = service_results == serial_results
    n = len(traffic)
    speedup = serial_ms / service_ms if service_ms else float("inf")
    skipped_reason = gate_skipped_reason(cpus, workers)
    record = {
        "schema_note": "service_throughput section of " + ENGINE_SCHEMA,
        "quick": quick,
        "workers": workers,
        "max_shard": max_shard,
        "cpu_count": cpus,
        "traffic": shape,
        "requests": n,
        "serial_ms": round(serial_ms, 3),
        "serial_solves_per_sec": round(n / (serial_ms / 1000.0), 2),
        "service_ms": round(service_ms, 3),
        "service_solves_per_sec": round(n / (service_ms / 1000.0), 2),
        "speedup": round(speedup, 2),
        "latency_ms": {
            "p50": round(percentile(sorted(latencies), 0.50), 3),
            "p95": round(percentile(sorted(latencies), 0.95), 3),
        },
        "identical": identical,
        "warm_vs_cold": warm_vs_cold,
        "scheduler": {
            "shards_dispatched": stats.shards_dispatched,
            "peak_queue_depth": stats.peak_queue_depth,
            "worker_restarts": stats.worker_restarts,
        },
        "gate": {
            "applied": skipped_reason is None,
            "required_speedup": GATE_SPEEDUP,
            "skipped_reason": skipped_reason,
        },
    }
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller traffic (the CI smoke test)",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help=(
            "resilience mode: run the traffic clean and with "
            f"{RESILIENCE_FAULTS!r} injected, record service_resilience"
        ),
    )
    parser.add_argument(
        "--admission",
        action="store_true",
        help=(
            "admission mode: gate clean-traffic overhead at "
            f"{ADMISSION_OVERHEAD_LIMIT}x and replay the malformed "
            "corpus through a degrade-policy service, record admission"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=GATE_WORKERS,
        help=f"service worker count (default {GATE_WORKERS})",
    )
    parser.add_argument(
        "--max-shard",
        type=int,
        default=8,
        help="scheduler shard-size cap (default 8)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=BENCH_JSON,
        help=f"the baseline to update (default {BENCH_JSON})",
    )
    args = parser.parse_args(argv)

    failures = []
    baseline = None
    if args.out.exists():
        try:
            baseline = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            failures.append(f"{args.out} is not valid JSON")
    if baseline is None:
        failures.append(
            f"{args.out} missing -- run bench_datalog_engine.py first "
            "(this harness only owns the service_throughput section)"
        )
    elif baseline.get("schema") != ENGINE_SCHEMA:
        failures.append(
            f"baseline drift: {args.out} is on schema "
            f"{baseline.get('schema')!r}, this harness writes "
            f"{ENGINE_SCHEMA!r} -- regenerate with "
            "bench_datalog_engine.py first"
        )
    if failures:
        for failure in failures:
            print(f"  - {failure}")
        return 1

    if args.admission:
        record = build_admission_record(args.quick, args.workers)
        failures = check_admission_contracts(record)
        overhead = record["overhead"]
        containment = record["containment"]
        print("solver service admission (untrusted-input ladder)")
        print(
            f"  overhead:      legacy {overhead['legacy_ms']:.0f} ms vs "
            f"admission {overhead['admission_ms']:.0f} ms over "
            f"{overhead['requests']} clean solves "
            f"({overhead['ratio']}x, gate {overhead['limit']}x)"
        )
        print(
            f"  containment:   {containment['resolved']}/"
            f"{containment['requests']} corpus requests resolved, "
            f"{containment['rejected']} rejected "
            f"(expected {containment['expected_rejected']}), "
            f"{containment['worker_restarts']} worker restarts"
        )
        print(
            f"  verdicts:      {containment['stats']['admitted']} admitted, "
            f"{containment['stats']['repaired']} repaired, "
            f"{containment['stats']['degraded']} degraded, "
            f"{containment['stats']['admission_rejected']} rejected"
        )
        baseline["admission"] = record
        args.out.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        print(f"\nupdated {args.out} (admission)")
        if failures:
            print("\nCONTRACT VIOLATIONS:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(
            "\nok: clean-traffic overhead within the gate; the whole "
            "malformed corpus resolved with the declared verdicts and "
            "zero worker deaths"
        )
        return 0

    if args.faults:
        record = build_resilience_record(args.quick, args.workers)
        failures = check_resilience_contracts(record)
        goodput = record["goodput"]
        recovery = record["recovery_ms"]
        scheduler = record["scheduler"]
        print("solver service resilience (injected worker crashes)")
        print(
            f"  requests:      {record['requests']} width-1 chain/tree, "
            f"{record['workers']} workers, faults {record['fault_plan']!r}"
        )
        print(
            f"  clean:         {record['clean_ms']:.0f} ms "
            f"({goodput['clean_solves_per_sec']} solves/s)"
        )
        print(
            f"  under faults:  {record['faulty_ms']:.0f} ms "
            f"({goodput['faulty_solves_per_sec']} solves/s, "
            f"{goodput['degradation']}x slower)"
        )
        print(
            f"  recovery:      {recovery['count']} shards, "
            f"p50 {recovery['p50']:.0f} ms, p95 {recovery['p95']:.0f} ms"
        )
        print(
            f"  scheduler:     {scheduler['worker_restarts']} restarts, "
            f"{scheduler['shards_resubmitted']} shards resubmitted, "
            f"{scheduler['retries']} retries, "
            f"{scheduler['failed']} failed, "
            f"{scheduler['poisoned']} poisoned"
        )
        baseline["service_resilience"] = record
        args.out.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        print(f"\nupdated {args.out} (service_resilience)")
        if failures:
            print("\nCONTRACT VIOLATIONS:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(
            "\nok: answers identical to the serial loop under injected "
            "crashes; nothing failed or poisoned; recovery latency sane"
        )
        return 0

    record = build_record(args.quick, args.workers, args.max_shard)
    failures = check_service_contracts(record)

    print("solver service throughput (mixed chain/tree/ladder traffic)")
    print(f"  requests:      {record['requests']} {record['traffic']}")
    print(
        f"  serial loop:   {record['serial_ms']:.0f} ms "
        f"({record['serial_solves_per_sec']} solves/s)"
    )
    print(
        f"  service x{record['workers']}:    {record['service_ms']:.0f} ms "
        f"({record['service_solves_per_sec']} solves/s, "
        f"{record['speedup']}x)"
    )
    print(
        f"  latency:       p50 {record['latency_ms']['p50']:.0f} ms, "
        f"p95 {record['latency_ms']['p95']:.0f} ms"
    )
    print(
        f"  warm vs cold:  service {record['warm_vs_cold']['warm_service_ms']:.0f} ms "
        f"vs one-shot pool {record['warm_vs_cold']['cold_pool_ms']:.0f} ms "
        f"({record['warm_vs_cold']['cold_over_warm']}x colder)"
    )
    gate = record["gate"]
    print(
        "  gate:          "
        + (
            f"applied (cpus={record['cpu_count']}, "
            f"workers={record['workers']})"
            if gate["applied"]
            else f"recorded only -- {gate['skipped_reason']}"
        )
    )

    baseline["service_throughput"] = record
    args.out.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nupdated {args.out} (service_throughput)")
    if failures:
        print("\nCONTRACT VIOLATIONS:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "\nok: service answers identical to the serial loop; latency "
        "percentiles sane; throughput gate "
        + (
            "cleared"
            if record["gate"]["applied"]
            else "recorded (machine below the gate's core count)"
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
