"""Theorem 4.4: O(|P| * |A|) evaluation of quasi-guarded programs.

The compiled Theorem 4.5 program for ``has_neighbor`` is fixed; we grow
the data (random trees, hence width 1) and benchmark the
grounding + LTUR pipeline.  Time per tree node should stay flat.

Run:  pytest benchmarks/bench_quasi_guarded.py --benchmark-only
"""

import random

import pytest

from repro.core import (
    ANSWER_PREDICATE,
    QuasiGuardedEvaluator,
    compile_unary_query,
    undirected_graph_filter,
)
from repro.mso import formulas
from repro.structures import GRAPH_SIGNATURE, Graph, graph_to_structure
from repro.treewidth import decompose_structure, encode_normalized, normalize, widen

SIZES = [20, 40, 80, 160]


@pytest.fixture(scope="module")
def compiled():
    return compile_unary_query(
        formulas.has_neighbor("x"),
        GRAPH_SIGNATURE,
        width=1,
        free_var="x",
        structure_filter=undirected_graph_filter,
    )


@pytest.fixture(scope="module")
def encoded_inputs():
    rng = random.Random(777)
    encoded = {}
    for n in SIZES:
        g = Graph(range(n))
        for v in range(1, n):
            g.add_edge(v, rng.randrange(v))
        structure = graph_to_structure(g)
        td = decompose_structure(structure)
        if td.width < 1:
            td = widen(td, 1)
        encoded[n] = encode_normalized(structure, normalize(td))
    return encoded


@pytest.mark.parametrize("n", SIZES, ids=lambda n: f"n{n}")
def test_grounding_pipeline_scaling(benchmark, compiled, encoded_inputs, n):
    evaluator = QuasiGuardedEvaluator(
        compiled.program, dependencies=compiled.dependencies()
    )
    encoded = encoded_inputs[n]
    result = benchmark.pedantic(
        evaluator.evaluate, args=(encoded,), rounds=3, iterations=1
    )
    answers = result.unary_answers(ANSWER_PREDICATE)
    benchmark.extra_info["answers"] = len(answers)
    assert answers == frozenset(range(n))  # every tree vertex has a neighbor


def test_ground_rule_count_linear_in_data(benchmark, compiled, encoded_inputs):
    """|ground(P)| = O(|P| * |A|): ground-rule counts per node stay flat."""
    evaluator = QuasiGuardedEvaluator(
        compiled.program, dependencies=compiled.dependencies()
    )
    per_node = {}
    for n in (SIZES[0], SIZES[-1]):
        result = evaluator.evaluate(encoded_inputs[n])
        nodes = len(encoded_inputs[n].relation("bag"))
        per_node[n] = result.ground_rules / nodes
    benchmark.extra_info["rules_per_node_small"] = round(per_node[SIZES[0]], 1)
    benchmark.extra_info["rules_per_node_large"] = round(per_node[SIZES[-1]], 1)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # flat within a factor of two
    assert per_node[SIZES[-1]] < 2 * per_node[SIZES[0]] + 1
