"""Substrate: decomposition construction cost and quality.

The paper assumes Bodlaender's linear-time algorithm [3]; DESIGN.md §5
records the substitution by greedy heuristics.  This bench tracks their
cost on growing partial 2-trees, the width quality against the exact DP
on small instances, and the exponential growth of the exact algorithm.

Run:  pytest benchmarks/bench_treewidth.py --benchmark-only
"""

import random

import pytest

from repro.problems import random_partial_ktree
from repro.structures import Graph
from repro.treewidth import (
    decompose_graph,
    make_nice,
    normalize,
    treewidth_exact,
)

SIZES = [25, 50, 100, 200]


@pytest.fixture(scope="module")
def graphs():
    rng = random.Random(31415)
    return {n: random_partial_ktree(rng, n, 2, 0.6)[0] for n in SIZES}


@pytest.mark.parametrize("method", ["min_fill", "min_degree"])
@pytest.mark.parametrize("n", SIZES, ids=lambda n: f"n{n}")
def test_heuristic_cost(benchmark, graphs, method, n):
    td = benchmark(decompose_graph, graphs[n], method)
    benchmark.extra_info["width"] = td.width


@pytest.mark.parametrize("n", [25, 50], ids=lambda n: f"n{n}")
def test_normalization_cost(benchmark, graphs, n):
    td = decompose_graph(graphs[n])
    ntd = benchmark(normalize, td)
    benchmark.extra_info["nodes"] = ntd.node_count()


@pytest.mark.parametrize("n", [25, 50], ids=lambda n: f"n{n}")
def test_nice_form_cost(benchmark, graphs, n):
    td = decompose_graph(graphs[n])
    nice = benchmark(make_nice, td)
    benchmark.extra_info["nodes"] = nice.node_count()


@pytest.mark.parametrize("n", [8, 11, 14], ids=lambda n: f"n{n}")
def test_exact_dp_growth(benchmark, n):
    rng = random.Random(n)
    graph, _ = random_partial_ktree(rng, n, 2, 0.7)
    width = benchmark.pedantic(
        treewidth_exact, args=(graph,), rounds=2, iterations=1
    )
    benchmark.extra_info["width"] = width


def test_heuristic_quality_vs_exact(benchmark):
    """min-fill matches the exact width on most small partial 2-trees."""
    rng = random.Random(999)
    gaps = []
    for _ in range(10):
        graph, _ = random_partial_ktree(rng, 9, 2, 0.7)
        gaps.append(decompose_graph(graph).width - treewidth_exact(graph))
    benchmark.extra_info["max_gap"] = max(gaps)
    benchmark.extra_info["mean_gap"] = sum(gaps) / len(gaps)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert max(gaps) <= 1
