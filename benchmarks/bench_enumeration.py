"""Section 5.3: linear-time enumeration vs quadratic re-rooting.

"A naive first attempt ... has quadratic time complexity w.r.t. the
data size.  However, ... we describe a linear time algorithm."  The
crossover and the growth-rate gap between
:func:`prime_attributes_direct` (one bottom-up + one top-down pass) and
:func:`prime_attributes_rerooting` (one decision run per attribute) is
the claim under test.

Run:  pytest benchmarks/bench_enumeration.py --benchmark-only
"""

import pytest

from repro.problems import table1_instance
from repro.problems.primality import (
    prime_attributes_direct,
    prime_attributes_rerooting,
)

GADGETS = [2, 4, 8, 16]


@pytest.fixture(scope="module")
def instances():
    return {g: table1_instance(g) for g in GADGETS}


@pytest.mark.parametrize("gadgets", GADGETS, ids=lambda g: f"FD{g}")
def test_linear_enumeration(benchmark, instances, gadgets):
    inst = instances[gadgets]
    primes = benchmark(
        prime_attributes_direct, inst.schema, inst.decomposition
    )
    benchmark.extra_info["primes"] = len(primes)


@pytest.mark.parametrize("gadgets", GADGETS, ids=lambda g: f"FD{g}")
def test_quadratic_rerooting(benchmark, instances, gadgets):
    inst = instances[gadgets]
    primes = benchmark.pedantic(
        prime_attributes_rerooting,
        args=(inst.schema, inst.decomposition),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["primes"] = len(primes)


def test_growth_rate_gap(benchmark, instances):
    """Enumeration time should grow like n, re-rooting like n^2: the
    ratio (rerooting / enumeration) must widen as instances grow."""
    from repro.bench import time_ms

    ratios = []
    for gadgets in (2, 8):
        inst = instances[gadgets]
        enum_ms = time_ms(
            lambda: prime_attributes_direct(inst.schema, inst.decomposition),
            repeat=2,
        )
        reroot_ms = time_ms(
            lambda: prime_attributes_rerooting(inst.schema, inst.decomposition),
            repeat=2,
        )
        ratios.append(reroot_ms / max(enum_ms, 1e-9))
    benchmark.extra_info["ratio_small"] = round(ratios[0], 2)
    benchmark.extra_info["ratio_large"] = round(ratios[1], 2)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert ratios[1] > ratios[0]
