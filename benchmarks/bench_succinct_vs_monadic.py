"""Section 6, optimization (1): succinct non-monadic vs expanded monadic.

"Our datalog programs can be regarded as succinct representations of
big monadic datalog programs.  If all possible ground instances of our
datalog rules had to be materialized, then we would end up with a
ground program of the same size as with the equivalent monadic
program."  We quantify the succinctness factor: the Figure 5/6 rule
counts stay constant while the expanded monadic program (one unary
predicate per solve-argument combination per bag) grows with both the
width and the data.

Run:  pytest benchmarks/bench_succinct_vs_monadic.py --benchmark-only
"""

import random
from itertools import permutations

import pytest

from repro.problems import random_partial_ktree, table1_instance
from repro.problems.primality import (
    prepare_decision_decomposition,
    primality_program,
    _split_bag,
)
from repro.problems.three_coloring import (
    prepare_decomposition,
    three_coloring_program,
)


def three_coloring_monadic_predicate_count(nice) -> int:
    """solve<r1,r2,r3>(s): one monadic predicate per partition of each
    bag into three color classes (Theorem 5.1's expansion)."""
    return sum(3 ** len(nice.bag(n)) for n in nice.tree.nodes())


def primality_monadic_predicate_count(schema, nice) -> int:
    """solve<Y,FY,Co,DC,FC>(s) over one bag: 2^|At| choices of Y,
    ordered arrangements of Co, 2^|Fd| each for FY/FC and 2^|Co| for DC
    (upper bound on the Theorem 5.3 expansion)."""
    total = 0
    for node in nice.tree.nodes():
        at, fds = _split_bag(schema, nice.bag(node))
        per_partition = 0
        from itertools import combinations

        for k in range(len(at) + 1):
            arrangements = 1
            for i in range(k):
                arrangements *= k - i
            from math import comb

            per_partition += comb(len(at), k) * arrangements * (2 ** k)
        total += per_partition * (2 ** len(fds)) * (2 ** len(fds))
    return total


def test_three_coloring_succinctness_factor(benchmark):
    rng = random.Random(9)
    graph, td = random_partial_ktree(rng, 40, 2, 0.6)
    nice = prepare_decomposition(graph, td)
    succinct_rules = len(three_coloring_program().rules)
    monadic_preds = three_coloring_monadic_predicate_count(nice)
    benchmark.extra_info["succinct_rules"] = succinct_rules
    benchmark.extra_info["monadic_predicates"] = monadic_preds
    benchmark.extra_info["factor"] = monadic_preds // succinct_rules
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert monadic_preds > 100 * succinct_rules


def test_primality_succinctness_factor(benchmark):
    inst = table1_instance(7)
    nice = prepare_decision_decomposition(
        inst.schema, "p0", inst.decomposition
    )
    succinct_rules = len(primality_program("p0").rules)
    monadic_preds = primality_monadic_predicate_count(inst.schema, nice)
    benchmark.extra_info["succinct_rules"] = succinct_rules
    benchmark.extra_info["monadic_predicates_bound"] = monadic_preds
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert monadic_preds > 1000 * succinct_rules


def test_succinct_program_is_data_independent(benchmark):
    """The succinct program never changes; only the data grows.  (The
    expanded monadic program grows with every node -- that growth is the
    materialization measured in bench_grounding.)"""
    sizes = []
    for gadgets in (2, 8):
        sizes.append(len(primality_program("p0").rules))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert sizes[0] == sizes[1] == 14
