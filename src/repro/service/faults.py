"""Deterministic fault injection for :mod:`repro.service`.

The service's fault-tolerance claims (crash recovery, retry caps,
poison quarantine, deadline enforcement) are only testable if failures
can be *provoked on demand, deterministically*.  This module is the
harness: a :class:`FaultPlan` -- built from a spec string, either
passed to :class:`~repro.service.SolverService` directly or picked up
from the ``REPRO_SERVICE_FAULTS`` environment variable -- arms faults
at named sites inside the service, and the service consults
:meth:`FaultPlan.trigger` at each site.

Spec grammar (``;``-separated specs, whitespace ignored)::

    ACTION@SITE[:DELAYms][*TIMES][+SKIP]

* ``ACTION`` -- one of ``crash`` (worker calls ``os._exit``), ``slow``
  (sleep ``DELAY`` before proceeding), ``drop`` (worker computes the
  shard but never sends the result), ``stall`` (parent-side thread
  sleeps ``DELAY`` at the site);
* ``SITE`` -- a named hook point (see :data:`SITES`): ``worker.solve``
  and ``worker.result`` fire inside worker processes,
  ``scheduler.dispatch`` and ``collector.result`` inside the parent's
  service threads;
* ``:DELAYms`` -- the sleep for ``slow``/``stall`` (required for
  those, forbidden for ``crash``/``drop``);
* ``*TIMES`` -- how many arrivals trigger the fault (default 1;
  ``*inf`` = every arrival);
* ``+SKIP`` -- how many arrivals pass through untouched first
  (default 0).

Example: ``crash@worker.solve+1; slow@worker.solve:50ms*3`` crashes
the worker on its second solve, and makes three solves 50ms slower.

Determinism: each spec keeps an arrival counter per *process* --
arrival ``SKIP+1`` through ``SKIP+TIMES`` trigger, all others pass.
Worker-side counters therefore reset when a crashed worker is
respawned (the replacement's first solve is arrival 1 again), which is
exactly what a "this worker crashes once" scenario needs.  Counters
are lock-protected, so concurrent service threads see a consistent
sequence.

The plan crosses the worker ``fork``/``spawn`` boundary as its spec
*text* (re-parsed in the worker), so plans never need to pickle
counter state.
"""

from __future__ import annotations

import os
import re
import threading
import time
from dataclasses import dataclass

__all__ = ["FAULTS_ENV", "FaultPlan", "FaultSpec", "SITES"]

#: environment variable consulted by :meth:`FaultPlan.from_env`
FAULTS_ENV = "REPRO_SERVICE_FAULTS"

#: the named hook points the service exposes
SITES = (
    "worker.solve",
    "worker.result",
    "scheduler.dispatch",
    "collector.result",
)

#: which actions make sense where: a ``crash`` in a parent-side thread
#: would kill the service itself, a ``drop`` only means something at
#: the result-send site, a ``stall`` is the parent-side slow
_ACTION_SITES = {
    "crash": ("worker.solve",),
    "slow": ("worker.solve", "worker.result"),
    "drop": ("worker.result",),
    "stall": ("scheduler.dispatch", "collector.result"),
}

_SPEC_RE = re.compile(
    r"""^
    (?P<action>[a-z]+) @ (?P<site>[a-z.]+)
    (?: : (?P<delay>\d+(?:\.\d+)?) ms)?
    (?: \* (?P<times>\d+|inf))?
    (?: \+ (?P<skip>\d+))?
    $""",
    re.VERBOSE,
)

#: sentinel for ``*inf`` (every arrival triggers)
_FOREVER = 1 << 60


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: ``action`` at ``site``, arrivals ``skip+1``
    through ``skip+times`` trigger it."""

    action: str
    site: str
    delay_ms: float = 0.0
    times: int = 1
    skip: int = 0

    def __post_init__(self):
        allowed = _ACTION_SITES.get(self.action)
        if allowed is None:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of "
                f"{sorted(_ACTION_SITES)}"
            )
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of {SITES}"
            )
        if self.site not in allowed:
            raise ValueError(
                f"action {self.action!r} cannot fire at {self.site!r}; "
                f"allowed sites: {allowed}"
            )
        needs_delay = self.action in ("slow", "stall")
        if needs_delay and self.delay_ms <= 0:
            raise ValueError(
                f"{self.action!r} needs a :DELAYms suffix, e.g. "
                f"{self.action}@{self.site}:50ms"
            )
        if not needs_delay and self.delay_ms:
            raise ValueError(f"{self.action!r} takes no :DELAYms suffix")
        if self.times < 1:
            raise ValueError(f"*TIMES must be >= 1, got {self.times}")
        if self.skip < 0:
            raise ValueError(f"+SKIP must be >= 0, got {self.skip}")

    def __str__(self) -> str:
        text = f"{self.action}@{self.site}"
        if self.delay_ms:
            delay = self.delay_ms
            text += f":{int(delay) if delay == int(delay) else delay}ms"
        if self.times != 1:
            text += f"*{'inf' if self.times >= _FOREVER else self.times}"
        if self.skip:
            text += f"+{self.skip}"
        return text

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        match = _SPEC_RE.match(text.replace(" ", ""))
        if match is None:
            raise ValueError(
                f"bad fault spec {text!r}; expected "
                "ACTION@SITE[:DELAYms][*TIMES][+SKIP]"
            )
        times = match["times"]
        return cls(
            action=match["action"],
            site=match["site"],
            delay_ms=float(match["delay"]) if match["delay"] else 0.0,
            times=(
                1
                if times is None
                else _FOREVER
                if times == "inf"
                else int(times)
            ),
            skip=int(match["skip"]) if match["skip"] else 0,
        )


class FaultPlan:
    """A set of armed :class:`FaultSpec`\\ s with per-spec arrival
    counters.  Falsy when empty, so service hook sites can guard with
    ``if self._faults:``."""

    def __init__(self, specs=()):
        self.specs = tuple(
            FaultSpec.parse(s) if isinstance(s, str) else s for s in specs
        )
        self._arrivals = [0] * len(self.specs)
        self._lock = threading.Lock()

    @classmethod
    def parse(cls, text: str | None) -> "FaultPlan":
        """Build a plan from the ``;``-separated spec grammar.
        ``None``/blank text yields an empty (inert) plan."""
        if not text or not text.strip():
            return cls()
        return cls(
            part for part in text.split(";") if part.strip()
        )

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan":
        """The plan armed by ``REPRO_SERVICE_FAULTS`` (empty if unset)."""
        environ = environ if environ is not None else os.environ
        return cls.parse(environ.get(FAULTS_ENV))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __str__(self) -> str:
        return "; ".join(str(spec) for spec in self.specs)

    def trigger(self, site: str) -> FaultSpec | None:
        """Record one arrival at ``site``; the triggered spec, if any.

        At most one spec triggers per arrival (the first armed match in
        plan order); every spec armed at the site counts the arrival,
        so ``+SKIP`` windows of co-sited specs line up on the same
        arrival sequence."""
        if not self.specs:
            return None
        hit = None
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.site != site:
                    continue
                arrival = self._arrivals[index] = self._arrivals[index] + 1
                if hit is None and spec.skip < arrival <= spec.skip + spec.times:
                    hit = spec
        return hit

    def induce(self, site: str) -> str | None:
        """Convenience hook for service code: record an arrival, serve
        any ``slow``/``stall`` sleep here, and return the action the
        caller must enact itself (``"crash"`` / ``"drop"``), else
        ``None``."""
        spec = self.trigger(site)
        if spec is None:
            return None
        if spec.action in ("slow", "stall"):
            time.sleep(spec.delay_ms / 1000.0)
            return None
        return spec.action
