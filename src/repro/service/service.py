"""The persistent solver service and its coalescing batch scheduler.

``CourcelleSolver.solve_many`` shards a batch across a one-shot
``multiprocessing.Pool``: correct, but every call re-pickles the solver
and cold-starts a pool, so repeated small batches pay startup each time
-- the opposite of what Theorem 4.5's compile-once amortization
promises.  :class:`SolverService` keeps the pool alive:

* **Long-lived workers.**  Each worker process rebuilds a solver
  exactly once per registered program from the same pickle handoff the
  one-shot pool uses (``CourcelleSolver.__getstate__``: compiled
  program + prepared grounding plans + demand-relevance set), then
  holds it warm -- ``ProgramCache`` populated, plans resident.
  Compilation and planning never happen on the request path.
* **Coalescing batch scheduler.**  ``submit()`` / ``submit_many()``
  enqueue individual requests and return
  :class:`concurrent.futures.Future`\\ s.  While all workers are busy,
  requests accumulate; whenever workers go idle the scheduler groups
  the queue *per compiled program* (:func:`coalesce`), cuts each group
  into shards sized to the idle capacity (capped at ``max_shard``), and
  dispatches.  Results resolve one future per request, positionally, so
  out-of-order shard completion can never misassign or reorder answers.
* **Backpressure.**  The request queue is bounded (``max_pending``);
  ``submit(block=True)`` waits for space, ``block=False`` raises
  :class:`ServiceSaturated` so callers can shed load.
* **Graceful shutdown.**  ``shutdown(drain=True)`` stops intake,
  drains the queue and all in-flight shards, then stops the workers;
  ``drain=False`` cancels queued requests and abandons in-flight work.
  Workers that ignore the stop message are escalated ``terminate()``
  -> ``kill()`` after ``shutdown_grace`` so a hung solve can never
  leak a process silently.
* **Fault tolerance.**  The paper's linear-time guarantee holds *for
  structures of bounded treewidth*; a service facing arbitrary inputs
  must survive requests that blow time, memory, or the worker itself:

  - a worker that dies mid-shard (OOM-killed, segfaulted C extension,
    ``os._exit``) is detected by the result collector, replaced, and
    its lost shards are **retried with exponential backoff** -- at most
    ``max_retries`` attempts per request, multi-request shards split
    into singletons on retry so one bad structure cannot re-kill its
    shard-mates' attempts;
  - a request that crashed its worker ``max_retries`` times fails with
    :class:`PoisonInput` (structure fingerprint + crash history
    attached) and is **fingerprint-quarantined**: repeat submissions
    fail fast without touching a worker, until
    :meth:`SolverService.evict_quarantine`;
  - per-request ``timeout=``/``deadline=`` fail expired requests with
    :class:`DeadlineExceeded` at (or instead of) dispatch, and a worker
    whose whole in-flight shard is past its deadlines is killed and
    counted (``workers_killed_overdue``) -- the backstop that also
    recovers hung solves and dropped results;
  - a service-wide :class:`repro.datalog.SolveBudget` makes the
    quasi-guarded fixpoint loops raise
    :class:`repro.datalog.BudgetExceeded` *cooperatively* (the worker
    survives, its warm cache intact); ``fallback_backend`` optionally
    reroutes over-budget solves to a sibling pipeline (e.g. streamed
    -> eager) instead of failing them;
  - all of it is testable on demand through
    :mod:`repro.service.faults` -- deterministic crash / slow / drop /
    stall injection at named sites.

  The long-form contract lives in the package README's "Failure
  semantics" section.

Thread-safety note: the scheduler and collector are threads inside the
submitting process, which is exactly what turned the previously latent
single-threaded assumptions of ``ProgramCache`` into real races -- see
the PR 6 lock in :class:`repro.datalog.backends.ProgramCache`.  Future
callbacks added to returned futures run on the collector thread; they
must not block.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import threading
import time
import traceback
from multiprocessing.connection import wait as _pipe_wait
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

from ..admission import POLICIES
from ..core.solver import _QG_MODES, default_worker_count
from ..datalog.backends import available_backends, program_fingerprint
from ..datalog.budget import BudgetExceeded, SolveBudget
from ..errors import AdmissionRejected
from ..structures.structure import structure_fingerprint
from .faults import FaultPlan

__all__ = [
    "DeadlineExceeded",
    "PoisonInput",
    "ProgramHandle",
    "QuarantineRecord",
    "ServiceClosed",
    "ServiceSaturated",
    "ServiceStats",
    "ShardFailed",
    "SolverService",
    "coalesce",
    "structure_fingerprint",
]

#: exit code of a fault-injected worker crash (``crash@worker.solve``)
FAULT_CRASH_EXIT = 43


class ServiceClosed(RuntimeError):
    """Raised by ``submit`` after ``shutdown()`` has been called."""


class ServiceSaturated(RuntimeError):
    """Raised by ``submit(block=False)`` when the queue is at
    ``max_pending`` -- the backpressure signal."""


class ShardFailed(RuntimeError):
    """A worker raised while solving a request; carries the worker-side
    traceback plus the structure fingerprint and program key, so a
    failed request is diagnosable from the caller side alone."""

    def __init__(
        self,
        message: str,
        *,
        fingerprint: str | None = None,
        program_key: str | None = None,
    ):
        super().__init__(message)
        self.fingerprint = fingerprint
        self.program_key = program_key


class DeadlineExceeded(RuntimeError):
    """A request's deadline passed before a worker could finish it.

    Raised on the request's future -- at submit time (deadline already
    past), at dispatch time (expired while queued), or by the
    collector's expiry tick (expired while waiting / in flight)."""


class PoisonInput(RuntimeError):
    """A request's structure crashed its worker ``max_retries`` times.

    ``fingerprint`` identifies the structure
    (:func:`structure_fingerprint`), ``program_key`` the registered
    program it was solved under, ``crashes`` how many workers it took
    down, and ``history`` the crash log.  The fingerprint is
    quarantined: repeat submissions fail fast with this same exception
    until :meth:`SolverService.evict_quarantine`."""

    def __init__(
        self,
        message: str,
        *,
        fingerprint: str,
        program_key: str | None = None,
        crashes: int = 0,
        history: tuple[str, ...] = (),
    ):
        super().__init__(message)
        self.fingerprint = fingerprint
        self.program_key = program_key
        self.crashes = crashes
        self.history = history


@dataclass
class ServiceStats:
    """Counters over the service's lifetime (read-only for callers)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    shards_dispatched: int = 0
    #: shards lost to a worker crash and dispatched again
    shards_resubmitted: int = 0
    worker_restarts: int = 0
    peak_queue_depth: int = 0
    #: requests failed with :class:`DeadlineExceeded`
    deadline_expired: int = 0
    #: requests re-attempted after their worker crashed
    retries: int = 0
    #: requests failed with :class:`PoisonInput` (first time each)
    poisoned: int = 0
    #: submissions fast-failed because their fingerprint is quarantined
    quarantine_rejections: int = 0
    #: current quarantine population
    quarantine_size: int = 0
    #: requests failed with :class:`repro.datalog.BudgetExceeded`
    budget_exceeded: int = 0
    #: over-budget requests answered by the fallback backend
    fallback_solves: int = 0
    #: admission verdicts (requests served through the admission
    #: ladder: clean, repaired/re-decomposed, served degraded)
    admitted: int = 0
    repaired: int = 0
    degraded: int = 0
    #: requests failed with :class:`repro.errors.AdmissionRejected`
    admission_rejected: int = 0
    #: terminate()/kill() escalations during shutdown
    shutdown_escalations: int = 0
    #: workers killed because their whole shard was past its deadlines
    workers_killed_overdue: int = 0
    #: crash-to-result latency of each resubmitted shard, milliseconds
    recovery_ms: list = field(default_factory=list)


@dataclass
class QuarantineRecord:
    """One quarantined poison input, as reported by
    :meth:`SolverService.quarantined`."""

    fingerprint: str
    program_key: str
    crashes: int
    history: tuple[str, ...]
    #: submissions fast-failed against this record since quarantine
    rejections: int = 0
    #: why the fingerprint is quarantined: ``"crash"`` (it killed
    #: workers) or ``"admission"`` (it was rejected by the ladder)
    reason: str = "crash"
    #: for admission quarantines: the original
    #: :class:`repro.errors.AdmissionRejected` (report attached),
    #: re-raised verbatim on repeat submissions
    error: BaseException | None = None


class _Request:
    """One queued solve: a structure (plus optional decomposition), the
    future its answer resolves, and its fault-tolerance state."""

    __slots__ = (
        "structure",
        "td",
        "future",
        "deadline",
        "admission",
        "crashes",
        "history",
        "_fp",
    )

    def __init__(
        self,
        structure,
        td,
        future: Future,
        deadline: float | None,
        admission: str | None = None,
    ):
        self.structure = structure
        self.td = td
        self.future = future
        #: absolute ``time.monotonic()`` deadline, or None
        self.deadline = deadline
        #: resolved admission policy (request override or service
        #: default), or None for the legacy trusting path
        self.admission = admission
        #: how many workers died while this request was in flight
        self.crashes = 0
        #: human-readable crash log (becomes ``PoisonInput.history``)
        self.history: list[str] = []
        self._fp: str | None = None

    @property
    def fingerprint(self) -> str:
        fp = self._fp
        if fp is None:
            fp = self._fp = structure_fingerprint(self.structure)
        return fp


class _Shard:
    """A dispatchable unit: consecutive requests of one program.

    ``dispatched`` flips on first hand-off to a worker; a crash
    resubmission re-sends a shard object (same futures, already in the
    running state) to a fresh worker, no earlier than ``not_before``
    (the retry backoff) and with ``resubmitted_at`` stamped so the
    collector can measure crash-to-result recovery latency.
    """

    __slots__ = (
        "shard_id",
        "key",
        "requests",
        "dispatched",
        "worker",
        "not_before",
        "resubmitted_at",
    )

    def __init__(self, shard_id: int, key: str, requests: list[_Request]):
        self.shard_id = shard_id
        self.key = key
        self.requests = requests
        self.dispatched = False
        self.worker: "_Worker | None" = None
        self.not_before = 0.0
        self.resubmitted_at: float | None = None


class _Worker:
    """A worker process plus its task queue, its private result pipe,
    and parent-side book-keeping (which programs it has loaded, which
    shards it is running).

    Results come back over a **per-worker pipe**, not a shared queue:
    a shared ``multiprocessing.Queue`` serializes every ``put`` through
    one cross-process semaphore, and a worker dying mid-``put`` (a real
    crash can land anywhere) leaves that semaphore acquired forever --
    wedging every *surviving* worker's results.  With one pipe per
    worker there is no cross-process lock at all; a crash can only
    corrupt the dead worker's own pipe, which its replacement does not
    share."""

    __slots__ = (
        "process",
        "tasks",
        "results",
        "loaded",
        "inflight",
        "overdue_killed",
        "eof",
    )

    def __init__(self, process, tasks, results):
        self.process = process
        self.tasks = tasks
        #: parent-side read end of the worker's result pipe
        self.results = results
        self.loaded: set[str] = set()
        self.inflight: dict[int, _Shard] = {}
        self.overdue_killed = False
        #: the pipe reached EOF (worker exited); stop select()-ing it
        self.eof = False


def _solve_request(solver, structure, td, budget, fallback, key, fallbacks, admission=None):
    """Solve one request inside a worker; an outcome tuple.

    ``("ok", value)`` / ``("fb", value)`` (answered by the fallback
    backend) / ``("adm", verdict, value)`` (served through the
    admission ladder) / ``("rej", exc)`` (rejected by it) /
    ``("budget", message, dimension, limit, consumed)`` /
    ``("err", brief, traceback)``.  Per-request, so one failing
    structure cannot take down its shard-mates' answers -- and with
    admission on, a malformed request resolves as a typed rejection
    instead of whatever the trusting pipeline would have thrown."""
    solve_one = solver.decide if solver.compiled.is_sentence else solver.query
    try:
        try:
            if admission is not None:
                answer, report = solver.solve_admitted(
                    structure, td, policy=admission, budget=budget
                )
                return ("adm", report.verdict, answer)
            return ("ok", solve_one(structure, td, budget=budget))
        except AdmissionRejected as exc:
            return ("rej", exc)
        except BudgetExceeded as exc:
            if fallback is None:
                return ("budget", str(exc), exc.dimension, exc.limit, exc.consumed)
            sibling = fallbacks.get(key)
            if sibling is None:
                sibling = fallbacks[key] = solver.with_backend(fallback)
            # the fallback runs unbudgeted: it is the degradation path,
            # and the deadline/overdue-kill backstop still applies
            if admission is not None:
                try:
                    answer, _report = sibling.solve_admitted(
                        structure, td, policy=admission
                    )
                    return ("fb", answer)
                except AdmissionRejected as rej:
                    return ("rej", rej)
            fb_solve = (
                sibling.decide if sibling.compiled.is_sentence else sibling.query
            )
            return ("fb", fb_solve(structure, td))
    except BaseException as exc:
        return ("err", f"{type(exc).__name__}: {exc}", traceback.format_exc())


def _service_worker_main(
    tasks, results, faults_text=None, budget=None, fallback=None
) -> None:
    """Worker process loop.

    Solvers arrive once per program as a pickled payload (``"load"``)
    and stay resident -- the per-worker ``default_cache()`` fills on the
    first solve and every later shard of the same program runs warm.
    Shards (``"solve"``) evaluate request-by-request and send one
    ``("done", shard_id, outcomes)`` (or ``("error", ...)`` for
    shard-level failures) per shard over this worker's private result
    pipe.

    ``faults_text`` re-parses into this process's own
    :class:`~repro.service.faults.FaultPlan` (fresh counters per
    worker, so "this worker crashes once" survives respawn);
    ``budget`` / ``fallback`` are the service-wide solve budget and
    degradation backend.
    """
    faults = FaultPlan.parse(faults_text)
    solvers = {}
    fallbacks = {}
    while True:
        try:
            message = tasks.get()
        except (EOFError, OSError):  # parent went away
            return
        kind = message[0]
        if kind == "stop":
            return
        if kind == "load":
            _, key, payload = message
            if key not in solvers:
                solvers[key] = pickle.loads(payload)
            continue
        # ("solve", shard_id, key, [(structure, td, admission), ...])
        _, shard_id, key, items = message
        try:
            solver = solvers[key]
            outcomes = []
            for structure, td, admission in items:
                if faults and faults.induce("worker.solve") == "crash":
                    os._exit(FAULT_CRASH_EXIT)
                outcomes.append(
                    _solve_request(
                        solver,
                        structure,
                        td,
                        budget,
                        fallback,
                        key,
                        fallbacks,
                        admission,
                    )
                )
        except BaseException as exc:  # report, don't kill the worker
            reply = (
                "error",
                shard_id,
                f"{type(exc).__name__}: {exc}",
                traceback.format_exc(),
            )
        else:
            if faults and faults.induce("worker.result") == "drop":
                continue  # injected result loss: deadline backstop recovers
            reply = ("done", shard_id, outcomes)
        try:
            results.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            return


def coalesce(
    pending, idle_workers: int, max_shard: int
) -> list[tuple[str, list]]:
    """Group queued ``(program_key, request)`` pairs per compiled
    program (preserving arrival order within each program) and cut each
    group into shards sized for the idle capacity.

    The shard size is ``ceil(group / idle_workers)`` capped at
    ``max_shard`` and floored at 1: a burst of one program spreads
    across every idle worker instead of serializing on one, while a
    trickle stays one small shard.  Pure function -- unit-tested
    directly, used under the service lock.
    """
    if idle_workers < 1:
        raise ValueError("coalesce needs at least one idle worker")
    groups: dict[str, list] = {}
    for key, request in pending:
        groups.setdefault(key, []).append(request)
    shards: list[tuple[str, list]] = []
    for key, requests in groups.items():
        per_shard = max(
            1, min(max_shard, -(-len(requests) // idle_workers))
        )
        for i in range(0, len(requests), per_shard):
            shards.append((key, requests[i : i + per_shard]))
    return shards


class ProgramHandle:
    """One registered compiled program on a :class:`SolverService`.

    Obtained from :meth:`SolverService.register`; all submissions go
    through a handle so the service knows which warm solver a request
    belongs to (and which requests can coalesce into one shard).
    """

    __slots__ = ("_service", "key")

    def __init__(self, service: "SolverService", key: str):
        self._service = service
        self.key = key

    def submit(
        self,
        structure,
        td=None,
        *,
        block: bool = True,
        timeout: float | None = None,
        deadline: float | None = None,
        admission: str | None = None,
    ) -> Future:
        """Enqueue one solve; returns the future of its answer.

        ``timeout`` (seconds from now) or ``deadline`` (absolute
        ``time.monotonic()`` value) bound how long the request may wait
        + run: an expired request fails with :class:`DeadlineExceeded`
        instead of occupying a worker.  A quarantined structure fails
        fast with :class:`PoisonInput` (or, for admission-quarantined
        fingerprints, the stored
        :class:`repro.errors.AdmissionRejected`) -- in both cases the
        returned future is already resolved.

        ``admission`` routes this request through the admission ladder
        under that policy (overriding the service-wide default);
        rejected requests fail their future with ``AdmissionRejected``
        and quarantine their fingerprint."""
        if timeout is not None:
            if deadline is not None:
                raise ValueError("pass timeout= or deadline=, not both")
            deadline = time.monotonic() + timeout
        return self._service._submit(
            self.key,
            structure,
            td,
            block=block,
            deadline=deadline,
            admission=admission,
        )

    def submit_many(
        self,
        structures,
        tds=None,
        *,
        block: bool = True,
        timeout: float | None = None,
        deadline: float | None = None,
        admission: str | None = None,
    ) -> list[Future]:
        """Enqueue a batch; returns one future per structure, in input
        order.  ``timeout`` is converted to one shared deadline for the
        whole batch (not per request)."""
        structures = list(structures)
        if tds is None:
            tds = [None] * len(structures)
        else:
            tds = list(tds)
            if len(tds) != len(structures):
                raise ValueError(
                    f"{len(structures)} structures but {len(tds)} "
                    "decompositions"
                )
        if timeout is not None:
            if deadline is not None:
                raise ValueError("pass timeout= or deadline=, not both")
            deadline = time.monotonic() + timeout
        return [
            self.submit(
                s, td, block=block, deadline=deadline, admission=admission
            )
            for s, td in zip(structures, tds)
        ]

    def solve_many(
        self, structures, tds=None, timeout=None, admission=None
    ) -> list:
        """Submit a batch and wait: the blocking convenience mirror of
        ``CourcelleSolver.solve_many`` (same result list, same input
        order), served by the warm pool.

        ``timeout`` bounds the **whole batch**: one shared monotonic
        deadline is computed up front, threaded to every request, and
        each wait gets only the remainder -- the total wait is at most
        ``timeout``, never N x timeout.

        With admission active (per-call ``admission=`` or the
        service-wide default), rejected items resolve **per slot**: the
        result list holds each rejected request's
        :class:`repro.errors.AdmissionRejected` in place of an answer
        instead of the whole batch raising on the first bad input."""
        deadline = None if timeout is None else time.monotonic() + timeout
        effective = (
            admission if admission is not None else self._service.admission
        )
        futures = self.submit_many(
            structures, tds, deadline=deadline, admission=admission
        )
        results = []
        for future in futures:
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            try:
                results.append(future.result(remaining))
            except AdmissionRejected as exc:
                if effective is None:
                    raise
                results.append(exc)
        return results


class SolverService:
    """A persistent pool of solver workers behind a batch scheduler.

    ``workers`` defaults to :func:`default_worker_count`.
    ``max_pending`` bounds the request queue (backpressure);
    ``max_shard`` caps how many requests one dispatch bundles.
    ``context`` picks the multiprocessing start method (name or
    context object); the platform default is used otherwise.

    Fault tolerance knobs:

    * ``max_retries`` -- attempts per request before it is declared
      :class:`PoisonInput` and quarantined (so a request's shard may
      kill a worker at most ``max_retries`` times);
    * ``retry_backoff`` -- base delay before a crashed shard is
      re-dispatched, doubled per crash of the request
      (``backoff * 2**(crashes-1)``);
    * ``budget`` -- a :class:`repro.datalog.SolveBudget` applied to
      every solve (cooperative: over-budget solves raise
      :class:`repro.datalog.BudgetExceeded`, the worker survives);
    * ``fallback_backend`` -- a ``CourcelleSolver`` backend name that
      answers over-budget solves instead of failing them (e.g.
      ``"quasi-guarded-eager"``), unbudgeted;
    * ``faults`` -- a :class:`~repro.service.faults.FaultPlan` (or its
      spec string) arming deterministic fault injection; defaults to
      ``FaultPlan.from_env()`` (the ``REPRO_SERVICE_FAULTS``
      variable), empty in production;
    * ``shutdown_grace`` -- seconds each shutdown join waits before
      escalating terminate() -> kill();
    * ``admission`` -- an :data:`repro.admission.POLICIES` name
      (``"strict"`` / ``"repair"`` / ``"degrade"``) routing every
      request through the untrusted-input admission ladder by default
      (per-request ``admission=`` overrides); rejected fingerprints
      are quarantined like poison inputs, and their stored
      :class:`repro.errors.AdmissionRejected` fast-fails repeat
      submissions.

    Use as a context manager for a drained shutdown::

        with SolverService(workers=4) as service:
            handle = service.register(solver)
            futures = handle.submit_many(structures)
            answers = [f.result() for f in futures]
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        max_pending: int = 1024,
        max_shard: int = 64,
        poll_interval: float = 0.05,
        context=None,
        max_retries: int = 3,
        retry_backoff: float = 0.05,
        budget: SolveBudget | None = None,
        fallback_backend: str | None = None,
        faults: "FaultPlan | str | None" = None,
        shutdown_grace: float = 5.0,
        admission: str | None = None,
    ):
        if workers is None:
            workers = default_worker_count()
        if workers < 1:
            raise ValueError("a solver service needs at least one worker")
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        if max_shard < 1:
            raise ValueError("max_shard must be positive")
        if max_retries < 1:
            raise ValueError("max_retries must be positive")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if budget is not None and not isinstance(budget, SolveBudget):
            raise TypeError(
                f"budget must be a SolveBudget, got {type(budget).__name__}"
            )
        if fallback_backend is not None:
            known = set(_QG_MODES) | set(available_backends())
            if fallback_backend not in known:
                raise ValueError(
                    f"unknown fallback backend {fallback_backend!r}; "
                    f"expected one of {sorted(known)}"
                )
        if admission is not None and admission not in POLICIES:
            raise ValueError(
                f"unknown admission policy {admission!r}; "
                f"expected one of {POLICIES}"
            )
        #: service-wide admission policy default (per-request
        #: ``admission=`` overrides); None keeps the trusting paths
        self.admission = admission
        self.max_pending = max_pending
        self.max_shard = max_shard
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.shutdown_grace = shutdown_grace
        self.budget = (
            None if budget is not None and budget.unlimited else budget
        )
        self.fallback_backend = fallback_backend
        if faults is None:
            faults = FaultPlan.from_env()
        elif isinstance(faults, str):
            faults = FaultPlan.parse(faults)
        self._faults = faults
        self._poll = poll_interval
        if context is None:
            self._ctx = multiprocessing.get_context()
        elif isinstance(context, str):
            self._ctx = multiprocessing.get_context(context)
        else:
            self._ctx = context
        self.stats = ServiceStats()
        self._lock = threading.Lock()
        #: scheduler wake-ups and drain waiters
        self._work = threading.Condition(self._lock)
        #: backpressure waiters (same lock, separate wait set)
        self._space = threading.Condition(self._lock)
        self._pending: deque[tuple[str, _Request]] = deque()
        self._shards: deque[_Shard] = deque()  # shaped, awaiting a worker
        self._inflight: dict[int, _Shard] = {}
        self._queued = 0  # requests in _pending + undispatched _shards
        self._payloads: dict[str, bytes] = {}
        self._handles: dict[str, ProgramHandle] = {}
        self._quarantine: dict[str, QuarantineRecord] = {}
        self._shard_seq = itertools.count(1)
        self._worker_seq = itertools.count(1)
        self._closed = False
        self._stopped = False
        self._collector_stop = threading.Event()
        self._workers = [self._spawn_worker() for _ in range(workers)]
        self._scheduler = threading.Thread(
            target=self._scheduler_loop,
            name="solver-service-scheduler",
            daemon=True,
        )
        self._collector = threading.Thread(
            target=self._collector_loop,
            name="solver-service-collector",
            daemon=True,
        )
        self._scheduler.start()
        self._collector.start()

    # -- lifecycle -----------------------------------------------------

    @property
    def workers(self) -> int:
        return len(self._workers)

    @property
    def queue_depth(self) -> int:
        """Requests accepted but not yet handed to a worker."""
        with self._lock:
            return self._queued

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    def register(self, solver) -> ProgramHandle:
        """Register a ``CourcelleSolver``; idempotent per (backend,
        compiled program).

        The solver is pickled **once** here -- the same
        ``__getstate__`` handoff the one-shot pool uses (compiled
        program + prepared plans + relevance set) -- and shipped lazily
        to each worker the first time a shard of this program reaches
        it.  Registering an equal solver again (same program
        fingerprint, backend, width) returns the existing handle
        without re-pickling.
        """
        compiled = solver.compiled
        key = ":".join(
            (
                solver.backend_name,
                str(compiled.width),
                "sentence" if compiled.is_sentence else "unary",
                program_fingerprint(compiled.program),
            )
        )
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is shut down")
            handle = self._handles.get(key)
        if handle is not None:
            return handle
        payload = pickle.dumps(solver)  # outside the lock: can be large
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is shut down")
            handle = self._handles.get(key)
            if handle is None:
                handle = ProgramHandle(self, key)
                self._handles[key] = handle
                self._payloads[key] = payload
        return handle

    def solve_many(
        self, solver, structures, tds=None, timeout=None, admission=None
    ) -> list:
        """``CourcelleSolver.solve_many(..., service=self)`` lands
        here: register (cached) and solve the batch on the warm pool."""
        return self.register(solver).solve_many(
            structures, tds, timeout, admission=admission
        )

    # -- quarantine ----------------------------------------------------

    def quarantined(self) -> tuple[QuarantineRecord, ...]:
        """The current quarantine population (snapshot)."""
        with self._lock:
            return tuple(self._quarantine.values())

    def evict_quarantine(self, fingerprint: str | None = None) -> int:
        """Evict one fingerprint (or all of them); how many were
        evicted.  Evicted structures may be submitted again -- they get
        a fresh ``max_retries`` allowance."""
        with self._lock:
            if fingerprint is None:
                count = len(self._quarantine)
                self._quarantine.clear()
            else:
                count = int(self._quarantine.pop(fingerprint, None) is not None)
            self.stats.quarantine_size = len(self._quarantine)
        return count

    def shutdown(self, drain: bool = True, timeout: float | None = None):
        """Stop the service.

        ``drain=True`` (the default) stops intake, waits until every
        queued request and in-flight shard has resolved, then stops the
        workers -- no accepted request is ever dropped (crash recovery,
        retries and quarantine keep running during the drain, so a
        worker dying mid-drain cannot hang it).  ``drain=False``
        cancels queued requests, abandons in-flight shards (their
        futures get :class:`ServiceClosed`), and terminates the workers
        immediately.  Idempotent; ``timeout`` bounds the drain wait.
        Workers that outlive ``shutdown_grace`` per join are escalated
        terminate() -> kill() and counted in
        ``stats.shutdown_escalations``.
        """
        abandoned: list[Future] = []
        with self._work:
            if self._stopped:
                return
            self._closed = True
            self._space.notify_all()
            if not drain:
                for _key, request in self._pending:
                    request.future.cancel()
                self._pending.clear()
                for shard in self._shards:
                    for request in shard.requests:
                        if not request.future.cancel():
                            abandoned.append(request.future)
                self._shards.clear()
                self._queued = 0
                for shard in self._inflight.values():
                    abandoned.extend(
                        request.future for request in shard.requests
                    )
                self._inflight.clear()
                for worker in self._workers:
                    worker.inflight.clear()
            else:
                deadline = (
                    None
                    if timeout is None
                    else time.monotonic() + timeout
                )
                while self._queued or self._inflight or self._shards:
                    self._work.wait(self._poll)
                    if deadline is not None and time.monotonic() >= deadline:
                        break
                if self._queued or self._inflight or self._shards:
                    # drain timed out: abandon what's left so no future
                    # hangs forever after the workers stop
                    for _key, request in self._pending:
                        if not request.future.cancel():
                            abandoned.append(request.future)
                    self._pending.clear()
                    for shard in self._shards:
                        for request in shard.requests:
                            if not request.future.cancel():
                                abandoned.append(request.future)
                    self._shards.clear()
                    self._queued = 0
                    for shard in self._inflight.values():
                        abandoned.extend(
                            request.future for request in shard.requests
                        )
                    self._inflight.clear()
            self._stopped = True
            self._work.notify_all()
        # past this point no thread dispatches or resolves anything new
        for future in abandoned:
            if not future.done():
                future.set_exception(
                    ServiceClosed("service shut down without draining")
                )
        for worker in self._workers:
            if worker.process.is_alive():
                if drain:
                    try:
                        worker.tasks.put(("stop",))
                    except (OSError, ValueError):  # pragma: no cover
                        pass
                else:
                    worker.process.terminate()
        self._scheduler.join(timeout=self.shutdown_grace)
        for worker in self._workers:
            worker.process.join(timeout=self.shutdown_grace)
            if worker.process.is_alive():
                # the stop message was ignored (hung or very slow
                # solve): escalate rather than leak the process
                worker.process.terminate()
                self.stats.shutdown_escalations += 1
                worker.process.join(timeout=self.shutdown_grace)
                if worker.process.is_alive():  # pragma: no cover - SIGTERM ignored
                    worker.process.kill()
                    self.stats.shutdown_escalations += 1
                    worker.process.join(timeout=self.shutdown_grace)
        self._collector_stop.set()
        self._collector.join(timeout=5)
        for worker in self._workers:
            try:
                worker.results.close()
            except OSError:  # pragma: no cover
                pass

    close = shutdown

    # -- submission ----------------------------------------------------

    def _submit(
        self,
        key,
        structure,
        td,
        *,
        block: bool = True,
        deadline=None,
        admission=None,
    ) -> Future:
        future: Future = Future()
        request = _Request(
            structure,
            td,
            future,
            deadline,
            admission if admission is not None else self.admission,
        )
        reject: BaseException | None = None
        with self._space:
            if self._closed:
                raise ServiceClosed("service is shut down")
            if key not in self._payloads:
                raise KeyError(f"program {key!r} is not registered")
            if self._quarantine:
                record = self._quarantine.get(request.fingerprint)
                if record is not None:
                    record.rejections += 1
                    self.stats.quarantine_rejections += 1
                    if record.reason == "admission" and record.error is not None:
                        # fail fast with the original typed rejection
                        # (report attached), not a crash-flavoured one
                        reject = record.error
                    else:
                        reject = PoisonInput(
                            f"structure {record.fingerprint} is quarantined: it "
                            f"crashed its worker {record.crashes} time(s) "
                            f"(program {record.program_key}); "
                            f"evict_quarantine() to retry it",
                            fingerprint=record.fingerprint,
                            program_key=record.program_key,
                            crashes=record.crashes,
                            history=record.history,
                        )
            if reject is None and deadline is not None:
                late = time.monotonic() - deadline
                if late >= 0:
                    self.stats.deadline_expired += 1
                    reject = DeadlineExceeded(
                        f"request deadline was already {late:.3f}s past "
                        "at submit"
                    )
            if reject is None:
                while self._queued >= self.max_pending:
                    if not block:
                        raise ServiceSaturated(
                            f"request queue is full "
                            f"({self._queued}/{self.max_pending})"
                        )
                    self._space.wait(self._poll)
                    if self._closed:
                        raise ServiceClosed("service shut down while waiting")
                self._pending.append((key, request))
                self._queued += 1
                self.stats.submitted += 1
                if self._queued > self.stats.peak_queue_depth:
                    self.stats.peak_queue_depth = self._queued
                self._work.notify_all()
        if reject is not None:
            # fast-fail: resolve outside the lock, before anyone else
            # can see the future
            future.set_exception(reject)
        return future

    # -- scheduler -----------------------------------------------------

    def _idle_workers_locked(self) -> list[_Worker]:
        return [
            worker
            for worker in self._workers
            if not worker.inflight and worker.process.is_alive()
        ]

    def _dispatchable_locked(self) -> bool:
        return bool(
            (self._shards or self._pending) and self._idle_workers_locked()
        )

    def _scheduler_loop(self) -> None:
        faults = self._faults
        while True:
            with self._work:
                while not self._stopped and not self._dispatchable_locked():
                    # timed wait: worker deaths / respawns don't notify
                    self._work.wait(self._poll)
                if self._stopped:
                    return
            if faults:
                faults.induce("scheduler.dispatch")  # injected stall
            expired: list[tuple[_Request, BaseException]] = []
            with self._work:
                if self._stopped:
                    return
                self._dispatch_locked(expired)
            # deadline failures resolve outside the lock (future
            # callbacks run here and may re-enter the service)
            for request, exc in expired:
                if not request.future.done():
                    request.future.set_exception(exc)

    def _dispatch_locked(self, expired) -> None:
        idle = deque(self._idle_workers_locked())
        # resubmissions and leftovers first: they are oldest.  Shards
        # still inside their retry backoff window are held back.
        if idle and self._shards:
            now = time.monotonic()
            held: list[_Shard] = []
            while idle and self._shards:
                shard = self._shards.popleft()
                if shard.not_before > now:
                    held.append(shard)
                    continue
                self._send_locked(idle.popleft(), shard, expired)
            for shard in reversed(held):
                self._shards.appendleft(shard)
        if not idle or not self._pending:
            return
        pending = list(self._pending)
        self._pending.clear()
        for key, requests in coalesce(pending, len(idle), self.max_shard):
            shard = _Shard(next(self._shard_seq), key, requests)
            if idle:
                self._send_locked(idle.popleft(), shard, expired)
            else:
                self._shards.append(shard)  # dispatched as workers free up

    def _send_locked(self, worker: _Worker, shard: _Shard, expired) -> None:
        now = time.monotonic()
        if not shard.dispatched:
            self._queued -= len(shard.requests)
            self._space.notify_all()
            # cancelled-while-queued requests drop out here; expired
            # ones fail with DeadlineExceeded instead of occupying a
            # worker; the rest transition to running (cancel() is
            # refused from now on)
            live = []
            for request in shard.requests:
                if not request.future.set_running_or_notify_cancel():
                    continue
                if request.deadline is not None and now >= request.deadline:
                    self.stats.deadline_expired += 1
                    self.stats.failed += 1
                    expired.append(
                        (
                            request,
                            DeadlineExceeded(
                                "request deadline expired "
                                f"{now - request.deadline:.3f}s before "
                                "dispatch"
                            ),
                        )
                    )
                    continue
                live.append(request)
            shard.requests = live
            shard.dispatched = True
        else:
            # a retry: futures are already running, but the wait in the
            # backoff window may have outlived some deadlines
            live = []
            for request in shard.requests:
                if request.deadline is not None and now >= request.deadline:
                    self.stats.deadline_expired += 1
                    self.stats.failed += 1
                    expired.append(
                        (
                            request,
                            DeadlineExceeded(
                                "request deadline expired "
                                f"{now - request.deadline:.3f}s before "
                                "its retry could dispatch"
                            ),
                        )
                    )
                    continue
                live.append(request)
            shard.requests = live
        if not shard.requests:
            return
        if shard.key not in worker.loaded:
            worker.tasks.put(("load", shard.key, self._payloads[shard.key]))
            worker.loaded.add(shard.key)
        shard.worker = worker
        self._inflight[shard.shard_id] = shard
        worker.inflight[shard.shard_id] = shard
        self.stats.shards_dispatched += 1
        worker.tasks.put(
            (
                "solve",
                shard.shard_id,
                shard.key,
                [
                    (request.structure, request.td, request.admission)
                    for request in shard.requests
                ],
            )
        )

    # -- result collection & crash recovery ----------------------------

    def _collect_messages(self) -> list:
        """Wait up to one poll interval on every live worker's result
        pipe and drain whatever arrived.  A pipe at EOF (its worker
        exited) is drained of any results the worker managed to flush
        before dying, then dropped from the select set -- crash
        recovery handles the rest."""
        with self._lock:
            readers = [
                (worker, worker.results)
                for worker in self._workers
                if not worker.eof
            ]
        if not readers:
            time.sleep(self._poll)
            return []
        try:
            ready = _pipe_wait([r for _w, r in readers], timeout=self._poll)
        except OSError:  # pragma: no cover - fd closed under us
            time.sleep(self._poll)
            return []
        ready = set(ready)
        messages = []
        for worker, reader in readers:
            if reader not in ready:
                continue
            try:
                while reader.poll(0):
                    messages.append(reader.recv())
            except (EOFError, OSError):
                worker.eof = True
        return messages

    def _collector_loop(self) -> None:
        faults = self._faults
        while not self._collector_stop.is_set():
            messages = self._collect_messages()
            if faults and messages:
                faults.induce("collector.result")  # injected stall
            completions: list[tuple[Future, object, BaseException | None]] = []
            with self._work:
                if self._stopped and not messages:
                    continue  # drain stragglers until told to stop
                for message in messages:
                    self._handle_message_locked(message, completions)
                if not self._stopped:
                    self._expire_locked(completions)
                    self._recover_workers_locked(completions)
                self._work.notify_all()
            # resolve outside the lock: done-callbacks run here and must
            # be free to touch the service (e.g. submit a follow-up)
            for future, value, exc in completions:
                if future.done():
                    continue  # resolved by a pre-crash duplicate result
                if exc is not None:
                    future.set_exception(exc)
                else:
                    future.set_result(value)

    def _handle_message_locked(self, message, completions) -> None:
        kind = message[0]
        shard = self._inflight.pop(message[1], None)
        if shard is None:
            # duplicate delivery: the shard was resubmitted after a
            # crash but the first worker's result surfaced anyway
            return
        if shard.worker is not None:
            shard.worker.inflight.pop(shard.shard_id, None)
        if shard.resubmitted_at is not None:
            self.stats.recovery_ms.append(
                round((time.monotonic() - shard.resubmitted_at) * 1000.0, 3)
            )
        if kind == "done":
            outcomes = message[2]
            for request, outcome in zip(shard.requests, outcomes):
                tag = outcome[0]
                if tag == "ok" or tag == "fb":
                    completions.append((request.future, outcome[1], None))
                    self.stats.completed += 1
                    if tag == "fb":
                        self.stats.fallback_solves += 1
                elif tag == "adm":
                    _, verdict, value = outcome
                    completions.append((request.future, value, None))
                    self.stats.completed += 1
                    if verdict == "repaired":
                        self.stats.repaired += 1
                    elif verdict == "degraded":
                        self.stats.degraded += 1
                    else:
                        self.stats.admitted += 1
                elif tag == "rej":
                    _, exc = outcome
                    completions.append((request.future, None, exc))
                    self.stats.admission_rejected += 1
                    self.stats.failed += 1
                    self._quarantine_rejection_locked(
                        request, shard.key, exc
                    )
                elif tag == "budget":
                    _, brief, dimension, limit, consumed = outcome
                    completions.append(
                        (
                            request.future,
                            None,
                            BudgetExceeded(
                                brief,
                                dimension=dimension,
                                limit=limit,
                                consumed=consumed,
                            ),
                        )
                    )
                    self.stats.budget_exceeded += 1
                    self.stats.failed += 1
                else:  # ("err", brief, worker_traceback)
                    _, brief, worker_tb = outcome
                    completions.append(
                        (
                            request.future,
                            None,
                            ShardFailed(
                                f"solver worker failed: {brief}\n"
                                f"(program {shard.key}; structure "
                                f"{request.fingerprint})\n"
                                f"--- worker traceback ---\n{worker_tb}",
                                fingerprint=request.fingerprint,
                                program_key=shard.key,
                            ),
                        )
                    )
                    self.stats.failed += 1
        else:  # ("error", shard_id, brief, worker_traceback) - shard-level
            _, _, brief, worker_tb = message
            for request in shard.requests:
                completions.append(
                    (
                        request.future,
                        None,
                        ShardFailed(
                            f"solver worker failed: {brief}\n"
                            f"(program {shard.key}; structure "
                            f"{request.fingerprint})\n"
                            f"--- worker traceback ---\n{worker_tb}",
                            fingerprint=request.fingerprint,
                            program_key=shard.key,
                        ),
                    )
                )
            self.stats.failed += len(shard.requests)

    def _expire_locked(self, completions) -> None:
        """The collector's deadline tick.

        Fails expired requests that are still queued (in ``_pending``
        or an undispatched/backoff shard), and kills the worker of any
        in-flight shard whose *every* request is past its deadline --
        the hard backstop behind hung solves and dropped results (the
        kill funnels into crash recovery, where the expired requests
        then fail with :class:`DeadlineExceeded`)."""
        now = time.monotonic()

        def expire(request: _Request) -> None:
            self.stats.deadline_expired += 1
            self.stats.failed += 1
            completions.append(
                (
                    request.future,
                    None,
                    DeadlineExceeded(
                        "request deadline expired "
                        f"{now - request.deadline:.3f}s ago while queued"
                    ),
                )
            )

        if self._pending and any(
            r.deadline is not None and now >= r.deadline
            for _k, r in self._pending
        ):
            kept: deque[tuple[str, _Request]] = deque()
            for key, request in self._pending:
                if request.deadline is not None and now >= request.deadline:
                    expire(request)
                    self._queued -= 1
                else:
                    kept.append((key, request))
            self._pending = kept
            self._space.notify_all()
        for shard in self._shards:
            if not shard.requests:
                continue
            live = []
            for request in shard.requests:
                if request.deadline is not None and now >= request.deadline:
                    expire(request)
                    if not shard.dispatched:
                        self._queued -= 1
                else:
                    live.append(request)
            if len(live) != len(shard.requests):
                shard.requests = live
                self._space.notify_all()
        for shard in self._inflight.values():
            if not shard.requests:
                continue
            worker = shard.worker
            if worker is None or worker.overdue_killed:
                continue
            if all(
                request.deadline is not None and now >= request.deadline
                for request in shard.requests
            ):
                if worker.process.is_alive():
                    worker.process.terminate()
                worker.overdue_killed = True
                self.stats.workers_killed_overdue += 1

    def _recover_workers_locked(self, completions) -> None:
        now = time.monotonic()
        for i, worker in enumerate(self._workers):
            if worker.process.is_alive():
                continue
            exitcode = worker.process.exitcode
            # salvage results the worker flushed before dying, so a
            # shard that actually completed is not charged as a crash
            if not worker.eof:
                try:
                    while worker.results.poll(0):
                        self._handle_message_locked(
                            worker.results.recv(), completions
                        )
                except (EOFError, OSError):
                    pass
                worker.eof = True
            try:
                worker.results.close()
            except OSError:  # pragma: no cover
                pass
            # the dead worker's remaining in-flight shards are lost;
            # retry them -- capped, backed off, split
            lost = [
                shard
                for shard_id, shard in worker.inflight.items()
                if shard_id in self._inflight
            ]
            worker.inflight.clear()
            for shard in reversed(lost):
                del self._inflight[shard.shard_id]
                shard.worker = None
                self._requeue_crashed_locked(shard, exitcode, now, completions)
            worker.process.join()  # reap
            self.stats.worker_restarts += 1
            self._workers[i] = self._spawn_worker()

    def _requeue_crashed_locked(
        self, shard: _Shard, exitcode, now: float, completions
    ) -> None:
        """Triage one crash-lost shard: expired requests fail with
        :class:`DeadlineExceeded`, requests out of retries fail with
        :class:`PoisonInput` (and are quarantined), the rest are
        re-queued -- one singleton shard each when the shard held
        several requests, so the actual poison structure cannot take
        its shard-mates down with it again."""
        survivors: list[_Request] = []
        for request in shard.requests:
            request.crashes += 1
            request.history.append(
                f"attempt {request.crashes}: worker died (exit code "
                f"{exitcode}) while solving a shard of "
                f"{len(shard.requests)} request(s)"
            )
            if request.deadline is not None and now >= request.deadline:
                self.stats.deadline_expired += 1
                self.stats.failed += 1
                completions.append(
                    (
                        request.future,
                        None,
                        DeadlineExceeded(
                            "request deadline expired "
                            f"{now - request.deadline:.3f}s ago "
                            f"(its worker died {request.crashes} time(s))"
                        ),
                    )
                )
                continue
            if request.crashes >= self.max_retries:
                completions.append(
                    (request.future, None, self._poison_locked(request, shard.key))
                )
                continue
            survivors.append(request)
        if not survivors:
            return
        self.stats.retries += len(survivors)
        if len(survivors) == 1:
            pieces = [shard]
            shard.requests = survivors
        else:
            pieces = []
            for request in survivors:
                piece = _Shard(next(self._shard_seq), shard.key, [request])
                piece.dispatched = True  # futures are already running
                pieces.append(piece)
        for piece in reversed(pieces):
            crashes = piece.requests[0].crashes
            piece.worker = None
            piece.not_before = now + self.retry_backoff * (2 ** (crashes - 1))
            piece.resubmitted_at = now
            self._shards.appendleft(piece)
            self.stats.shards_resubmitted += 1

    def _quarantine_rejection_locked(
        self, request: _Request, key: str, exc: BaseException
    ) -> None:
        """Quarantine an admission-rejected fingerprint so repeat
        submissions fail fast with the same typed rejection instead of
        re-running verification (and possibly re-decomposition) on a
        worker every time."""
        fingerprint = request.fingerprint
        if fingerprint not in self._quarantine:
            self._quarantine[fingerprint] = QuarantineRecord(
                fingerprint=fingerprint,
                program_key=key,
                crashes=request.crashes,
                history=tuple(request.history),
                reason="admission",
                error=exc,
            )
            self.stats.quarantine_size = len(self._quarantine)

    def _poison_locked(self, request: _Request, key: str) -> PoisonInput:
        fingerprint = request.fingerprint
        history = tuple(request.history)
        if fingerprint not in self._quarantine:
            self._quarantine[fingerprint] = QuarantineRecord(
                fingerprint=fingerprint,
                program_key=key,
                crashes=request.crashes,
                history=history,
            )
            self.stats.poisoned += 1
            self.stats.quarantine_size = len(self._quarantine)
        self.stats.failed += 1
        return PoisonInput(
            f"structure {fingerprint} crashed its worker "
            f"{request.crashes} time(s) and is now quarantined "
            f"(program {key})",
            fingerprint=fingerprint,
            program_key=key,
            crashes=request.crashes,
            history=history,
        )

    # -- workers -------------------------------------------------------

    def _spawn_worker(self) -> _Worker:
        tasks = self._ctx.Queue()
        # one private result pipe per worker: no cross-process lock to
        # leak when a worker dies mid-send (see _Worker's docstring)
        reader, writer = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_service_worker_main,
            args=(
                tasks,
                writer,
                str(self._faults) if self._faults else None,
                self.budget,
                self.fallback_backend,
            ),
            name=f"solver-service-worker-{next(self._worker_seq)}",
            daemon=True,
        )
        process.start()
        # drop the parent's copy of the write end so the reader sees
        # EOF as soon as the worker (its only writer) exits
        writer.close()
        return _Worker(process, tasks, reader)
