"""The persistent solver service and its coalescing batch scheduler.

``CourcelleSolver.solve_many`` shards a batch across a one-shot
``multiprocessing.Pool``: correct, but every call re-pickles the solver
and cold-starts a pool, so repeated small batches pay startup each time
-- the opposite of what Theorem 4.5's compile-once amortization
promises.  :class:`SolverService` keeps the pool alive:

* **Long-lived workers.**  Each worker process rebuilds a solver
  exactly once per registered program from the same pickle handoff the
  one-shot pool uses (``CourcelleSolver.__getstate__``: compiled
  program + prepared grounding plans + demand-relevance set), then
  holds it warm -- ``ProgramCache`` populated, plans resident.
  Compilation and planning never happen on the request path.
* **Coalescing batch scheduler.**  ``submit()`` / ``submit_many()``
  enqueue individual requests and return
  :class:`concurrent.futures.Future`\\ s.  While all workers are busy,
  requests accumulate; whenever workers go idle the scheduler groups
  the queue *per compiled program* (:func:`coalesce`), cuts each group
  into shards sized to the idle capacity (capped at ``max_shard``), and
  dispatches.  Results resolve one future per request, positionally, so
  out-of-order shard completion can never misassign or reorder answers.
* **Backpressure.**  The request queue is bounded (``max_pending``);
  ``submit(block=True)`` waits for space, ``block=False`` raises
  :class:`ServiceSaturated` so callers can shed load.
* **Graceful shutdown.**  ``shutdown(drain=True)`` stops intake,
  drains the queue and all in-flight shards, then stops the workers;
  ``drain=False`` cancels queued requests and abandons in-flight work.
* **Crash recovery.**  A worker that dies mid-shard (OOM-killed,
  segfaulted C extension, ``os._exit``) is detected by the result
  collector, replaced with a fresh process, and its lost shards are
  resubmitted -- the futures of a crashed shard still resolve.

Thread-safety note: the scheduler and collector are threads inside the
submitting process, which is exactly what turned the previously latent
single-threaded assumptions of ``ProgramCache`` into real races -- see
the PR 6 lock in :class:`repro.datalog.backends.ProgramCache`.  Future
callbacks added to returned futures run on the collector thread; they
must not block.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import queue as queue_module
import threading
import time
import traceback
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass

from ..core.solver import default_worker_count
from ..datalog.backends import program_fingerprint

__all__ = [
    "ProgramHandle",
    "ServiceClosed",
    "ServiceSaturated",
    "ServiceStats",
    "ShardFailed",
    "SolverService",
    "coalesce",
]


class ServiceClosed(RuntimeError):
    """Raised by ``submit`` after ``shutdown()`` has been called."""


class ServiceSaturated(RuntimeError):
    """Raised by ``submit(block=False)`` when the queue is at
    ``max_pending`` -- the backpressure signal."""


class ShardFailed(RuntimeError):
    """A worker raised while solving a shard; carries the worker-side
    traceback.  Set as the exception of every future in the shard."""


@dataclass
class ServiceStats:
    """Counters over the service's lifetime (read-only for callers)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    shards_dispatched: int = 0
    #: shards lost to a worker crash and dispatched again
    shards_resubmitted: int = 0
    worker_restarts: int = 0
    peak_queue_depth: int = 0


class _Request:
    """One queued solve: a structure (plus optional decomposition) and
    the future its answer resolves."""

    __slots__ = ("structure", "td", "future")

    def __init__(self, structure, td, future: Future):
        self.structure = structure
        self.td = td
        self.future = future


class _Shard:
    """A dispatchable unit: consecutive requests of one program.

    ``dispatched`` flips on first hand-off to a worker; a crash
    resubmission re-sends the same shard object (same ``shard_id``,
    futures already in the running state) to a fresh worker.
    """

    __slots__ = ("shard_id", "key", "requests", "dispatched", "worker")

    def __init__(self, shard_id: int, key: str, requests: list[_Request]):
        self.shard_id = shard_id
        self.key = key
        self.requests = requests
        self.dispatched = False
        self.worker: "_Worker | None" = None


class _Worker:
    """A worker process plus its task queue and parent-side book-keeping
    (which programs it has loaded, which shards it is running)."""

    __slots__ = ("process", "tasks", "loaded", "inflight")

    def __init__(self, process, tasks):
        self.process = process
        self.tasks = tasks
        self.loaded: set[str] = set()
        self.inflight: dict[int, _Shard] = {}


def _service_worker_main(tasks, results) -> None:
    """Worker process loop.

    Solvers arrive once per program as a pickled payload (``"load"``)
    and stay resident -- the per-worker ``default_cache()`` fills on the
    first solve and every later shard of the same program runs warm.
    Shards (``"solve"``) evaluate request-by-request and post one
    ``("done", shard_id, values)`` (or ``("error", ...)``) per shard.
    """
    solvers = {}
    while True:
        try:
            message = tasks.get()
        except (EOFError, OSError):  # parent went away
            return
        kind = message[0]
        if kind == "stop":
            return
        if kind == "load":
            _, key, payload = message
            if key not in solvers:
                solvers[key] = pickle.loads(payload)
            continue
        # ("solve", shard_id, key, [(structure, td), ...])
        _, shard_id, key, items = message
        try:
            solver = solvers[key]
            solve_one = (
                solver.decide if solver.compiled.is_sentence else solver.query
            )
            values = [solve_one(structure, td) for structure, td in items]
        except BaseException as exc:  # report, don't kill the worker
            results.put(
                (
                    "error",
                    shard_id,
                    f"{type(exc).__name__}: {exc}",
                    traceback.format_exc(),
                )
            )
        else:
            results.put(("done", shard_id, values))


def coalesce(
    pending, idle_workers: int, max_shard: int
) -> list[tuple[str, list]]:
    """Group queued ``(program_key, request)`` pairs per compiled
    program (preserving arrival order within each program) and cut each
    group into shards sized for the idle capacity.

    The shard size is ``ceil(group / idle_workers)`` capped at
    ``max_shard`` and floored at 1: a burst of one program spreads
    across every idle worker instead of serializing on one, while a
    trickle stays one small shard.  Pure function -- unit-tested
    directly, used under the service lock.
    """
    if idle_workers < 1:
        raise ValueError("coalesce needs at least one idle worker")
    groups: dict[str, list] = {}
    for key, request in pending:
        groups.setdefault(key, []).append(request)
    shards: list[tuple[str, list]] = []
    for key, requests in groups.items():
        per_shard = max(
            1, min(max_shard, -(-len(requests) // idle_workers))
        )
        for i in range(0, len(requests), per_shard):
            shards.append((key, requests[i : i + per_shard]))
    return shards


class ProgramHandle:
    """One registered compiled program on a :class:`SolverService`.

    Obtained from :meth:`SolverService.register`; all submissions go
    through a handle so the service knows which warm solver a request
    belongs to (and which requests can coalesce into one shard).
    """

    __slots__ = ("_service", "key")

    def __init__(self, service: "SolverService", key: str):
        self._service = service
        self.key = key

    def submit(self, structure, td=None, *, block: bool = True) -> Future:
        """Enqueue one solve; returns the future of its answer."""
        return self._service._submit(self.key, structure, td, block=block)

    def submit_many(
        self, structures, tds=None, *, block: bool = True
    ) -> list[Future]:
        """Enqueue a batch; returns one future per structure, in input
        order."""
        structures = list(structures)
        if tds is None:
            tds = [None] * len(structures)
        else:
            tds = list(tds)
            if len(tds) != len(structures):
                raise ValueError(
                    f"{len(structures)} structures but {len(tds)} "
                    "decompositions"
                )
        return [
            self.submit(s, td, block=block)
            for s, td in zip(structures, tds)
        ]

    def solve_many(self, structures, tds=None, timeout=None) -> list:
        """Submit a batch and wait: the blocking convenience mirror of
        ``CourcelleSolver.solve_many`` (same result list, same input
        order), served by the warm pool."""
        futures = self.submit_many(structures, tds)
        return [future.result(timeout) for future in futures]


class SolverService:
    """A persistent pool of solver workers behind a batch scheduler.

    ``workers`` defaults to :func:`default_worker_count`.
    ``max_pending`` bounds the request queue (backpressure);
    ``max_shard`` caps how many requests one dispatch bundles.
    ``context`` picks the multiprocessing start method (name or
    context object); the platform default is used otherwise.

    Use as a context manager for a drained shutdown::

        with SolverService(workers=4) as service:
            handle = service.register(solver)
            futures = handle.submit_many(structures)
            answers = [f.result() for f in futures]
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        max_pending: int = 1024,
        max_shard: int = 64,
        poll_interval: float = 0.05,
        context=None,
    ):
        if workers is None:
            workers = default_worker_count()
        if workers < 1:
            raise ValueError("a solver service needs at least one worker")
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        if max_shard < 1:
            raise ValueError("max_shard must be positive")
        self.max_pending = max_pending
        self.max_shard = max_shard
        self._poll = poll_interval
        if context is None:
            self._ctx = multiprocessing.get_context()
        elif isinstance(context, str):
            self._ctx = multiprocessing.get_context(context)
        else:
            self._ctx = context
        self.stats = ServiceStats()
        self._lock = threading.Lock()
        #: scheduler wake-ups and drain waiters
        self._work = threading.Condition(self._lock)
        #: backpressure waiters (same lock, separate wait set)
        self._space = threading.Condition(self._lock)
        self._pending: deque[tuple[str, _Request]] = deque()
        self._shards: deque[_Shard] = deque()  # shaped, awaiting a worker
        self._inflight: dict[int, _Shard] = {}
        self._queued = 0  # requests in _pending + undispatched _shards
        self._payloads: dict[str, bytes] = {}
        self._handles: dict[str, ProgramHandle] = {}
        self._shard_seq = itertools.count(1)
        self._worker_seq = itertools.count(1)
        self._closed = False
        self._stopped = False
        self._collector_stop = threading.Event()
        self._results = self._ctx.Queue()
        self._workers = [self._spawn_worker() for _ in range(workers)]
        self._scheduler = threading.Thread(
            target=self._scheduler_loop,
            name="solver-service-scheduler",
            daemon=True,
        )
        self._collector = threading.Thread(
            target=self._collector_loop,
            name="solver-service-collector",
            daemon=True,
        )
        self._scheduler.start()
        self._collector.start()

    # -- lifecycle -----------------------------------------------------

    @property
    def workers(self) -> int:
        return len(self._workers)

    @property
    def queue_depth(self) -> int:
        """Requests accepted but not yet handed to a worker."""
        with self._lock:
            return self._queued

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    def register(self, solver) -> ProgramHandle:
        """Register a ``CourcelleSolver``; idempotent per (backend,
        compiled program).

        The solver is pickled **once** here -- the same
        ``__getstate__`` handoff the one-shot pool uses (compiled
        program + prepared plans + relevance set) -- and shipped lazily
        to each worker the first time a shard of this program reaches
        it.  Registering an equal solver again (same program
        fingerprint, backend, width) returns the existing handle
        without re-pickling.
        """
        compiled = solver.compiled
        key = ":".join(
            (
                solver.backend_name,
                str(compiled.width),
                "sentence" if compiled.is_sentence else "unary",
                program_fingerprint(compiled.program),
            )
        )
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is shut down")
            handle = self._handles.get(key)
        if handle is not None:
            return handle
        payload = pickle.dumps(solver)  # outside the lock: can be large
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is shut down")
            handle = self._handles.get(key)
            if handle is None:
                handle = ProgramHandle(self, key)
                self._handles[key] = handle
                self._payloads[key] = payload
        return handle

    def solve_many(self, solver, structures, tds=None) -> list:
        """``CourcelleSolver.solve_many(..., service=self)`` lands
        here: register (cached) and solve the batch on the warm pool."""
        return self.register(solver).solve_many(structures, tds)

    def shutdown(self, drain: bool = True, timeout: float | None = None):
        """Stop the service.

        ``drain=True`` (the default) stops intake, waits until every
        queued request and in-flight shard has resolved, then stops the
        workers -- no accepted request is ever dropped.  ``drain=False``
        cancels queued requests, abandons in-flight shards (their
        futures get :class:`ServiceClosed`), and terminates the workers
        immediately.  Idempotent; ``timeout`` bounds the drain wait.
        """
        abandoned: list[Future] = []
        with self._work:
            if self._stopped:
                return
            self._closed = True
            self._space.notify_all()
            if not drain:
                for _key, request in self._pending:
                    request.future.cancel()
                self._pending.clear()
                for shard in self._shards:
                    for request in shard.requests:
                        if not request.future.cancel():
                            abandoned.append(request.future)
                self._shards.clear()
                self._queued = 0
                for shard in self._inflight.values():
                    abandoned.extend(
                        request.future for request in shard.requests
                    )
                self._inflight.clear()
                for worker in self._workers:
                    worker.inflight.clear()
            else:
                deadline = (
                    None
                    if timeout is None
                    else time.monotonic() + timeout
                )
                while self._queued or self._inflight or self._shards:
                    self._work.wait(self._poll)
                    if deadline is not None and time.monotonic() >= deadline:
                        break
                if self._queued or self._inflight or self._shards:
                    # drain timed out: abandon what's left so no future
                    # hangs forever after the workers stop
                    for _key, request in self._pending:
                        if not request.future.cancel():
                            abandoned.append(request.future)
                    self._pending.clear()
                    for shard in self._shards:
                        for request in shard.requests:
                            if not request.future.cancel():
                                abandoned.append(request.future)
                    self._shards.clear()
                    self._queued = 0
                    for shard in self._inflight.values():
                        abandoned.extend(
                            request.future for request in shard.requests
                        )
                    self._inflight.clear()
            self._stopped = True
            self._work.notify_all()
        # past this point no thread dispatches or resolves anything new
        for future in abandoned:
            if not future.done():
                future.set_exception(
                    ServiceClosed("service shut down without draining")
                )
        for worker in self._workers:
            if worker.process.is_alive():
                if drain:
                    try:
                        worker.tasks.put(("stop",))
                    except (OSError, ValueError):  # pragma: no cover
                        pass
                else:
                    worker.process.terminate()
        self._scheduler.join(timeout=5)
        for worker in self._workers:
            worker.process.join(timeout=5)
            if worker.process.is_alive():  # pragma: no cover - stuck solve
                worker.process.terminate()
                worker.process.join(timeout=5)
        self._collector_stop.set()
        self._collector.join(timeout=5)

    close = shutdown

    # -- submission ----------------------------------------------------

    def _submit(self, key, structure, td, *, block: bool = True) -> Future:
        future: Future = Future()
        request = _Request(structure, td, future)
        with self._space:
            if self._closed:
                raise ServiceClosed("service is shut down")
            if key not in self._payloads:
                raise KeyError(f"program {key!r} is not registered")
            while self._queued >= self.max_pending:
                if not block:
                    raise ServiceSaturated(
                        f"request queue is full "
                        f"({self._queued}/{self.max_pending})"
                    )
                self._space.wait(self._poll)
                if self._closed:
                    raise ServiceClosed("service shut down while waiting")
            self._pending.append((key, request))
            self._queued += 1
            self.stats.submitted += 1
            if self._queued > self.stats.peak_queue_depth:
                self.stats.peak_queue_depth = self._queued
            self._work.notify_all()
        return future

    # -- scheduler -----------------------------------------------------

    def _idle_workers_locked(self) -> list[_Worker]:
        return [
            worker
            for worker in self._workers
            if not worker.inflight and worker.process.is_alive()
        ]

    def _dispatchable_locked(self) -> bool:
        return bool(
            (self._shards or self._pending) and self._idle_workers_locked()
        )

    def _scheduler_loop(self) -> None:
        with self._work:
            while True:
                while not self._stopped and not self._dispatchable_locked():
                    # timed wait: worker deaths / respawns don't notify
                    self._work.wait(self._poll)
                if self._stopped:
                    return
                self._dispatch_locked()

    def _dispatch_locked(self) -> None:
        idle = deque(self._idle_workers_locked())
        # resubmissions and leftovers first: they are oldest
        while idle and self._shards:
            self._send_locked(idle.popleft(), self._shards.popleft())
        if not idle or not self._pending:
            return
        pending = list(self._pending)
        self._pending.clear()
        for key, requests in coalesce(pending, len(idle), self.max_shard):
            shard = _Shard(next(self._shard_seq), key, requests)
            if idle:
                self._send_locked(idle.popleft(), shard)
            else:
                self._shards.append(shard)  # dispatched as workers free up

    def _send_locked(self, worker: _Worker, shard: _Shard) -> None:
        if not shard.dispatched:
            self._queued -= len(shard.requests)
            self._space.notify_all()
            # cancelled-while-queued requests drop out here; the rest
            # transition to running (cancel() is refused from now on)
            shard.requests = [
                request
                for request in shard.requests
                if request.future.set_running_or_notify_cancel()
            ]
            shard.dispatched = True
        if not shard.requests:
            return
        if shard.key not in worker.loaded:
            worker.tasks.put(("load", shard.key, self._payloads[shard.key]))
            worker.loaded.add(shard.key)
        shard.worker = worker
        self._inflight[shard.shard_id] = shard
        worker.inflight[shard.shard_id] = shard
        self.stats.shards_dispatched += 1
        worker.tasks.put(
            (
                "solve",
                shard.shard_id,
                shard.key,
                [(request.structure, request.td) for request in shard.requests],
            )
        )

    # -- result collection & crash recovery ----------------------------

    def _collector_loop(self) -> None:
        while not self._collector_stop.is_set():
            try:
                message = self._results.get(timeout=self._poll)
            except queue_module.Empty:
                message = None
            except (EOFError, OSError):  # pragma: no cover - queue gone
                return
            completions: list[tuple[Future, object, BaseException | None]] = []
            with self._work:
                if self._stopped and message is None:
                    continue  # drain stragglers until told to stop
                if message is not None:
                    self._handle_message_locked(message, completions)
                    while True:  # drain whatever arrived meanwhile
                        try:
                            self._handle_message_locked(
                                self._results.get_nowait(), completions
                            )
                        except queue_module.Empty:
                            break
                if not self._stopped:
                    self._recover_workers_locked()
                self._work.notify_all()
            # resolve outside the lock: done-callbacks run here and must
            # be free to touch the service (e.g. submit a follow-up)
            for future, value, exc in completions:
                if future.done():
                    continue  # resolved by a pre-crash duplicate result
                if exc is not None:
                    future.set_exception(exc)
                else:
                    future.set_result(value)

    def _handle_message_locked(self, message, completions) -> None:
        kind = message[0]
        shard = self._inflight.pop(message[1], None)
        if shard is None:
            # duplicate delivery: the shard was resubmitted after a
            # crash but the first worker's result surfaced anyway
            return
        if shard.worker is not None:
            shard.worker.inflight.pop(shard.shard_id, None)
        if kind == "done":
            values = message[2]
            for request, value in zip(shard.requests, values):
                completions.append((request.future, value, None))
            self.stats.completed += len(shard.requests)
        else:  # ("error", shard_id, brief, worker_traceback)
            _, _, brief, worker_tb = message
            exc = ShardFailed(
                f"solver worker failed: {brief}\n"
                f"--- worker traceback ---\n{worker_tb}"
            )
            for request in shard.requests:
                completions.append((request.future, None, exc))
            self.stats.failed += len(shard.requests)

    def _recover_workers_locked(self) -> None:
        for i, worker in enumerate(self._workers):
            if worker.process.is_alive():
                continue
            # a dead worker's in-flight shards are lost unless their
            # results were already queued (then the pop above resolved
            # them); resubmit the rest at the front of the shard queue
            lost = [
                shard
                for shard_id, shard in worker.inflight.items()
                if shard_id in self._inflight
            ]
            worker.inflight.clear()
            for shard in reversed(lost):
                del self._inflight[shard.shard_id]
                shard.worker = None
                self._shards.appendleft(shard)
                self.stats.shards_resubmitted += 1
            worker.process.join()  # reap
            self.stats.worker_restarts += 1
            self._workers[i] = self._spawn_worker()

    # -- workers -------------------------------------------------------

    def _spawn_worker(self) -> _Worker:
        tasks = self._ctx.Queue()
        process = self._ctx.Process(
            target=_service_worker_main,
            args=(tasks, self._results),
            name=f"solver-service-worker-{next(self._worker_seq)}",
            daemon=True,
        )
        process.start()
        return _Worker(process, tasks)
