"""Persistent solver service: the Theorem 4.5 serving layer.

Theorem 4.5's amortization claim -- compile once, solve any number of
width-w structures in linear data complexity -- only pays off in
production if the per-batch costs go to zero too.  This package keeps
long-lived worker processes resident (each rebuilt once from the
:class:`~repro.core.solver.CourcelleSolver` pickle handoff: warm
``ProgramCache``, prepared grounding plans and demand-relevance set --
compilation never happens on the request path) behind an asynchronous
batch scheduler that coalesces individual solve requests per compiled
program into shards, dispatches them to idle workers, and resolves one
future per request in input order.

See ``README.md`` in this directory for the architecture and
``benchmarks/bench_solver_service.py`` for the throughput harness that
CI gates (``service_throughput`` in ``BENCH_engine.json``).
"""

from .service import (
    ProgramHandle,
    ServiceClosed,
    ServiceSaturated,
    ServiceStats,
    ShardFailed,
    SolverService,
    coalesce,
)

__all__ = [
    "ProgramHandle",
    "ServiceClosed",
    "ServiceSaturated",
    "ServiceStats",
    "ShardFailed",
    "SolverService",
    "coalesce",
]
