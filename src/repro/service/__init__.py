"""Persistent solver service: the Theorem 4.5 serving layer.

Theorem 4.5's amortization claim -- compile once, solve any number of
width-w structures in linear data complexity -- only pays off in
production if the per-batch costs go to zero too.  This package keeps
long-lived worker processes resident (each rebuilt once from the
:class:`~repro.core.solver.CourcelleSolver` pickle handoff: warm
``ProgramCache``, prepared grounding plans and demand-relevance set --
compilation never happens on the request path) behind an asynchronous
batch scheduler that coalesces individual solve requests per compiled
program into shards, dispatches them to idle workers, and resolves one
future per request in input order.

The serving layer is fault-tolerant: per-request deadlines
(:class:`DeadlineExceeded`), capped retries with exponential backoff
and shard splitting, poison-input quarantine (:class:`PoisonInput`),
cooperative solve budgets with an optional fallback backend
(:class:`repro.datalog.SolveBudget` /
:class:`repro.datalog.BudgetExceeded`), and a deterministic
fault-injection harness (:mod:`repro.service.faults`, the
``REPRO_SERVICE_FAULTS`` variable).  See the "Failure semantics"
section of ``README.md`` in this directory for the contract, and
``benchmarks/bench_solver_service.py`` for the throughput + resilience
harness that CI gates (``service_throughput`` / ``service_resilience``
in ``BENCH_engine.json``).
"""

from .faults import FAULTS_ENV, FaultPlan, FaultSpec
from .service import (
    DeadlineExceeded,
    PoisonInput,
    ProgramHandle,
    QuarantineRecord,
    ServiceClosed,
    ServiceSaturated,
    ServiceStats,
    ShardFailed,
    SolverService,
    coalesce,
    structure_fingerprint,
)

__all__ = [
    "DeadlineExceeded",
    "FAULTS_ENV",
    "FaultPlan",
    "FaultSpec",
    "PoisonInput",
    "ProgramHandle",
    "QuarantineRecord",
    "ServiceClosed",
    "ServiceSaturated",
    "ServiceStats",
    "ShardFailed",
    "SolverService",
    "coalesce",
    "structure_fingerprint",
]
