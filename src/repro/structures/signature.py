"""Relational signatures.

A signature ``tau = {R1, ..., RK}`` is a finite set of predicate symbols,
each with a fixed arity (Section 2.2 of the paper).  Signatures are
immutable and hashable, so they can be shared freely between structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping


@dataclass(frozen=True, order=True)
class Predicate:
    """A predicate symbol with its arity."""

    name: str
    arity: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("predicate name must be non-empty")
        if self.arity < 0:
            raise ValueError(f"predicate {self.name!r} has negative arity")

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


class Signature:
    """An immutable set of :class:`Predicate` symbols, indexed by name."""

    __slots__ = ("_by_name",)

    def __init__(self, arities: Mapping[str, int]):
        by_name = {}
        for name, arity in arities.items():
            by_name[name] = Predicate(name, arity)
        object.__setattr__(self, "_by_name", dict(sorted(by_name.items())))

    @classmethod
    def of(cls, **arities: int) -> "Signature":
        """Build a signature from keyword arguments: ``Signature.of(e=2)``."""
        return cls(arities)

    def arity(self, name: str) -> int:
        """Arity of the predicate called ``name`` (KeyError if absent)."""
        return self._by_name[name].arity

    def predicates(self) -> Iterator[Predicate]:
        yield from self._by_name.values()

    def names(self) -> Iterator[str]:
        yield from self._by_name

    def extended(self, arities: Mapping[str, int]) -> "Signature":
        """A new signature with extra predicates added.

        Redeclaring an existing predicate with a different arity is an
        error; redeclaring with the same arity is a no-op.
        """
        merged = {p.name: p.arity for p in self.predicates()}
        for name, arity in arities.items():
            if name in merged and merged[name] != arity:
                raise ValueError(
                    f"predicate {name!r} redeclared with arity {arity}, "
                    f"was {merged[name]}"
                )
            merged[name] = arity
        return Signature(merged)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[str]:
        return iter(self._by_name)

    def __len__(self) -> int:
        return len(self._by_name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signature):
            return NotImplemented
        return self._by_name == other._by_name

    def __hash__(self) -> int:
        return hash(tuple(self._by_name.values()))

    def __repr__(self) -> str:
        inner = ", ".join(str(p) for p in self.predicates())
        return f"Signature({{{inner}}})"


#: Graphs as {e}-structures: ``e`` is the binary edge relation (Section 5.1).
GRAPH_SIGNATURE = Signature.of(e=2)

#: Relational schemas as {fd, att, lh, rh}-structures (Section 2.2):
#: ``fd(f)`` - f is a functional dependency; ``att(b)`` - b is an attribute;
#: ``lh(b, f)`` - b occurs in lhs(f); ``rh(b, f)`` - b occurs in rhs(f).
SCHEMA_SIGNATURE = Signature.of(fd=1, att=1, lh=2, rh=2)
