"""Finite relational structures (tau-structures).

A finite structure ``A`` over a signature ``tau`` has a finite domain and
one relation per predicate symbol (Section 2.2).  In the datalog context
it is convenient to view the relations as a set of ground atoms -- the
extensional database E(A) -- and that view is what :meth:`Structure.facts`
provides.

Structures are immutable; all "mutators" return new structures.  Domain
elements may be arbitrary hashable Python values.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from itertools import permutations
from typing import Any, Callable, Hashable, Iterable, Iterator, Mapping

from .signature import Signature

Element = Hashable


def structure_fingerprint(structure) -> str:
    """A stable hex fingerprint of a structure's content.

    Hashes the signature, domain, and fact set -- two structurally
    equal structures fingerprint alike, so a quarantined poison input
    is recognized however it is resubmitted.  Arbitrary (non-Structure)
    objects degrade to a type + ``repr`` hash rather than failing: the
    fingerprint is diagnostic metadata and must never be the thing
    that throws."""
    hasher = hashlib.sha256()
    try:
        hasher.update(str(structure.signature).encode())
        for element in sorted(structure.domain, key=repr):
            hasher.update(repr(element).encode())
        for fact in structure.facts():
            hasher.update(repr(fact).encode())
    except Exception:
        hasher = hashlib.sha256()
        hasher.update(type(structure).__name__.encode())
        try:
            hasher.update(repr(structure)[:4096].encode())
        except Exception:  # pragma: no cover - repr() itself raised
            pass
    return hasher.hexdigest()[:16]


@dataclass(frozen=True, order=True)
class Fact:
    """A ground atom ``R(a1, ..., an)`` of the extensional database."""

    predicate: str
    args: tuple[Element, ...]

    def __str__(self) -> str:
        inner = ", ".join(map(str, self.args))
        return f"{self.predicate}({inner})"


class Structure:
    """An immutable finite tau-structure.

    Parameters
    ----------
    signature:
        The signature ``tau``.
    domain:
        The (finite) universe.  May include elements that occur in no
        relation ("isolated" elements).
    relations:
        Mapping from predicate name to an iterable of argument tuples.
        Every predicate of the signature is allowed to be absent (it is
        then empty); unknown predicates and arity mismatches raise.
    """

    __slots__ = ("signature", "_domain", "_relations")

    def __init__(
        self,
        signature: Signature,
        domain: Iterable[Element],
        relations: Mapping[str, Iterable[tuple[Element, ...]]] | None = None,
    ):
        dom = frozenset(domain)
        rels: dict[str, frozenset[tuple[Element, ...]]] = {
            name: frozenset() for name in signature
        }
        for name, tuples in (relations or {}).items():
            if name not in signature:
                raise ValueError(f"unknown predicate {name!r}")
            arity = signature.arity(name)
            normalized = set()
            for tup in tuples:
                tup = tuple(tup)
                if len(tup) != arity:
                    raise ValueError(
                        f"{name} expects arity {arity}, got {tup!r}"
                    )
                for element in tup:
                    if element not in dom:
                        raise ValueError(
                            f"element {element!r} of {name}{tup!r} is not "
                            "in the domain"
                        )
                normalized.add(tup)
            rels[name] = frozenset(normalized)
        self.signature = signature
        self._domain = dom
        self._relations = rels

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def domain(self) -> frozenset[Element]:
        return self._domain

    def relation(self, name: str) -> frozenset[tuple[Element, ...]]:
        """The interpretation of predicate ``name``."""
        return self._relations[name]

    def holds(self, name: str, *args: Element) -> bool:
        """Does ``name(args)`` hold in this structure?"""
        return tuple(args) in self._relations[name]

    def facts(self) -> Iterator[Fact]:
        """All ground atoms of the extensional database E(A), sorted."""
        for name in self.signature:
            for tup in sorted(self._relations[name], key=repr):
                yield Fact(name, tup)

    def fact_count(self) -> int:
        return sum(len(rel) for rel in self._relations.values())

    def size(self) -> int:
        """|A| = |dom(A)| plus the total size of all relations.

        This is the size measure used in the linear-time bounds of
        Theorem 4.4 and Corollary 4.6.
        """
        cells = sum(
            len(rel) * self.signature.arity(name)
            for name, rel in self._relations.items()
        )
        return len(self._domain) + cells

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------

    def induced(self, elements: Iterable[Element]) -> "Structure":
        """The substructure induced by ``elements`` (Definition 3.2).

        Keeps exactly the tuples all of whose entries lie in
        ``elements``.
        """
        keep = frozenset(elements)
        extra = keep - self._domain
        if extra:
            raise ValueError(f"elements {extra!r} are not in the domain")
        relations = {
            name: {tup for tup in rel if all(x in keep for x in tup)}
            for name, rel in self._relations.items()
        }
        return Structure(self.signature, keep, relations)

    def with_facts(self, facts: Iterable[Fact]) -> "Structure":
        """A copy with extra ground atoms added (domain must cover them)."""
        relations = {name: set(rel) for name, rel in self._relations.items()}
        for fact in facts:
            relations.setdefault(fact.predicate, set()).add(fact.args)
        return Structure(self.signature, self._domain, relations)

    def with_elements(self, elements: Iterable[Element]) -> "Structure":
        """A copy with extra (isolated) domain elements."""
        return Structure(
            self.signature, self._domain | frozenset(elements), self._relations
        )

    def renamed(self, mapping: Mapping[Element, Element]) -> "Structure":
        """Apply an injective renaming to the domain.

        Elements absent from ``mapping`` are kept as-is.  The result must
        again have pairwise-distinct elements.
        """
        def rho(x: Element) -> Element:
            return mapping.get(x, x)

        new_domain = [rho(x) for x in self._domain]
        if len(set(new_domain)) != len(self._domain):
            raise ValueError("renaming is not injective on the domain")
        relations = {
            name: {tuple(rho(x) for x in tup) for tup in rel}
            for name, rel in self._relations.items()
        }
        return Structure(self.signature, new_domain, relations)

    def disjoint_union(self, other: "Structure") -> "Structure":
        """Union of two structures over the same signature.

        Despite the name this is the plain union of domains and
        relations; callers who need *disjointness* (e.g. the branch-node
        step of Theorem 4.5) rename first and may share exactly the
        distinguished elements.
        """
        if self.signature != other.signature:
            raise ValueError("signatures differ")
        relations = {
            name: self._relations[name] | other._relations[name]
            for name in self.signature
        }
        return Structure(
            self.signature, self._domain | other._domain, relations
        )

    # ------------------------------------------------------------------
    # Graphs derived from a structure
    # ------------------------------------------------------------------

    def gaifman_edges(self) -> set[tuple[Element, Element]]:
        """Edges of the Gaifman (primal) graph.

        Two distinct elements are adjacent iff they occur together in
        some tuple of some relation.  A tree decomposition of a structure
        is exactly a tree decomposition of its Gaifman graph, which is
        how arbitrary structures are decomposed in this package.
        """
        edges: set[tuple[Element, Element]] = set()
        for rel in self._relations.values():
            for tup in rel:
                distinct = set(tup)
                for a in distinct:
                    for b in distinct:
                        if a != b and repr((a, b)) <= repr((b, a)):
                            edges.add((a, b))
        return edges

    def atoms_involving(self, element: Element) -> Iterator[Fact]:
        """All facts that mention ``element``."""
        for name, rel in self._relations.items():
            for tup in rel:
                if element in tup:
                    yield Fact(name, tup)

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self.signature == other.signature
            and self._domain == other._domain
            and self._relations == other._relations
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.signature,
                self._domain,
                tuple(sorted(self._relations.items(), key=lambda kv: kv[0])),
            )
        )

    def __repr__(self) -> str:
        return (
            f"Structure(|dom|={len(self._domain)}, "
            f"facts={self.fact_count()})"
        )

    def is_isomorphic_to(
        self, other: "Structure", fixed: Mapping[Element, Element] | None = None
    ) -> bool:
        """Brute-force isomorphism test for *small* structures.

        ``fixed`` optionally pins a partial mapping (used for pointed
        structures).  Exponential; intended for tests and for the tiny
        witness structures of the Theorem 4.5 construction.
        """
        if self.signature != other.signature:
            return False
        if len(self._domain) != len(other._domain):
            return False
        if any(
            len(self._relations[n]) != len(other._relations[n])
            for n in self.signature
        ):
            return False
        fixed = dict(fixed or {})
        if len(set(fixed.values())) != len(fixed):
            return False
        free_src = sorted(self._domain - fixed.keys(), key=repr)
        free_dst = set(other._domain) - set(fixed.values())
        if len(free_src) != len(free_dst):
            return False
        for image in permutations(sorted(free_dst, key=repr)):
            mapping = dict(fixed)
            mapping.update(zip(free_src, image))
            if self._respects(other, mapping):
                return True
        return not free_src and self._respects(other, fixed)

    def _respects(
        self, other: "Structure", mapping: Mapping[Element, Element]
    ) -> bool:
        for name, rel in self._relations.items():
            mapped = {tuple(mapping[x] for x in tup) for tup in rel}
            if mapped != other._relations[name]:
                return False
        return True


@dataclass(frozen=True)
class PointedStructure:
    """A structure with distinguished elements ``(A, a0, ..., aw)``.

    Distinguished elements interpret the free variables of MSO formulae
    (Section 2.2/2.3).  They must belong to the domain but need not be
    pairwise distinct in general; the tree-decomposition bags of
    Definition 2.3 are additionally pairwise distinct, which callers can
    enforce with :func:`repro._util.all_distinct`.
    """

    structure: Structure
    points: tuple[Element, ...]

    def __post_init__(self) -> None:
        missing = [p for p in self.points if p not in self.structure.domain]
        if missing:
            raise ValueError(f"distinguished elements {missing!r} not in domain")

    def is_isomorphic_to(self, other: "PointedStructure") -> bool:
        if len(self.points) != len(other.points):
            return False
        pairing: dict[Any, Any] = {}
        for a, b in zip(self.points, other.points):
            if pairing.setdefault(a, b) != b:
                return False
        return self.structure.is_isomorphic_to(other.structure, fixed=pairing)
