"""Graphs as {e}-structures and graphs derived from structures.

The 3-Colorability algorithm of Section 5.1 works on graphs ``(V, E)``
given as tau-structures with ``tau = {e}``.  This module converts between
a lightweight adjacency representation and such structures, and exposes
the Gaifman / incidence graphs used to decompose arbitrary structures.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from .signature import GRAPH_SIGNATURE
from .structure import Element, Structure

Edge = tuple[Hashable, Hashable]


class Graph:
    """A simple undirected graph with hashable vertices.

    Self-loops are allowed (a self-loop makes a graph trivially not
    3-colorable under the paper's criterion, and keeping them lets the
    brute-force and datalog solvers be compared on the full input space).
    """

    __slots__ = ("_adj",)

    def __init__(
        self,
        vertices: Iterable[Hashable] = (),
        edges: Iterable[Edge] = (),
    ):
        self._adj: dict[Hashable, set[Hashable]] = {}
        for v in vertices:
            self._adj.setdefault(v, set())
        for u, v in edges:
            self.add_edge(u, v)

    def add_vertex(self, v: Hashable) -> None:
        self._adj.setdefault(v, set())

    def add_edge(self, u: Hashable, v: Hashable) -> None:
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)

    @property
    def vertices(self) -> frozenset[Hashable]:
        return frozenset(self._adj)

    def edges(self) -> set[tuple[Hashable, Hashable]]:
        """Each undirected edge once, in a canonical orientation."""
        seen: set[tuple[Hashable, Hashable]] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if (v, u) not in seen:
                    seen.add((u, v))
        return seen

    def neighbors(self, v: Hashable) -> frozenset[Hashable]:
        return frozenset(self._adj[v])

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        return u in self._adj and v in self._adj[u]

    def vertex_count(self) -> int:
        return len(self._adj)

    def edge_count(self) -> int:
        return len(self.edges())

    def copy(self) -> "Graph":
        g = Graph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        return g

    def __repr__(self) -> str:
        return f"Graph(n={self.vertex_count()}, m={self.edge_count()})"

    # -- standard families, used by tests, examples and benchmarks -----

    @classmethod
    def path(cls, n: int) -> "Graph":
        g = cls(range(n))
        for i in range(n - 1):
            g.add_edge(i, i + 1)
        return g

    @classmethod
    def cycle(cls, n: int) -> "Graph":
        g = cls.path(n)
        if n > 2:
            g.add_edge(n - 1, 0)
        elif n == 2:
            g.add_edge(1, 0)
        return g

    @classmethod
    def complete(cls, n: int) -> "Graph":
        g = cls(range(n))
        for i in range(n):
            for j in range(i + 1, n):
                g.add_edge(i, j)
        return g

    @classmethod
    def grid(cls, rows: int, cols: int) -> "Graph":
        g = cls((r, c) for r in range(rows) for c in range(cols))
        for r in range(rows):
            for c in range(cols):
                if r + 1 < rows:
                    g.add_edge((r, c), (r + 1, c))
                if c + 1 < cols:
                    g.add_edge((r, c), (r, c + 1))
        return g


def graph_to_structure(graph: Graph) -> Structure:
    """Encode an undirected graph as an {e}-structure.

    Both orientations of every edge are stored so that the (symmetric)
    MSO formula of Section 5.1 and the datalog programs can read ``e``
    without worrying about direction.
    """
    tuples: set[tuple[Element, Element]] = set()
    for u, v in graph.edges():
        tuples.add((u, v))
        tuples.add((v, u))
    return Structure(GRAPH_SIGNATURE, graph.vertices, {"e": tuples})


def structure_to_graph(structure: Structure) -> Graph:
    """Decode an {e}-structure back into an undirected graph."""
    if "e" not in structure.signature:
        raise ValueError("structure has no edge predicate 'e'")
    g = Graph(structure.domain)
    for u, v in structure.relation("e"):
        g.add_edge(u, v)
    return g


def gaifman_graph(structure: Structure) -> Graph:
    """The Gaifman (primal) graph of a structure.

    Vertices are the domain elements; two are adjacent iff they co-occur
    in a tuple.  A tree decomposition of the structure is precisely a
    tree decomposition of this graph, so all decomposition routines in
    :mod:`repro.treewidth` operate on it.

    For a schema structure over {fd, att, lh, rh} this graph *is* the
    incidence graph of the hypergraph H(R, F) from the remark in
    Section 2.2, hence ``tw(structure) == tw(incidence graph)`` exactly
    as the paper notes.
    """
    g = Graph(structure.domain)
    for u, v in structure.gaifman_edges():
        g.add_edge(u, v)
    return g


def subgraph(graph: Graph, vertices: Iterable[Hashable]) -> Graph:
    keep = frozenset(vertices)
    g = Graph(keep)
    for u, v in graph.edges():
        if u in keep and v in keep:
            g.add_edge(u, v)
    return g


def relabel(graph: Graph, mapping: Mapping[Hashable, Hashable]) -> Graph:
    """Rename vertices; identity for vertices missing from ``mapping``."""
    def rho(x: Hashable) -> Hashable:
        return mapping.get(x, x)

    g = Graph(rho(v) for v in graph.vertices)
    if g.vertex_count() != graph.vertex_count():
        raise ValueError("relabeling is not injective")
    for u, v in graph.edges():
        g.add_edge(rho(u), rho(v))
    return g
