"""Relational schemas ``(R, F)`` and the PRIMALITY problem (Section 2.1).

A schema is a set of attributes ``R`` and a set of functional
dependencies ``F``; w.l.o.g. every FD has a single attribute on its
right-hand side.  This module provides:

* FD closure ``X+`` (the linear-time counting algorithm of Beeri &
  Bernstein);
* superkey / key tests and candidate-key enumeration (Lucchesi-Osborn);
* brute-force primality -- the NP-hard baseline every treewidth-based
  algorithm in :mod:`repro.problems.primality` is validated against;
* the encoding of a schema as a {fd, att, lh, rh}-structure
  (Section 2.2) and its inverse.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import AbstractSet, Iterable, Iterator, Sequence

from .signature import SCHEMA_SIGNATURE
from .structure import Structure

Attribute = str


@dataclass(frozen=True, order=True)
class FunctionalDependency:
    """An FD ``name: lhs -> rhs`` with a single right-hand attribute."""

    name: str
    lhs: frozenset[Attribute]
    rhs: Attribute

    def __str__(self) -> str:
        left = "".join(sorted(self.lhs)) or "{}"
        return f"{self.name}: {left} -> {self.rhs}"


class RelationalSchema:
    """An immutable relational schema ``(R, F)``.

    Attributes are strings.  FD names default to ``f1, f2, ...`` and
    must be distinct from each other and from every attribute (attribute
    and FD identifiers share the structure domain in the tau-structure
    encoding).
    """

    __slots__ = ("attributes", "fds", "_fd_by_name")

    def __init__(
        self,
        attributes: Iterable[Attribute],
        fds: Iterable[FunctionalDependency],
    ):
        attrs = tuple(sorted(set(attributes)))
        fd_tuple = tuple(fds)
        names = [f.name for f in fd_tuple]
        if len(set(names)) != len(names):
            raise ValueError("duplicate FD names")
        clash = set(names) & set(attrs)
        if clash:
            raise ValueError(f"FD names clash with attributes: {sorted(clash)}")
        attr_set = set(attrs)
        for f in fd_tuple:
            unknown = (f.lhs | {f.rhs}) - attr_set
            if unknown:
                raise ValueError(f"FD {f} uses unknown attributes {sorted(unknown)}")
        self.attributes = attrs
        self.fds = fd_tuple
        self._fd_by_name = {f.name: f for f in fd_tuple}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "RelationalSchema":
        """Parse the compact notation used throughout the paper.

        ``"R = abcdeg; ab -> c, c -> b, cd -> e, de -> g, g -> e"``
        produces Example 2.1.  Attributes are single characters in this
        notation; FDs are named ``f1, f2, ...`` in order of appearance.
        An FD with several right-hand attributes is split into one FD
        per attribute (the standard w.l.o.g. step of Section 2.1).
        """
        head, _, body = text.partition(";")
        match = re.search(r"=\s*([A-Za-z]+)", head)
        if not match:
            raise ValueError(f"cannot parse attribute list from {head!r}")
        attributes = list(match.group(1))
        fds: list[FunctionalDependency] = []
        counter = 1
        body = body.strip()
        if body:
            for part in body.split(","):
                part = part.strip()
                if not part:
                    continue
                left, arrow, right = part.partition("->")
                if not arrow:
                    raise ValueError(f"FD {part!r} lacks '->'")
                lhs = frozenset(left.strip())
                for rhs in right.strip():
                    fds.append(FunctionalDependency(f"f{counter}", lhs, rhs))
                    counter += 1
        return cls(attributes, fds)

    def fd(self, name: str) -> FunctionalDependency:
        return self._fd_by_name[name]

    # ------------------------------------------------------------------
    # Closure and keys
    # ------------------------------------------------------------------

    def closure(self, attrs: Iterable[Attribute]) -> frozenset[Attribute]:
        """The closure ``X+`` of an attribute set under F.

        Linear-time counting algorithm: each FD keeps a count of
        left-hand attributes not yet derived; when the count hits zero
        the right-hand side is derived.
        """
        derived = set(attrs)
        unknown = derived - set(self.attributes)
        if unknown:
            raise ValueError(f"unknown attributes {sorted(unknown)}")
        missing = {f.name: len(f.lhs - derived) for f in self.fds}
        waiting: dict[Attribute, list[FunctionalDependency]] = {}
        for f in self.fds:
            for a in f.lhs - derived:
                waiting.setdefault(a, []).append(f)
        queue = [f.rhs for f in self.fds if missing[f.name] == 0]
        fired = {f.name for f in self.fds if missing[f.name] == 0}
        while queue:
            a = queue.pop()
            if a in derived:
                continue
            derived.add(a)
            for f in waiting.get(a, ()):
                missing[f.name] -= 1
                if missing[f.name] == 0 and f.name not in fired:
                    fired.add(f.name)
                    queue.append(f.rhs)
        return frozenset(derived)

    def is_closed(self, attrs: Iterable[Attribute]) -> bool:
        """Is ``attrs`` closed, i.e. ``attrs+ == attrs``?"""
        attrs = frozenset(attrs)
        return self.closure(attrs) == attrs

    def is_superkey(self, attrs: Iterable[Attribute]) -> bool:
        return self.closure(attrs) == frozenset(self.attributes)

    def is_key(self, attrs: Iterable[Attribute]) -> bool:
        """A key is a superkey no proper subset of which is a superkey."""
        attrs = frozenset(attrs)
        if not self.is_superkey(attrs):
            return False
        return all(
            not self.is_superkey(attrs - {a}) for a in attrs
        )

    def minimize_superkey(self, attrs: Iterable[Attribute]) -> frozenset[Attribute]:
        """Shrink a superkey to a key by greedy removal."""
        key = set(attrs)
        if not self.is_superkey(key):
            raise ValueError("input is not a superkey")
        for a in sorted(key):
            if self.is_superkey(key - {a}):
                key.discard(a)
        return frozenset(key)

    def candidate_keys(self) -> set[frozenset[Attribute]]:
        """All candidate keys, by the Lucchesi-Osborn saturation algorithm.

        Worst-case exponential in the number of keys (which may itself be
        exponential), but correct and fast on the schema sizes used for
        cross-validation.
        """
        keys: set[frozenset[Attribute]] = set()
        first = self.minimize_superkey(self.attributes)
        keys.add(first)
        queue = [first]
        while queue:
            key = queue.pop()
            for f in self.fds:
                candidate = f.lhs | (key - {f.rhs})
                if not any(existing <= candidate for existing in keys):
                    new_key = self.minimize_superkey(candidate)
                    if new_key not in keys:
                        keys.add(new_key)
                        queue.append(new_key)
        return keys

    # ------------------------------------------------------------------
    # Primality (Section 2.1) -- brute-force baselines
    # ------------------------------------------------------------------

    def is_prime_bruteforce(self, attribute: Attribute) -> bool:
        """Is ``attribute`` contained in at least one key?

        Uses candidate-key enumeration; NP-hard in general, which is the
        very point of the paper's treewidth-based algorithm.
        """
        if attribute not in self.attributes:
            raise ValueError(f"unknown attribute {attribute!r}")
        return any(attribute in key for key in self.candidate_keys())

    def prime_attributes_bruteforce(self) -> frozenset[Attribute]:
        """All prime attributes (Section 5.3's enumeration problem)."""
        primes: set[Attribute] = set()
        for key in self.candidate_keys():
            primes |= key
        return frozenset(primes)

    def is_prime_via_closed_set(self, attribute: Attribute) -> bool:
        """The characterization used by the MSO formula of Example 2.6.

        ``a`` is prime iff there is a set ``Y subseteq R`` with
        ``Y+ = Y``, ``a not in Y`` and ``(Y u {a})+ = R``.  Checked by
        exhaustive enumeration of subsets -- exponential, used only to
        validate the characterization itself in tests.
        """
        from .._util import powerset

        rest = [b for b in self.attributes if b != attribute]
        for subset in powerset(rest):
            y = frozenset(subset)
            if self.is_closed(y) and self.is_superkey(y | {attribute}):
                return True
        return False

    # ------------------------------------------------------------------
    # Normal forms (extension: the paper motivates primality via 3NF)
    # ------------------------------------------------------------------

    def is_third_normal_form(self) -> bool:
        """3NF test: for every FD X -> a, either a in X, or X is a
        superkey, or a is prime.

        Primality testing is the "indispensable prerequisite" the paper's
        introduction refers to; this method ties the reproduction back to
        that motivation.
        """
        primes = self.prime_attributes_bruteforce()
        for f in self.fds:
            if f.rhs in f.lhs:
                continue
            if self.is_superkey(f.lhs):
                continue
            if f.rhs in primes:
                continue
            return False
        return True

    # ------------------------------------------------------------------
    # Structure encoding (Section 2.2)
    # ------------------------------------------------------------------

    def to_structure(self) -> Structure:
        """The {fd, att, lh, rh}-structure of Example 2.2.

        The domain is ``R`` plus the FD names; ``lh``/``rh`` record
        left/right-hand occurrences.
        """
        domain = list(self.attributes) + [f.name for f in self.fds]
        relations = {
            "att": {(a,) for a in self.attributes},
            "fd": {(f.name,) for f in self.fds},
            "lh": {(b, f.name) for f in self.fds for b in f.lhs},
            "rh": {(f.rhs, f.name) for f in self.fds},
        }
        return Structure(SCHEMA_SIGNATURE, domain, relations)

    @classmethod
    def from_structure(cls, structure: Structure) -> "RelationalSchema":
        """Inverse of :meth:`to_structure`."""
        if structure.signature != SCHEMA_SIGNATURE:
            raise ValueError("not a schema structure")
        attributes = [a for (a,) in structure.relation("att")]
        lhs_of: dict[str, set[Attribute]] = {}
        rhs_of: dict[str, Attribute] = {}
        for (f,) in structure.relation("fd"):
            lhs_of[str(f)] = set()
        for b, f in structure.relation("lh"):
            lhs_of[str(f)].add(str(b))
        for b, f in structure.relation("rh"):
            if str(f) in rhs_of:
                raise ValueError(f"FD {f!r} has several right-hand attributes")
            rhs_of[str(f)] = str(b)
        fds = []
        for name in sorted(lhs_of):
            if name not in rhs_of:
                raise ValueError(f"FD {name!r} lacks a right-hand side")
            fds.append(
                FunctionalDependency(name, frozenset(lhs_of[name]), rhs_of[name])
            )
        return cls(attributes, fds)

    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationalSchema):
            return NotImplemented
        return self.attributes == other.attributes and set(self.fds) == set(other.fds)

    def __hash__(self) -> int:
        return hash((self.attributes, frozenset(self.fds)))

    def __repr__(self) -> str:
        return (
            f"RelationalSchema(|R|={len(self.attributes)}, |F|={len(self.fds)})"
        )

    def describe(self) -> str:
        lines = [f"R = {''.join(self.attributes)}"]
        lines += [f"  {f}" for f in self.fds]
        return "\n".join(lines)


def running_example() -> RelationalSchema:
    """Example 2.1: ``R = abcdeg`` with F = {ab->c, c->b, cd->e, de->g, g->e}.

    Its keys are ``abd`` and ``acd``; the prime attributes are a, b, c, d.
    Used throughout the paper and throughout this package's tests,
    examples and documentation.
    """
    return RelationalSchema.parse(
        "R = abcdeg; ab -> c, c -> b, cd -> e, de -> g, g -> e"
    )
