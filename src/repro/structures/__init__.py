"""Finite structures substrate: signatures, tau-structures, graphs, schemas."""

from .signature import GRAPH_SIGNATURE, SCHEMA_SIGNATURE, Predicate, Signature
from .structure import (
    Element,
    Fact,
    PointedStructure,
    Structure,
    structure_fingerprint,
)
from .graphs import (
    Graph,
    gaifman_graph,
    graph_to_structure,
    relabel,
    structure_to_graph,
    subgraph,
)
from .schema import (
    Attribute,
    FunctionalDependency,
    RelationalSchema,
    running_example,
)

__all__ = [
    "Attribute",
    "Element",
    "Fact",
    "FunctionalDependency",
    "GRAPH_SIGNATURE",
    "Graph",
    "PointedStructure",
    "Predicate",
    "RelationalSchema",
    "SCHEMA_SIGNATURE",
    "Signature",
    "Structure",
    "gaifman_graph",
    "graph_to_structure",
    "relabel",
    "running_example",
    "structure_fingerprint",
    "structure_to_graph",
    "subgraph",
]
