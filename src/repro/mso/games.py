"""k-round MSO Ehrenfeucht-Fraïssé games (Section 2.3).

The spoiler picks a point or a set in either structure; the duplicator
answers in the other; after k rounds the duplicator wins iff the chosen
points define a partial isomorphism between the structures extended by
the chosen sets.  ``(A, ā) ≡ᴹˢᴼ_k (B, b̄)`` iff the duplicator has a
winning strategy -- the characterization the proofs of Lemmas 3.5-3.7
are built on.

The recursive minimax below is doubly exponential and exists to
cross-check the canonical-type computation of :mod:`repro.mso.types`
on tiny structures (a genuinely independent implementation of the same
equivalence).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator

from ..structures.structure import Element, Structure


def _subsets(domain: list[Element]) -> Iterator[frozenset[Element]]:
    for r in range(len(domain) + 1):
        for combo in combinations(domain, r):
            yield frozenset(combo)


def is_partial_isomorphism(
    a: Structure,
    a_points: tuple[Element, ...],
    a_sets: tuple[frozenset[Element], ...],
    b: Structure,
    b_points: tuple[Element, ...],
    b_sets: tuple[frozenset[Element], ...],
) -> bool:
    """Does ``a_points[i] -> b_points[i]`` preserve everything atomic?

    Checks well-definedness/injectivity, all relations of the shared
    signature over the chosen points (in both directions), and
    membership in the chosen sets.
    """
    if a.signature != b.signature:
        return False
    if len(a_points) != len(b_points) or len(a_sets) != len(b_sets):
        return False
    n = len(a_points)
    for i in range(n):
        for j in range(n):
            if (a_points[i] == a_points[j]) != (b_points[i] == b_points[j]):
                return False
    for name in a.signature:
        arity = a.signature.arity(name)
        for indices in _index_tuples(n, arity):
            lhs = a.holds(name, *(a_points[i] for i in indices))
            rhs = b.holds(name, *(b_points[i] for i in indices))
            if lhs != rhs:
                return False
    for i in range(n):
        for j in range(len(a_sets)):
            if (a_points[i] in a_sets[j]) != (b_points[i] in b_sets[j]):
                return False
    return True


def _index_tuples(n: int, arity: int) -> Iterator[tuple[int, ...]]:
    if arity == 0:
        yield ()
        return
    from itertools import product

    yield from product(range(n), repeat=arity)


def duplicator_wins(
    a: Structure,
    a_points: tuple[Element, ...],
    b: Structure,
    b_points: tuple[Element, ...],
    k: int,
    a_sets: tuple[frozenset[Element], ...] = (),
    b_sets: tuple[frozenset[Element], ...] = (),
) -> bool:
    """Does the duplicator win the k-round MSO game on (A, ā) vs (B, b̄)?

    Exhaustive minimax over all spoiler moves; only use on structures
    with a handful of elements.
    """
    if k == 0:
        return is_partial_isomorphism(
            a, a_points, a_sets, b, b_points, b_sets
        )

    a_domain = sorted(a.domain, key=repr)
    b_domain = sorted(b.domain, key=repr)

    # spoiler point move in A: duplicator needs a reply in B
    for c in a_domain:
        if not any(
            duplicator_wins(
                a, a_points + (c,), b, b_points + (d,), k - 1, a_sets, b_sets
            )
            for d in b_domain
        ):
            return False
    # spoiler point move in B
    for d in b_domain:
        if not any(
            duplicator_wins(
                a, a_points + (c,), b, b_points + (d,), k - 1, a_sets, b_sets
            )
            for c in a_domain
        ):
            return False
    # spoiler set move in A
    for p in _subsets(a_domain):
        if not any(
            duplicator_wins(
                a, a_points, b, b_points, k - 1, a_sets + (p,), b_sets + (q,)
            )
            for q in _subsets(b_domain)
        ):
            return False
    # spoiler set move in B
    for q in _subsets(b_domain):
        if not any(
            duplicator_wins(
                a, a_points, b, b_points, k - 1, a_sets + (p,), b_sets + (q,)
            )
            for p in _subsets(a_domain)
        ):
            return False
    return True
