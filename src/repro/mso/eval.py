"""Naive MSO model checking.

Direct implementation of the semantics: set quantifiers range over all
``2^|dom|`` subsets, so the runtime is exponential in the domain size.
This is intentional and load-bearing for the reproduction:

* it is the *reference semantics* every other component (the Section 5
  programs, the Theorem 4.5 compiler) is validated against on small
  instances, and
* under a step budget it stands in for MONA in the Table 1 experiment
  -- an MSO-evaluation route without linear data complexity that blows
  up after the first few instance sizes exactly like the paper's MONA
  column (see DESIGN.md §5 for the substitution rationale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Hashable, Iterator, Mapping

from ..structures.structure import Element, Structure
from .syntax import (
    And,
    Const,
    Eq,
    ExistsInd,
    ExistsSet,
    ForallInd,
    ForallSet,
    Formula,
    Iff,
    Implies,
    In,
    IndividualTerm,
    Not,
    Or,
    RelAtom,
)


class BudgetExceeded(RuntimeError):
    """The step budget ran out -- the MONA stand-in's "out of memory"."""


@dataclass
class Budget:
    """A step counter; each subformula visit costs one step."""

    limit: int | None = None
    steps: int = 0

    def tick(self) -> None:
        self.steps += 1
        if self.limit is not None and self.steps > self.limit:
            raise BudgetExceeded(f"exceeded {self.limit} evaluation steps")


def _subsets(domain: list[Element]) -> Iterator[frozenset[Element]]:
    for r in range(len(domain) + 1):
        for combo in combinations(domain, r):
            yield frozenset(combo)


def _resolve(
    term: IndividualTerm, assignment: Mapping[str, Element]
) -> Element:
    if isinstance(term, Const):
        return term.value
    try:
        return assignment[term]
    except KeyError:
        raise ValueError(f"unbound individual variable {term!r}") from None


def evaluate(
    structure: Structure,
    formula: Formula,
    individual: Mapping[str, Element] | None = None,
    sets: Mapping[str, frozenset[Element]] | None = None,
    budget: Budget | None = None,
) -> bool:
    """Does ``(A, assignment) |= formula`` hold?

    ``individual`` binds free individual variables to domain elements,
    ``sets`` binds free set variables to sets of domain elements.
    Raises :class:`BudgetExceeded` when the optional budget runs out.
    """
    individual = dict(individual or {})
    sets = dict(sets or {})
    domain = sorted(structure.domain, key=repr)
    budget = budget or Budget()

    def rec(
        f: Formula,
        ind: dict[str, Element],
        so: dict[str, frozenset[Element]],
    ) -> bool:
        budget.tick()
        if isinstance(f, RelAtom):
            args = tuple(_resolve(t, ind) for t in f.args)
            return structure.holds(f.predicate, *args)
        if isinstance(f, Eq):
            return _resolve(f.left, ind) == _resolve(f.right, ind)
        if isinstance(f, In):
            try:
                chosen = so[f.set_var]
            except KeyError:
                raise ValueError(f"unbound set variable {f.set_var!r}") from None
            return _resolve(f.term, ind) in chosen
        if isinstance(f, Not):
            return not rec(f.body, ind, so)
        if isinstance(f, And):
            return rec(f.left, ind, so) and rec(f.right, ind, so)
        if isinstance(f, Or):
            return rec(f.left, ind, so) or rec(f.right, ind, so)
        if isinstance(f, Implies):
            return (not rec(f.left, ind, so)) or rec(f.right, ind, so)
        if isinstance(f, Iff):
            return rec(f.left, ind, so) == rec(f.right, ind, so)
        if isinstance(f, ExistsInd):
            return any(
                rec(f.body, {**ind, f.var: c}, so) for c in domain
            )
        if isinstance(f, ForallInd):
            return all(
                rec(f.body, {**ind, f.var: c}, so) for c in domain
            )
        if isinstance(f, ExistsSet):
            return any(
                rec(f.body, ind, {**so, f.var: subset})
                for subset in _subsets(domain)
            )
        if isinstance(f, ForallSet):
            return all(
                rec(f.body, ind, {**so, f.var: subset})
                for subset in _subsets(domain)
            )
        raise TypeError(f"unknown formula node {type(f).__name__}")

    return rec(formula, individual, sets)


def query(
    structure: Structure,
    formula: Formula,
    free_var: str,
    budget: Budget | None = None,
) -> frozenset[Element]:
    """All elements ``a`` with ``(A, a) |= formula(x)`` -- a unary query."""
    hits = set()
    for a in sorted(structure.domain, key=repr):
        if evaluate(structure, formula, {free_var: a}, budget=budget):
            hits.add(a)
    return frozenset(hits)
