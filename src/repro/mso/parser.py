"""A textual syntax for MSO formulae.

Grammar (ASCII-friendly; precedence from weakest to strongest):

    formula  := quantified
    quantified := ("EX" | "ALL") var "." quantified      (individual)
                | ("EXS" | "ALLS") Var "." quantified    (set)
                | iff
    iff      := implies ("<->" implies)*
    implies  := or ("->" or)*          (right associative)
    or       := and ("|" and)*
    and      := unary ("&" unary)*
    unary    := "~" unary | atom
    atom     := pred "(" term ("," term)* ")"
              | term "=" term | term "!=" term
              | term "in" SetVar | term "notin" SetVar
              | SetVar "<=" SetVar                       (subset, sugar)
              | SetVar "<" SetVar                        (proper subset)
              | "(" formula ")"

Individual variables are lower-case identifiers, set variables start
with an upper-case letter (the paper's convention), and quoted strings
denote constants.  The subset operators desugar exactly like
:func:`repro.mso.syntax.subset_eq` / :func:`proper_subset`, so quantifier
depth is accounted for uniformly.

Example -- the Closed(Y) macro of Example 2.6:

    ALL f. fd(f) -> EX b. (rh(b, f) & b in Y) | (lh(b, f) & b notin Y)
"""

from __future__ import annotations

import re
from typing import Iterator

from .syntax import (
    And,
    Const,
    Eq,
    ExistsInd,
    ExistsSet,
    ForallInd,
    ForallSet,
    Formula,
    Iff,
    Implies,
    In,
    IndividualTerm,
    Not,
    Or,
    RelAtom,
    proper_subset,
    subset_eq,
)


class MSOParseError(ValueError):
    pass


_TOKEN = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<op><->|->|!=|<=|[&|~=<.,()])
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"EX", "ALL", "EXS", "ALLS", "in", "notin"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if not match:
            raise MSOParseError(f"unexpected character {text[pos]!r} at {pos}")
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "ident" and value in _KEYWORDS:
            tokens.append(("kw", value))
        else:
            tokens.append((kind, value))
    tokens.append(("eof", ""))
    return tokens


def _is_set_var(name: str) -> bool:
    return name[0].isupper()


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> tuple[str, str]:
        return self.tokens[self.pos]

    def at(self, kind: str, value: str | None = None) -> bool:
        k, v = self.tokens[self.pos]
        return k == kind and (value is None or v == value)

    def take(self, kind: str | None = None, value: str | None = None) -> str:
        k, v = self.tokens[self.pos]
        if (kind is not None and k != kind) or (
            value is not None and v != value
        ):
            raise MSOParseError(f"expected {value or kind}, found {v!r}")
        self.pos += 1
        return v

    # -- grammar --------------------------------------------------------

    def formula(self) -> Formula:
        return self.quantified()

    def quantified(self) -> Formula:
        if self.at("kw", "EX") or self.at("kw", "ALL") or self.at(
            "kw", "EXS"
        ) or self.at("kw", "ALLS"):
            kw = self.take("kw")
            var = self.take("ident")
            self.take("op", ".")
            body = self.quantified()
            if kw == "EX":
                return ExistsInd(var, body)
            if kw == "ALL":
                return ForallInd(var, body)
            if not _is_set_var(var):
                raise MSOParseError(
                    f"set variable {var!r} must start upper-case"
                )
            return ExistsSet(var, body) if kw == "EXS" else ForallSet(var, body)
        return self.iff()

    def iff(self) -> Formula:
        left = self.implies()
        while self.at("op", "<->"):
            self.take("op", "<->")
            left = Iff(left, self.implies())
        return left

    def implies(self) -> Formula:
        left = self.or_()
        if self.at("op", "->"):
            self.take("op", "->")
            return Implies(left, self.implies())  # right associative
        return left

    def or_(self) -> Formula:
        left = self.and_()
        while self.at("op", "|"):
            self.take("op", "|")
            left = Or(left, self.and_())
        return left

    def and_(self) -> Formula:
        left = self.unary()
        while self.at("op", "&"):
            self.take("op", "&")
            left = And(left, self.unary())
        return left

    def _at_quantifier(self) -> bool:
        return any(self.at("kw", kw) for kw in ("EX", "ALL", "EXS", "ALLS"))

    def unary(self) -> Formula:
        if self.at("op", "~"):
            self.take("op", "~")
            return Not(self.unary())
        if self._at_quantifier():
            # a quantifier after a connective scopes maximally rightward:
            # "p(x) -> EX y. q(y) & r(y)" binds y over "q(y) & r(y)".
            return self.quantified()
        return self.atom()

    def term(self) -> IndividualTerm:
        if self.at("string"):
            raw = self.take("string")
            return Const(raw[1:-1].replace('\\"', '"').replace("\\\\", "\\"))
        return self.take("ident")

    def atom(self) -> Formula:
        if self.at("op", "("):
            self.take("op", "(")
            inner = self.formula()
            self.take("op", ")")
            return inner
        left = self.term()
        if self.at("op", "("):
            if not isinstance(left, str):
                raise MSOParseError("predicate name cannot be a constant")
            self.take("op", "(")
            args = [self.term()]
            while self.at("op", ","):
                self.take("op", ",")
                args.append(self.term())
            self.take("op", ")")
            return RelAtom(left, tuple(args))
        if self.at("op", "="):
            self.take("op", "=")
            return Eq(left, self.term())
        if self.at("op", "!="):
            self.take("op", "!=")
            return Not(Eq(left, self.term()))
        if self.at("kw", "in"):
            self.take("kw", "in")
            set_var = self.take("ident")
            if not _is_set_var(set_var):
                raise MSOParseError(f"{set_var!r} is not a set variable")
            return In(left, set_var)
        if self.at("kw", "notin"):
            self.take("kw", "notin")
            set_var = self.take("ident")
            if not _is_set_var(set_var):
                raise MSOParseError(f"{set_var!r} is not a set variable")
            return Not(In(left, set_var))
        if self.at("op", "<=") or self.at("op", "<"):
            if not (isinstance(left, str) and _is_set_var(left)):
                raise MSOParseError("subset operands must be set variables")
            op = self.take("op")
            right = self.take("ident")
            if not _is_set_var(right):
                raise MSOParseError(f"{right!r} is not a set variable")
            return subset_eq(left, right) if op == "<=" else proper_subset(
                left, right
            )
        raise MSOParseError(f"dangling term {left!r}")


def parse_formula(text: str) -> Formula:
    """Parse an MSO formula from the ASCII syntax above."""
    parser = _Parser(text)
    result = parser.formula()
    parser.take("eof")
    return result
