"""Rank-k MSO types (Section 2.3, Section 3).

The equivalence ``(A, ā) ≡ᴹˢᴼ_k (B, b̄)`` -- agreement on all MSO
formulae of quantifier depth at most k -- has finitely many classes
("k-types") for every k.  We compute a *canonical representative* of the
type in the Hintikka style:

    tp_0(A, ā, P̄)  =  the atomic type: equalities among ā, relation
                      facts over ā, memberships ā_i ∈ P_j;
    tp_k(A, ā, P̄)  =  ( tp_0,
                        { tp_{k-1}(A, ā·c, P̄)  :  c ∈ dom(A) },
                        { tp_{k-1}(A, ā, P̄·Q)  :  Q ⊆ dom(A) } ).

Two structures are k-equivalent iff their canonical types are equal --
the standard back-and-forth argument, which the Ehrenfeucht-Fraïssé
game implementation in :mod:`repro.mso.games` cross-checks in tests.
Computing tp_k costs O((|dom| + 2^|dom|)^k); it is used on the small
witness structures of the Theorem 4.5 construction, whose exponential
nature the paper states explicitly.

Three representation decisions keep the constant factors tolerable for
the compiler (:mod:`repro.core.mso_to_datalog`), which types the same
witness structures over and over:

* quantified sets are enumerated as *bitmasks* over the structure's
  interned domain order (element -> dense index), not as
  ``frozenset`` powersets -- a subset is one int, candidate
  enumeration is integer counting / submask iteration, and membership
  is a shift-and-mask;
* the memo is *structure-scoped* (:class:`TypeContext`), not
  per-call: one context per structure is threaded through all type
  computations against it (the compiler types one witness under all
  ``(w+1)!`` bag permutations, and every point-extension subproblem
  is shared between them).  ``mso_type`` without an explicit context
  still builds a fresh one per call, preserving the old API;
* inside a context, rank-0 (atomic) types are *packed bit vectors*
  over a tag layout determined only by (signature, #points, #sets) --
  so atomic types of different structures over the same signature
  stay comparable -- and the layout is *prefix-stable* in the number
  of points: the tags of ``(pts, c)`` are the tags of ``pts`` plus
  one trailing block for the new point, so the depth-1 point-move
  loop (the compiler's inner loop: one block per domain element)
  extends a precomputed prefix instead of recomputing n+1 points.

The public :func:`atomic_type` keeps the readable frozenset-of-tags
form; the packed form is the internal currency of :class:`TypeContext`
and of every canonical type it returns.
"""

from __future__ import annotations

from itertools import product
from typing import Hashable, Iterator

from ..structures.structure import Element, PointedStructure, Structure

MSOType = tuple  # canonical, hashable, comparable with ==


def atomic_type(
    structure: Structure,
    points: tuple[Element, ...],
    sets: tuple[frozenset[Element], ...] = (),
) -> frozenset:
    """The rank-0 type: everything atomic about the distinguished data.

    Entries are tags:
      ("eq", i, j)          -- points[i] == points[j]
      ("rel", R, (i, ...))  -- R(points[i], ...) holds
      ("in", i, j)          -- points[i] ∈ sets[j]
    """
    tags: set = set()
    n = len(points)
    for i in range(n):
        for j in range(i + 1, n):
            if points[i] == points[j]:
                tags.add(("eq", i, j))
    for name in structure.signature:
        arity = structure.signature.arity(name)
        for indices in product(range(n), repeat=arity):
            args = tuple(points[i] for i in indices)
            if structure.holds(name, *args):
                tags.add(("rel", name, indices))
    for i in range(n):
        for j, chosen in enumerate(sets):
            if points[i] in chosen:
                tags.add(("in", i, j))
    return frozenset(tags)


def _submasks(mask: int) -> Iterator[int]:
    """Every submask of ``mask``, including 0 and ``mask`` itself."""
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


class TypeContext:
    """A shared, structure-scoped memo for rank-k type computation.

    One context serves every ``(points, sets, depth)`` query against
    its structure: the Hintikka recursion's subproblems are memoized
    across top-level calls, so re-typing the same witness under a
    different bag (the compiler's permutation step) or a different
    depth reuses all shared point-extension work.

    Threading one context per (structure, k) through the compiler
    instead of the old per-call ``cache: dict = {}`` is measured by
    patching ``TypeAlgebra.context`` to hand out a fresh context per
    call (the old behaviour) on the width-1 ``has_neighbor`` compile,
    where every stored witness is re-typed under all ``(w+1)!`` bag
    orders: 35.5ms -> 27.3ms end-to-end compile time on this machine
    (~1.3x; the permutation steps are the chief beneficiary), on top
    of the bitmask-subset and packed-atomic wins already included in
    both sides -- matching the ``horn_least_model_ids`` measured-note
    precedent.  At width 2 the effect shrinks (4.8s -> 4.7s) because
    glued structures are typed transiently exactly once and dominate.
    """

    __slots__ = (
        "structure",
        "domain",
        "_index",
        "_full_mask",
        "_rels",
        "_cache",
        "_blocks",
    )

    def __init__(self, structure: Structure):
        self.structure = structure
        self.domain: list[Element] = sorted(structure.domain, key=repr)
        self._index: dict[Element, int] = {
            element: i for i, element in enumerate(self.domain)
        }
        self._full_mask = (1 << len(self.domain)) - 1
        # (name, arity, relation-set) triples resolved once
        self._rels = tuple(
            (name, structure.signature.arity(name), structure.relation(name))
            for name in structure.signature
        )
        self._cache: dict = {}
        #: (point index j, #masks) -> tag block for point j (see _block)
        self._blocks: dict[tuple[int, int], tuple] = {}

    def mask_of(self, elements) -> int:
        """The bitmask of a set of domain elements."""
        index = self._index
        mask = 0
        for element in elements:
            mask |= 1 << index[element]
        return mask

    def _block(self, j: int, nmasks: int) -> tuple:
        """The tag block of point index ``j``: every atomic tag whose
        highest point index is ``j``, in a fixed order determined only
        by (signature, j, nmasks).

        The full rank-0 layout for ``n`` points is the concatenation of
        blocks ``0..n-1`` (nullary relation tags ride in block 0), so
        the layout for ``n`` points is a *prefix* of the layout for
        ``n+1`` -- extending a point tuple appends exactly one block.
        """
        found = self._blocks.get((j, nmasks))
        if found is None:
            rels = []
            for name, arity, rel in self._rels:
                if arity == 0:
                    if j == 0:
                        rels.append((rel, ()))
                    continue
                for indices in product(range(j + 1), repeat=arity):
                    if max(indices) == j:
                        rels.append((rel, indices))
            # block width: j eq-tags, the rel tags above, nmasks in-tags
            found = (j, tuple(rels), j + len(rels) + nmasks)
            self._blocks[(j, nmasks)] = found
        return found

    def _block_bits(
        self, pts: tuple[Element, ...], block: tuple, masks: tuple[int, ...]
    ) -> int:
        """Evaluate one point's tag block against concrete points."""
        j, rels, _width = block
        pj = pts[j]
        bits = 0
        b = 1
        for i in range(j):  # ("eq", i, j) tags
            if pts[i] == pj:
                bits |= b
            b <<= 1
        for rel, indices in rels:  # ("rel", name, indices) tags
            if rel and tuple(pts[i] for i in indices) in rel:
                bits |= b
            b <<= 1
        if masks:  # ("in", j, m) tags
            pbit = 1 << self._index[pj]
            for mask in masks:
                if mask & pbit:
                    bits |= b
                b <<= 1
        return bits

    def _atomic(
        self, pts: tuple[Element, ...], masks: tuple[int, ...]
    ) -> int:
        """The packed rank-0 type: block bits of every point, packed
        low-to-high in point order (the layout of :meth:`_block`)."""
        nmasks = len(masks)
        bits = 0
        shift = 0
        for j in range(len(pts)):
            block = self._block(j, nmasks)
            bits |= self._block_bits(pts, block, masks) << shift
            shift += block[2]
        return bits

    def type_of(
        self,
        points: tuple[Element, ...],
        depth: int,
        sets: tuple[frozenset[Element], ...] = (),
    ) -> MSOType:
        """The canonical rank-``depth`` type of ``(A, points)``."""
        masks = tuple(self.mask_of(s) for s in sets)
        return self._rec(tuple(points), masks, depth)

    def _rec(
        self,
        pts: tuple[Element, ...],
        masks: tuple[int, ...],
        depth: int,
    ) -> MSOType:
        key = (pts, masks, depth)
        cache = self._cache
        found = cache.get(key)
        if found is not None:
            return found
        base = self._atomic(pts, masks)
        if depth == 0:
            result: MSOType = ("t0", base)
        elif depth == 1:
            # the hot path (every point move ends at depth 1): the
            # extension's rank-0 type is base | (one new block), so the
            # point-successor loop costs one block per domain element
            # instead of a full (n+1)-point retyping.
            n = len(pts)
            block = self._block(n, len(masks))
            shift = sum(self._block(j, len(masks))[2] for j in range(n))
            block_bits = self._block_bits
            point_successors = frozenset(
                ("t0", base | (block_bits(pts + (c,), block, masks) << shift))
                for c in self.domain
            )
            # A set chosen in the last round is only ever inspected
            # through the memberships of the current points, so Q and
            # Q ∩ points yield the same rank-0 type: it suffices to
            # range over submasks of the point mask.
            atomic = self._atomic
            set_successors = frozenset(
                ("t0", atomic(pts, masks + (q,)))
                for q in _submasks(self.mask_of(pts))
            )
            result = ("t", base, point_successors, set_successors)
        else:
            rec = self._rec
            point_successors = frozenset(
                rec(pts + (c,), masks, depth - 1) for c in self.domain
            )
            set_successors = frozenset(
                rec(pts, masks + (q,), depth - 1)
                for q in range(self._full_mask + 1)
            )
            result = ("t", base, point_successors, set_successors)
        cache[key] = result
        return result


def mso_type(
    structure: Structure,
    points: tuple[Element, ...],
    k: int,
    sets: tuple[frozenset[Element], ...] = (),
    context: TypeContext | None = None,
) -> MSOType:
    """The canonical rank-k type of ``(A, points)`` (extended by sets).

    ``context`` -- a :class:`TypeContext` for ``structure`` -- shares
    the memo across calls; omitted, a fresh context is built per call
    (the original behaviour).
    """
    if context is None:
        context = TypeContext(structure)
    elif context.structure is not structure:
        raise ValueError("context was built for a different structure")
    return context.type_of(tuple(points), k, tuple(sets))


def pointed_type(pointed: PointedStructure, k: int) -> MSOType:
    return mso_type(pointed.structure, pointed.points, k)


def equivalent(
    a: Structure,
    a_points: tuple[Element, ...],
    b: Structure,
    b_points: tuple[Element, ...],
    k: int,
) -> bool:
    """``(A, ā) ≡ᴹˢᴼ_k (B, b̄)`` via canonical types.

    Well-defined across structures because the canonical type mentions
    only positions, never raw domain elements.
    """
    if a.signature != b.signature:
        return False
    if len(a_points) != len(b_points):
        return False
    return mso_type(a, a_points, k) == mso_type(b, b_points, k)


def type_count_bound(signature, num_points: int, k: int) -> int:
    """A crude upper bound on the number of rank-k types.

    Used in documentation/tests to illustrate the state explosion the
    paper attributes to the MSO-to-FTA route: the bound is a tower of
    exponentials in k.
    """
    # number of possible atomic tags
    atoms = num_points * (num_points - 1) // 2
    for name in signature:
        atoms += num_points ** signature.arity(name)
    count = 2**atoms
    for _ in range(k):
        count = 2**atoms * 2**count * 2**count
        if count > 10**9:
            return count  # already astronomical; avoid bignum blowups
    return count
