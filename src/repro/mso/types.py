"""Rank-k MSO types (Section 2.3, Section 3).

The equivalence ``(A, ā) ≡ᴹˢᴼ_k (B, b̄)`` -- agreement on all MSO
formulae of quantifier depth at most k -- has finitely many classes
("k-types") for every k.  We compute a *canonical representative* of the
type in the Hintikka style:

    tp_0(A, ā, P̄)  =  the atomic type: equalities among ā, relation
                      facts over ā, memberships ā_i ∈ P_j;
    tp_k(A, ā, P̄)  =  ( tp_0,
                        { tp_{k-1}(A, ā·c, P̄)  :  c ∈ dom(A) },
                        { tp_{k-1}(A, ā, P̄·Q)  :  Q ⊆ dom(A) } ).

Two structures are k-equivalent iff their canonical types are equal --
the standard back-and-forth argument, which the Ehrenfeucht-Fraïssé
game implementation in :mod:`repro.mso.games` cross-checks in tests.
Computing tp_k costs O((|dom| + 2^|dom|)^k); it is used on the small
witness structures of the Theorem 4.5 construction, whose exponential
nature the paper states explicitly.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Hashable, Iterator

from ..structures.structure import Element, PointedStructure, Structure

MSOType = tuple  # canonical, hashable, comparable with ==


def atomic_type(
    structure: Structure,
    points: tuple[Element, ...],
    sets: tuple[frozenset[Element], ...] = (),
) -> frozenset:
    """The rank-0 type: everything atomic about the distinguished data.

    Entries are tags:
      ("eq", i, j)          -- points[i] == points[j]
      ("rel", R, (i, ...))  -- R(points[i], ...) holds
      ("in", i, j)          -- points[i] ∈ sets[j]
    """
    tags: set = set()
    n = len(points)
    for i in range(n):
        for j in range(i + 1, n):
            if points[i] == points[j]:
                tags.add(("eq", i, j))
    for name in structure.signature:
        arity = structure.signature.arity(name)
        for indices in product(range(n), repeat=arity):
            args = tuple(points[i] for i in indices)
            if structure.holds(name, *args):
                tags.add(("rel", name, indices))
    for i in range(n):
        for j, chosen in enumerate(sets):
            if points[i] in chosen:
                tags.add(("in", i, j))
    return frozenset(tags)


def _subsets(domain: list[Element]) -> Iterator[frozenset[Element]]:
    for r in range(len(domain) + 1):
        for combo in combinations(domain, r):
            yield frozenset(combo)


def mso_type(
    structure: Structure,
    points: tuple[Element, ...],
    k: int,
    sets: tuple[frozenset[Element], ...] = (),
) -> MSOType:
    """The canonical rank-k type of ``(A, points)`` (extended by sets)."""
    domain = sorted(structure.domain, key=repr)
    cache: dict = {}

    def rec(
        pts: tuple[Element, ...],
        chosen: tuple[frozenset[Element], ...],
        depth: int,
    ) -> MSOType:
        key = (pts, chosen, depth)
        if key in cache:
            return cache[key]
        base = atomic_type(structure, pts, chosen)
        if depth == 0:
            result: MSOType = ("t0", base)
        else:
            point_successors = frozenset(
                rec(pts + (c,), chosen, depth - 1) for c in domain
            )
            if depth == 1:
                # A set chosen in the last round is only ever inspected
                # through the memberships of the current points, so
                # Q and Q ∩ points yield the same rank-0 type: it
                # suffices to range over subsets of the points.
                candidates = _subsets(sorted(set(pts), key=repr))
            else:
                candidates = _subsets(domain)
            set_successors = frozenset(
                rec(pts, chosen + (q,), depth - 1) for q in candidates
            )
            result = ("t", base, point_successors, set_successors)
        cache[key] = result
        return result

    return rec(tuple(points), tuple(sets), k)


def pointed_type(pointed: PointedStructure, k: int) -> MSOType:
    return mso_type(pointed.structure, pointed.points, k)


def equivalent(
    a: Structure,
    a_points: tuple[Element, ...],
    b: Structure,
    b_points: tuple[Element, ...],
    k: int,
) -> bool:
    """``(A, ā) ≡ᴹˢᴼ_k (B, b̄)`` via canonical types.

    Well-defined across structures because the canonical type mentions
    only positions, never raw domain elements.
    """
    if a.signature != b.signature:
        return False
    if len(a_points) != len(b_points):
        return False
    return mso_type(a, a_points, k) == mso_type(b, b_points, k)


def type_count_bound(signature, num_points: int, k: int) -> int:
    """A crude upper bound on the number of rank-k types.

    Used in documentation/tests to illustrate the state explosion the
    paper attributes to the MSO-to-FTA route: the bound is a tower of
    exponentials in k.
    """
    # number of possible atomic tags
    atoms = num_points * (num_points - 1) // 2
    for name in signature:
        atoms += num_points ** signature.arity(name)
    count = 2**atoms
    for _ in range(k):
        count = 2**atoms * 2**count * 2**count
        if count > 10**9:
            return count  # already astronomical; avoid bignum blowups
    return count
