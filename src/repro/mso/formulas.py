"""The paper's MSO formulae, executably.

* :func:`three_colorability` -- the sentence of Section 5.1 over
  {e}-structures;
* :func:`primality` -- the unary query φ(x) of Example 2.6 over
  {fd, att, lh, rh}-structures;
* a handful of small quantifier-depth-1 queries used to exercise the
  generic Theorem 4.5 compiler end-to-end (the compiler is exponential
  in the depth, exactly as the paper says, so its tests stay at k = 1).
"""

from __future__ import annotations

from .syntax import (
    And,
    Eq,
    ExistsInd,
    ExistsSet,
    ForallInd,
    Formula,
    Implies,
    In,
    Not,
    Or,
    RelAtom,
    and_all,
    not_in,
    or_all,
)


def partition_three(r: str, g: str, b: str) -> Formula:
    """``Partition(R, G, B)`` from Section 5.1: every vertex is in exactly
    one of the three sets."""
    v = "v"
    return ForallInd(
        v,
        and_all(
            [
                or_all([In(v, r), In(v, g), In(v, b)]),
                Or(Not(In(v, r)), Not(In(v, g))),
                Or(Not(In(v, r)), Not(In(v, b))),
                Or(Not(In(v, g)), Not(In(v, b))),
            ]
        ),
    )


def three_colorability() -> Formula:
    """The MSO sentence for 3-Colorability (Section 5.1).

    ∃R∃G∃B [Partition(R,G,B) ∧ ∀v1∀v2 (e(v1,v2) →
        (¬R(v1) ∨ ¬R(v2)) ∧ (¬G(v1) ∨ ¬G(v2)) ∧ (¬B(v1) ∨ ¬B(v2)))]
    """
    v1, v2 = "v1", "v2"
    no_monochromatic_edge = ForallInd(
        v1,
        ForallInd(
            v2,
            Implies(
                RelAtom("e", (v1, v2)),
                and_all(
                    [
                        Or(Not(In(v1, "R")), Not(In(v2, "R"))),
                        Or(Not(In(v1, "G")), Not(In(v2, "G"))),
                        Or(Not(In(v1, "B")), Not(In(v2, "B"))),
                    ]
                ),
            ),
        ),
    )
    return ExistsSet(
        "R",
        ExistsSet(
            "G",
            ExistsSet("B", And(partition_three("R", "G", "B"), no_monochromatic_edge)),
        ),
    )


def closed(y: str) -> Formula:
    """``Closed(Y)`` from Example 2.6.

    ∀f [fd(f) → ∃b ((rh(b,f) ∧ b ∈ Y) ∨ (lh(b,f) ∧ b ∉ Y))]

    i.e. no FD witnesses non-closedness: either its right-hand side is
    already in Y, or some left-hand attribute is outside Y.
    """
    f, b = "f", "b"
    return ForallInd(
        f,
        Implies(
            RelAtom("fd", (f,)),
            ExistsInd(
                b,
                Or(
                    And(RelAtom("rh", (b, f)), In(b, y)),
                    And(RelAtom("lh", (b, f)), not_in(b, y)),
                ),
            ),
        ),
    )


def _all_attributes_subset(z: str) -> Formula:
    """``Z ⊆ R``: every member of Z is an attribute."""
    u = "u"
    return ForallInd(u, Implies(In(u, z), RelAtom("att", (u,))))


def _contains_y_and_x(z: str, y: str, x: str) -> Formula:
    """``Y ∪ {x} ⊆ Z``."""
    u = "u"
    return ForallInd(
        u, Implies(Or(In(u, y), Eq(u, x)), In(u, z))
    )


def _misses_some_attribute(z: str) -> Formula:
    """``Z ⊂ R``: some attribute is not in Z."""
    u = "u"
    return ExistsInd(u, And(RelAtom("att", (u,)), not_in(u, z)))


def primality(x: str = "x") -> Formula:
    """The unary primality query φ(x) of Example 2.6.

    φ(x) = ∃Y [ Y ⊆ R ∧ Closed(Y) ∧ x ∉ Y ∧ Closure(Y ∪ {x}, R) ]

    where Closure(Y∪{x}, R) unfolds to: no *closed* attribute set Z'
    sits properly between Y ∪ {x} and R.  (Closed(R) holds vacuously --
    the closure of a set of attributes is again a set of attributes --
    so the middle conjunct of the paper's Closure macro is dropped when
    Z = R.)  A guard ``att(x)`` keeps the query meaningful on the FD
    elements of the mixed domain.
    """
    y, z = "Y", "Zp"
    no_intermediate_closed_set = Not(
        ExistsSet(
            z,
            and_all(
                [
                    _contains_y_and_x(z, y, x),
                    _all_attributes_subset(z),
                    _misses_some_attribute(z),
                    closed(z),
                ]
            ),
        )
    )
    return And(
        RelAtom("att", (x,)),
        ExistsSet(
            y,
            and_all(
                [
                    _all_attributes_subset(y),
                    closed(y),
                    not_in(x, y),
                    no_intermediate_closed_set,
                ]
            ),
        ),
    )


# ----------------------------------------------------------------------
# Small depth-1 queries for the generic compiler's end-to-end tests
# ----------------------------------------------------------------------


def has_neighbor(x: str = "x") -> Formula:
    """``∃y e(x, y)`` -- depth 1, over graphs."""
    return ExistsInd("y", RelAtom("e", (x, "y")))


def isolated(x: str = "x") -> Formula:
    """``¬∃y (e(x, y) ∨ e(y, x))`` -- depth 1, over graphs."""
    return Not(
        ExistsInd("y", Or(RelAtom("e", (x, "y")), RelAtom("e", ("y", x))))
    )


def has_self_loop(x: str = "x") -> Formula:
    """``e(x, x)`` -- depth 0, over graphs."""
    return RelAtom("e", (x, x))


def some_edge() -> Formula:
    """``∃x∃y e(x, y)`` -- a depth-2 *sentence* over graphs."""
    return ExistsInd("x", ExistsInd("y", RelAtom("e", ("x", "y"))))


def in_some_left_hand_side(x: str = "x") -> Formula:
    """``∃f lh(x, f)`` -- depth 1, over schema structures."""
    return ExistsInd("f", RelAtom("lh", (x, "f")))
