"""Monadic second-order logic: abstract syntax (Section 2.3).

MSO extends first-order logic with *set variables* ranging over sets of
domain elements.  Individual variables are lower-case strings, set
variables upper-case strings (the paper's convention); the constructors
do not enforce the case but evaluation treats the two namespaces
separately.

Atomic formulae: relation atoms over individual terms, equality atoms,
and membership atoms ``x ∈ X``.  The set operators ``⊆``/``⊂`` that the
paper uses "with the obvious meaning" are provided as *sugar* that
desugars into quantified formulae (:func:`subset_eq`,
:func:`proper_subset`), so the quantifier depth -- the parameter ``k``
of the type machinery -- accounts for them uniformly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterator

# Individual terms: either a variable name (str) or a constant wrapper.


@dataclass(frozen=True)
class Const:
    """A constant individual term (a distinguished domain element)."""

    value: Hashable

    def __str__(self) -> str:
        return f"«{self.value}»"


IndividualTerm = str | Const


class Formula:
    """Base class; subclasses are frozen dataclasses."""

    def quantifier_depth(self) -> int:
        raise NotImplementedError

    def free_individual_vars(self) -> frozenset[str]:
        raise NotImplementedError

    def free_set_vars(self) -> frozenset[str]:
        raise NotImplementedError

    # -- operator sugar ------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def implies(self, other: "Formula") -> "Formula":
        return Implies(self, other)


def _term_vars(terms: tuple[IndividualTerm, ...]) -> frozenset[str]:
    return frozenset(t for t in terms if isinstance(t, str))


def _term_str(t: IndividualTerm) -> str:
    return t if isinstance(t, str) else str(t)


@dataclass(frozen=True)
class RelAtom(Formula):
    """``R(t1, ..., tn)`` over individual terms."""

    predicate: str
    args: tuple[IndividualTerm, ...]

    def quantifier_depth(self) -> int:
        return 0

    def free_individual_vars(self) -> frozenset[str]:
        return _term_vars(self.args)

    def free_set_vars(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(map(_term_str, self.args))})"


@dataclass(frozen=True)
class Eq(Formula):
    left: IndividualTerm
    right: IndividualTerm

    def quantifier_depth(self) -> int:
        return 0

    def free_individual_vars(self) -> frozenset[str]:
        return _term_vars((self.left, self.right))

    def free_set_vars(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return f"{_term_str(self.left)} = {_term_str(self.right)}"


@dataclass(frozen=True)
class In(Formula):
    """``t ∈ X`` -- membership of an individual term in a set variable."""

    term: IndividualTerm
    set_var: str

    def quantifier_depth(self) -> int:
        return 0

    def free_individual_vars(self) -> frozenset[str]:
        return _term_vars((self.term,))

    def free_set_vars(self) -> frozenset[str]:
        return frozenset({self.set_var})

    def __str__(self) -> str:
        return f"{_term_str(self.term)} ∈ {self.set_var}"


@dataclass(frozen=True)
class Not(Formula):
    body: Formula

    def quantifier_depth(self) -> int:
        return self.body.quantifier_depth()

    def free_individual_vars(self) -> frozenset[str]:
        return self.body.free_individual_vars()

    def free_set_vars(self) -> frozenset[str]:
        return self.body.free_set_vars()

    def __str__(self) -> str:
        return f"¬({self.body})"


class _BinaryConnective(Formula):
    left: Formula
    right: Formula
    symbol = "?"

    def quantifier_depth(self) -> int:
        return max(self.left.quantifier_depth(), self.right.quantifier_depth())

    def free_individual_vars(self) -> frozenset[str]:
        return self.left.free_individual_vars() | self.right.free_individual_vars()

    def free_set_vars(self) -> frozenset[str]:
        return self.left.free_set_vars() | self.right.free_set_vars()

    def __str__(self) -> str:
        return f"({self.left} {self.symbol} {self.right})"


@dataclass(frozen=True)
class And(_BinaryConnective):
    left: Formula
    right: Formula
    symbol = "∧"


@dataclass(frozen=True)
class Or(_BinaryConnective):
    left: Formula
    right: Formula
    symbol = "∨"


@dataclass(frozen=True)
class Implies(_BinaryConnective):
    left: Formula
    right: Formula
    symbol = "→"


@dataclass(frozen=True)
class Iff(_BinaryConnective):
    left: Formula
    right: Formula
    symbol = "↔"


class _Quantifier(Formula):
    var: str
    body: Formula
    symbol = "?"

    def quantifier_depth(self) -> int:
        return 1 + self.body.quantifier_depth()

    def __str__(self) -> str:
        return f"{self.symbol}{self.var}.({self.body})"


@dataclass(frozen=True)
class ExistsInd(_Quantifier):
    """First-order existential quantifier (point variable)."""

    var: str
    body: Formula
    symbol = "∃"

    def free_individual_vars(self) -> frozenset[str]:
        return self.body.free_individual_vars() - {self.var}

    def free_set_vars(self) -> frozenset[str]:
        return self.body.free_set_vars()


@dataclass(frozen=True)
class ForallInd(_Quantifier):
    var: str
    body: Formula
    symbol = "∀"

    def free_individual_vars(self) -> frozenset[str]:
        return self.body.free_individual_vars() - {self.var}

    def free_set_vars(self) -> frozenset[str]:
        return self.body.free_set_vars()


@dataclass(frozen=True)
class ExistsSet(_Quantifier):
    """Second-order existential quantifier (monadic set variable)."""

    var: str
    body: Formula
    symbol = "∃²"

    def free_individual_vars(self) -> frozenset[str]:
        return self.body.free_individual_vars()

    def free_set_vars(self) -> frozenset[str]:
        return self.body.free_set_vars() - {self.var}


@dataclass(frozen=True)
class ForallSet(_Quantifier):
    var: str
    body: Formula
    symbol = "∀²"

    def free_individual_vars(self) -> frozenset[str]:
        return self.body.free_individual_vars()

    def free_set_vars(self) -> frozenset[str]:
        return self.body.free_set_vars() - {self.var}


# ----------------------------------------------------------------------
# Helper constructors and sugar
# ----------------------------------------------------------------------

_fresh_counter = itertools.count()


def fresh_individual_var(hint: str = "u") -> str:
    return f"{hint}_{next(_fresh_counter)}"


def and_all(formulas: list[Formula]) -> Formula:
    if not formulas:
        return TRUE
    result = formulas[0]
    for f in formulas[1:]:
        result = And(result, f)
    return result


def or_all(formulas: list[Formula]) -> Formula:
    if not formulas:
        return FALSE
    result = formulas[0]
    for f in formulas[1:]:
        result = Or(result, f)
    return result


def subset_eq(x: str, y: str) -> Formula:
    """``X ⊆ Y`` desugared as ``∀u (u ∈ X → u ∈ Y)`` (depth 1)."""
    u = fresh_individual_var()
    return ForallInd(u, Implies(In(u, x), In(u, y)))


def proper_subset(x: str, y: str) -> Formula:
    """``X ⊂ Y``: containment plus a witness of strictness (depth 1)."""
    u = fresh_individual_var()
    v = fresh_individual_var()
    return And(
        ForallInd(u, Implies(In(u, x), In(u, y))),
        ExistsInd(v, And(In(v, y), Not(In(v, x)))),
    )


def not_in(term: IndividualTerm, set_var: str) -> Formula:
    return Not(In(term, set_var))


#: Quantifier-free valid/unsatisfiable formulas, used as neutral elements
#: of the n-ary connectives (constant comparison needs no domain lookup).
TRUE: Formula = Eq(Const("⊤"), Const("⊤"))
FALSE: Formula = Not(TRUE)
