"""repro: Monadic datalog over finite structures with bounded treewidth.

A full reproduction of Gottlob, Pichler & Wei (PODS 2007 / arXiv
0809.3140): the quasi-guarded monadic datalog evaluation pipeline
(Theorem 4.4), the generic MSO-to-datalog compiler (Theorem 4.5), the
hand-crafted 3-Colorability and PRIMALITY programs (Section 5), the
MSO-to-FTA baseline the paper argues against, and the Table 1
experiment harness -- on top of from-scratch substrates for finite
structures, tree decompositions, datalog and MSO.

See README.md for a tour and DESIGN.md for the system inventory.
"""

from . import (
    admission,
    bench,
    core,
    datalog,
    errors,
    fta,
    mso,
    problems,
    service,
    structures,
    treewidth,
)

__version__ = "1.0.0"

__all__ = [
    "admission",
    "bench",
    "core",
    "datalog",
    "errors",
    "fta",
    "mso",
    "problems",
    "service",
    "structures",
    "treewidth",
    "__version__",
]
