"""The generic MSO-to-monadic-datalog compiler (Theorem 4.5).

Every MSO-definable unary query over tau-structures of treewidth w is
definable in the quasi-guarded fragment of monadic datalog over tau_td.
The constructive proof enumerates MSO k-types (k = quantifier depth of
the query) of decomposition-shaped structures:

* Θ↑ ("bottom-up"): types of structures pointed at the *root* bag of a
  normalized tree decomposition.  Base case: all structures over a
  single full bag.  Induction: extend the decomposition upward by a
  permutation node, an element-replacement node, or a branch node
  (Lemma 3.5 guarantees the resulting type only depends on the child
  types and the bag data, so working on stored witnesses is sound).
* Θ↓ ("top-down"): types of structures pointed at a *leaf* bag,
  extended downward (Lemma 3.6).
* Element selection: gluing a Θ↑ witness onto a Θ↓ witness covers the
  whole structure; Lemma 3.7 makes the query answer a function of the
  two types, checked on the glued witness by direct MSO evaluation.

The compiler's working set is the **type algebra** of
:mod:`repro.core.typealg`: canonical k-types interned to dense type
ids (:class:`~repro.core.typealg.TypeTable`), one canonical *minimal*
witness per type id (a freshly registered witness is reduced -- greedy
deletion of non-bag elements with a type re-check -- sound because
rule emission only ever consults the type, per Lemmas 3.5/3.6), a
structure-scoped type memo shared across all typings of one witness,
and a worklist fixpoint over type ids whose induction steps are keyed
(and memoized) in step maps by ``(step, child type ids)`` -- the bag
data is part of the rank-0 component of the type, so the key needs
nothing else.  Three structural facts keep the fixpoint small:

* **One table serves both directions.**  Θ↑ and Θ↓ are the closure of
  the same base types under the same three type-level operations
  (permutation, replacement, bag-glued union), so the compiler builds
  the table once and emits the ``up``/``down`` rule families from the
  same step maps.
* **Glue candidates are bucketed by bag EDB.**  Two types can share a
  branch or selection node only if their rank-0 bag data agree
  (:attr:`~repro.core.typealg.TypeEntry.edb`), and the glued
  structure is symmetric in its arguments, so each *unordered*
  compatible pair is glued and typed exactly once.
* **Witness reduction bounds growth.**  Witness size is bounded by
  the minimal-representative closure of the type space instead of
  growing monotonically up the induction, which is what moves the
  practical envelope past width 1 (the width-2 grid-class compile is
  CI-gated via ``BENCH_compiler.json``).

After the fixpoint, the type table is **minimized** (``minimize=True``)
before rule emission: the coarsest partition of type ids that is a
congruence for every step map and agrees on the observable outcomes
(selection answers per partner class, or sentence acceptance) -- the
Myhill-Nerode construction over the type algebra, with the query as
the observation.  Merged types provably behave identically at every
node of every decomposition, so the emitted program over class ids
computes the same answers with often orders-of-magnitude fewer rules
(the full rank-k type space distinguishes far more than any one
depth-k query can observe).  ``minimize=False`` keeps one predicate
per raw type id for ablation and testing.

Every step emits one datalog rule; the result is quasi-guarded
(``bag(v, ...)`` is the guard; v1/v2 hang off v via child1/child2).
The program size is exponential in |φ| and w -- the paper says so
explicitly ("inevitably leads to programs of exponential size") and
Section 5 exists precisely because of it.  Practical instantiations
keep k and w tiny; the growth itself is measured in
``benchmarks/bench_state_explosion.py``.

For 0-ary queries (decision problems) the Θ↓ construction and the
element-selection step collapse to ``φ ← root(v), θ(v)`` rules -- the
simplification described after Corollary 4.6.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..datalog.ast import Atom, Literal, Program, Rule, Variable, pos
from ..datalog.guards import td_key_dependencies
from ..datalog.passes import (
    DEFAULT_PASSES,
    eliminate_recursion,
    normalize_passes,
)
from ..mso.eval import evaluate
from ..mso.syntax import Formula
from ..structures.signature import Signature
from ..structures.structure import Element, Fact, Structure
from .typealg import (
    CompilerLimitError,
    TypeAlgebra,
    TypeEntry,
    TypeTable,
    fold_partition,
)

ANSWER_PREDICATE = "phi"

#: the default stored-witness bound -- the honest envelope setting the
#: ``BENCH_compiler.json`` gates measure against (import it rather than
#: restating the literal)
DEFAULT_MAX_WITNESS_SIZE = 16

__all__ = [
    "ANSWER_PREDICATE",
    "DEFAULT_MAX_WITNESS_SIZE",
    "DEFAULT_PASSES",
    "CompiledQuery",
    "CompilerLimitError",
    "CompilerStats",
    "MSOToDatalogCompiler",
    "compile_sentence",
    "compile_unary_query",
    "grid_graph_filter",
    "undirected_graph_filter",
]


@dataclass(frozen=True)
class CompilerStats:
    """How hard one compile worked -- the ``BENCH_compiler.json`` shape.

    ``max_reduced_witness`` is the envelope measure: the largest
    witness *surviving* reduction into the type table (the old
    compiler's monotone growth is visible as ``max_witness_typed``,
    the largest glued/grown structure that had to be typed at all).
    ``up_classes`` / ``down_classes`` are the minimized predicate
    counts (equal to the raw type counts when ``minimize=False``).
    """

    up_types: int
    down_types: int
    up_classes: int
    down_classes: int
    rules: int
    type_computations: int
    max_witness_typed: int
    max_reduced_witness: int
    reductions: int
    elements_deleted: int
    glue_pairs: int
    #: minimized classes merged away by the ⊥-insensitive fold pass
    #: (0 when the pass is off)
    classes_folded: int = 0
    #: rule count of the final program after the pass pipeline
    #: (== ``rules`` when ``passes=()``)
    rules_after_passes: int = 0
    #: predicates the boundedness detector marked bounded (always 0 for
    #: the generic construction -- the identity permutation makes every
    #: Θ↑/Θ↓ class recursive; see :mod:`repro.datalog.passes`)
    bounded_predicates: int = 0


@dataclass
class CompiledQuery:
    """The output of the compiler, ready to run on encoded structures."""

    program: Program
    signature: Signature
    width: int
    quantifier_depth: int
    free_var: str | None  # None for sentences
    up_type_count: int
    down_type_count: int
    stats: CompilerStats | None = None
    #: the shrinking passes this program was compiled with -- part of
    #: every cache identity derived from the query (differently
    #: optimized variants are different programs with different
    #: fingerprints, and the solver keys its grounding preparation on
    #: the pass-dependent single-pass flag as well)
    passes: tuple[str, ...] = ()

    @property
    def is_sentence(self) -> bool:
        return self.free_var is None

    def dependencies(self):
        return td_key_dependencies(self.width + 2)

    def prepared(self, registry=None, cache=None):
        """Stratification + join plans for this program, fetched from
        (or added to) the compiled-program cache under this query's
        (fingerprint, signature, width) context -- the solver pre-warms
        through this so planning happens at construction, not first
        solve."""
        from ..datalog.backends import default_cache

        cache = cache if cache is not None else default_cache()
        return cache.prepared(
            self.program,
            registry,
            signature=str(self.signature),
            width=self.width,
        )


def _atom_patterns(
    signature: Signature, positions: int
) -> list[tuple[str, tuple[int, ...]]]:
    """Every (predicate, index-tuple) over ``positions`` bag slots --
    the index form of the paper's R(ā)."""
    patterns = []
    for name in signature:
        arity = signature.arity(name)
        for indices in itertools.product(range(positions), repeat=arity):
            patterns.append((name, indices))
    return patterns


def _facts_over(
    structure: Structure,
    bag: Sequence[Element],
    patterns: Iterable[tuple[str, tuple[int, ...]]],
) -> frozenset[tuple[str, tuple[int, ...]]]:
    """Which R(ā) patterns hold in the structure (as index patterns)."""
    present = set()
    for name, indices in patterns:
        if structure.holds(name, *(bag[i] for i in indices)):
            present.add((name, indices))
    return frozenset(present)


def _dense(keys: list) -> list[int]:
    """Map a list of hashable keys to dense ints by first occurrence."""
    ids: dict = {}
    out = []
    for key in keys:
        found = ids.get(key)
        if found is None:
            found = ids[key] = len(ids)
        out.append(found)
    return out


class MSOToDatalogCompiler:
    """Compile one MSO query for a fixed signature and treewidth.

    A worklist fixpoint over dense type ids: base types seed the shared
    :class:`~repro.core.typealg.TypeTable`, every induction step runs
    on the canonical minimal witnesses stored there, and the results
    land in step maps keyed by ``(child type ids, step data)`` --
    ``_perm``, ``_repl``, and ``_glue_map``/``_sel`` (the latter two
    keyed by the *unordered* id pair, since gluing is symmetric).
    Rule emission replays the maps through the (optionally minimized)
    class assignment.
    """

    def __init__(
        self,
        formula: Formula,
        signature: Signature,
        width: int,
        free_var: str | None = None,
        quantifier_depth: int | None = None,
        max_witness_size: int = DEFAULT_MAX_WITNESS_SIZE,
        max_types: int = 20000,
        structure_filter=None,
        minimize: bool = True,
        passes: Sequence[str] | None = None,
    ):
        if width < 1:
            raise ValueError("Theorem 4.5 assumes treewidth w >= 1")
        self.formula = formula
        self.signature = signature
        self.width = width
        self.free_var = free_var
        self.k = (
            quantifier_depth
            if quantifier_depth is not None
            else formula.quantifier_depth()
        )
        self.max_witness_size = max_witness_size
        self.max_types = max_types
        self.minimize = minimize
        #: the program-shrinking pipeline (``None`` -> the production
        #: default, both passes; ``()`` is the retained ablation)
        self.passes = normalize_passes(passes)
        #: Optional predicate restricting compilation to a *class* of
        #: structures (e.g. symmetric loop-free graphs).  Sound whenever
        #: the class is closed under induced substructures, which makes
        #: every structure arising in a decomposition of a class member
        #: (subtree structures and their bag-glued unions alike) a class
        #: member again -- any class defined by universal constraints on
        #: the relations qualifies.  Without it, the full generality of
        #: Theorem 4.5 applies -- and so does its full exponential type
        #: space.
        self.structure_filter = structure_filter
        self.patterns = _atom_patterns(signature, width + 1)
        self.algebra = TypeAlgebra(self.k, max_witness_size, structure_filter)
        self._table = TypeTable(max_types)
        self._canon_bag = tuple(range(width + 1))
        self._perms = tuple(itertools.permutations(range(width + 1)))
        #: replacement-step EDB deltas: every subset of the patterns
        #: that mention the replaced position 0 (static per compile,
        #: which is what keys the ``_repl`` map and the minimization
        #: signature)
        self._chosen_list = tuple(
            frozenset(c)
            for c in _powerset(
                [(name, idx) for name, idx in self.patterns if 0 in idx]
            )
        )
        # step maps (the memoized induction steps over type ids)
        self._base_ids: list[int] = []
        self._perm: dict[tuple[int, tuple[int, ...]], int] = {}
        self._repl: dict[tuple[int, frozenset], int] = {}
        self._glue_map: dict[tuple[int, int], int] = {}
        self._sel: dict[tuple[int, int], tuple[int, ...]] = {}
        self._answers_by_type: dict = {}
        self._bag_vars = tuple(Variable(f"X{i}") for i in range(width + 1))

    # ------------------------------------------------------------------
    # the type fixpoint
    # ------------------------------------------------------------------

    def _register_type(self, t, structure, bag) -> tuple[TypeEntry, bool]:
        """Intern type ``t``; a *new* type's witness is reduced to its
        minimal representative and stored in canonical coordinates."""
        entry = self._table.get(t)
        if entry is not None:
            return entry, False
        reduced = self.algebra.reduce(structure, bag, t)
        canon, cbag = self.algebra.canonicalize(reduced, bag)
        edb = _facts_over(canon, cbag, self.patterns)
        return self._table.add(t, canon, cbag, edb), True

    def _base_structures(self) -> Iterator[tuple[Structure, tuple[Element, ...]]]:
        bag = tuple(range(self.width + 1))
        for chosen in _powerset(self.patterns):
            facts = [
                Fact(name, tuple(bag[i] for i in indices))
                for name, indices in chosen
            ]
            structure = Structure(self.signature, bag).with_facts(facts)
            if self.structure_filter and not self.structure_filter(structure):
                continue
            yield structure, bag

    def _perm_steps(self, entry: TypeEntry) -> Iterator[TypeEntry]:
        """Bag permutation: re-point the stored witness (the shared
        per-structure type memo makes the ``(w+1)!`` re-typings cheap)."""
        type_of = self.algebra.type_of
        for perm in self._perms:
            new_bag = tuple(entry.bag[perm[i]] for i in range(self.width + 1))
            t = type_of(entry.structure, new_bag)
            result, new = self._register_type(t, entry.structure, new_bag)
            self._perm[(entry.type_id, perm)] = result.type_id
            if new:
                yield result

    def _repl_steps(self, entry: TypeEntry) -> Iterator[TypeEntry]:
        """Element replacement: position 0 of the bag is replaced by a
        fresh element, under every EDB delta on the new element."""
        fresh = len(entry.structure.domain)  # canonical coords: 0..n-1
        grown = entry.structure.with_elements([fresh])
        new_bag = (fresh,) + entry.bag[1:]
        structure_filter = self.structure_filter
        for chosen in self._chosen_list:
            facts = [
                Fact(name, tuple(new_bag[i] for i in indices))
                for name, indices in chosen
            ]
            structure = grown.with_facts(facts)
            if structure_filter and not structure_filter(structure):
                continue
            t = self.algebra.type_of(structure, new_bag, transient=True)
            result, new = self._register_type(t, structure, new_bag)
            self._repl[(entry.type_id, chosen)] = result.type_id
            if new:
                yield result

    def _glue_structures(self, a: TypeEntry, b: TypeEntry) -> Structure:
        """Union of two canonical witnesses overlapping exactly on the
        bag ``0..w``: ``b``'s non-bag elements are shifted past ``a``'s
        domain, facts are unioned -- no renaming maps, no validation
        beyond the Structure constructor."""
        w1 = self.width + 1
        off = len(a.structure.domain) - w1
        relations = {}
        for name in self.signature:
            merged = set(a.structure.relation(name))
            for tup in b.structure.relation(name):
                merged.add(tuple(x if x < w1 else x + off for x in tup))
            relations[name] = merged
        n = off + len(b.structure.domain)
        return Structure(self.signature, range(n), relations)

    def _answers_for(self, t, glued: Structure) -> tuple[int, ...]:
        """Selection answers for a glued witness, cached by its type
        (Lemma 3.7: the answer is a function of the type; φ has
        quantifier depth k, so its truth at a bag point is determined
        by the rank-k type)."""
        found = self._answers_by_type.get(t)
        if found is None:
            formula, free = self.formula, self.free_var
            found = tuple(
                i
                for i in range(self.width + 1)
                if evaluate(glued, formula, {free: i})
            )
            self._answers_by_type[t] = found
        return found

    def _glue_step(self, a: TypeEntry, b: TypeEntry) -> TypeEntry | None:
        """Glue one unordered pair of same-EDB types; records the branch
        result and (for unary queries) the selection answers."""
        glued = self._glue_structures(a, b)
        if self.structure_filter and not self.structure_filter(glued):
            return None
        t = self.algebra.type_of(glued, self._canon_bag, transient=True)
        result, new = self._register_type(t, glued, self._canon_bag)
        key = (a.type_id, b.type_id) if a.type_id <= b.type_id else (
            b.type_id,
            a.type_id,
        )
        self._glue_map[key] = result.type_id
        if self.free_var is not None:
            self._sel[key] = self._answers_for(t, glued)
        return result if new else None

    def build_table(self) -> None:
        """The worklist fixpoint: every type id is processed exactly
        once; glue partners are drawn from the processed entries of the
        same bag-EDB bucket, so each unordered compatible pair is
        attempted exactly once."""
        pending: deque[TypeEntry] = deque()
        for structure, bag in self._base_structures():
            t = self.algebra.type_of(structure, bag)
            entry, new = self._register_type(t, structure, bag)
            self._base_ids.append(entry.type_id)
            if new:
                pending.append(entry)
        buckets: dict[frozenset, list[TypeEntry]] = {}
        while pending:
            entry = pending.popleft()
            pending.extend(self._perm_steps(entry))
            pending.extend(self._repl_steps(entry))
            bucket = buckets.setdefault(entry.edb, [])
            bucket.append(entry)
            for other in bucket:  # includes ``entry`` itself
                fresh = self._glue_step(entry, other)
                if fresh is not None:
                    pending.append(fresh)

    # ------------------------------------------------------------------
    # type minimization (Myhill-Nerode over the type algebra)
    # ------------------------------------------------------------------

    def _minimize_classes(self, accept: dict[int, bool]) -> list[int]:
        """The coarsest partition of type ids that is a congruence for
        every step map and agrees on the observations.

        Starts from (bag EDB, acceptance) blocks and alternates two
        phases until stable: *bulk* refinement by signatures (each id's
        step results and glue/selection rows, with partners abstracted
        to their current classes), then a *determinization* check that
        every binary map is single-valued at the class level -- the
        aggregated rows of the bulk phase cannot see a "criss-cross"
        (two members covering the same result set via different
        pairings), so any residual class-level ambiguity is resolved by
        a targeted split of the partner class against a pivot member.
        The result is a congruence: merged types take every step to
        merged results and answer every selection context identically,
        which is exactly what rule emission over class ids needs.
        """
        n = len(self._table)
        entries = list(self._table)
        glue_adj: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        for (i, j), g in self._glue_map.items():
            glue_adj[i].append((j, g))
            if i != j:
                glue_adj[j].append((i, g))
        sel_adj: list[list[tuple[int, tuple]]] = [[] for _ in range(n)]
        for (i, j), answers in self._sel.items():
            sel_adj[i].append((j, answers))
            if i != j:
                sel_adj[j].append((i, answers))
        perm_map, repl_map = self._perm, self._repl
        perms, chosen_list = self._perms, self._chosen_list

        cls = _dense([(entries[i].edb, accept.get(i)) for i in range(n)])
        while True:
            while True:  # bulk refinement to a fixpoint
                sigs = []
                for i in range(n):
                    sigs.append(
                        (
                            cls[i],
                            tuple(cls[perm_map[i, p]] for p in perms),
                            tuple(
                                cls[repl_map[i, c]]
                                if (i, c) in repl_map
                                else -1
                                for c in chosen_list
                            ),
                            frozenset(
                                (cls[j], cls[g]) for j, g in glue_adj[i]
                            ),
                            frozenset((cls[j], a) for j, a in sel_adj[i]),
                        )
                    )
                refined = _dense(sigs)
                if refined == cls:
                    break
                cls = refined
            split = self._determinize_split(cls, glue_adj, sel_adj)
            if split is None:
                return cls
            cls = split

    def _determinize_split(self, cls, glue_adj, sel_adj) -> list[int] | None:
        """Find a class-level ambiguity in ``_glue_map`` / ``_sel`` and
        return a strictly finer partition that removes it, or ``None``
        when every binary map is deterministic over classes."""
        for table, value_of in (
            (self._glue_map, lambda g: cls[g]),
            (self._sel, lambda a: a),
        ):
            seen: dict[tuple[int, int], object] = {}
            for (i, j), result in table.items():
                a, b = cls[i], cls[j]
                key = (a, b) if a <= b else (b, a)
                value = value_of(result)
                prev = seen.setdefault(key, value)
                if prev != value:
                    return self._split_pair(
                        cls, key, glue_adj, sel_adj
                    )
        return None

    def _split_pair(self, cls, key, glue_adj, sel_adj) -> list[int]:
        """Split one side of an ambiguous class pair: some pivot member
        of one class must see two different outcomes across the other
        class's members (otherwise the pair would be deterministic), so
        partition the partner class by the pivot's outcome."""
        a_cls, b_cls = key
        members = [
            [i for i in range(len(cls)) if cls[i] == c]
            for c in (a_cls, b_cls)
        ]
        for pivot_side in (0, 1):
            partner_side = 1 - pivot_side
            for pivot in members[pivot_side]:
                rows: dict[int, object] = {}
                for j, g in glue_adj[pivot]:
                    rows[j] = ("glue", cls[g])
                for j, answers in sel_adj[pivot]:
                    rows[j] = (rows.get(j), answers)
                outcomes = {
                    u: rows.get(u) for u in members[partner_side]
                }
                if len(set(outcomes.values())) > 1:
                    # non-partner ids draw None; their cls[i] first
                    # component keeps them in their own classes
                    return _dense(
                        [(cls[i], outcomes.get(i)) for i in range(len(cls))]
                    )
        raise AssertionError(
            "ambiguous class pair with no splitting pivot -- "
            "minimization invariant violated"
        )

    # ------------------------------------------------------------------
    # ⊥-insensitive folding (the "fold" pass)
    # ------------------------------------------------------------------

    def _fold_classes(
        self, cls: list[int], accept: dict[int, bool]
    ) -> list[int]:
        """Merge classes whose differences are confined to ⊥ entries.

        Minimization keeps two classes apart when one has a step
        defined (a permutation/replacement result, a realized glue
        partner) where the other has none -- even if they agree
        everywhere both are defined.  Under a witness-faithful
        ``structure_filter`` (a filter-rejected step never occurs in
        any in-class input's decomposition -- the same assumption the
        emitted program's completeness already rests on, since rejected
        steps simply emit no rules), those ⊥ distinctions are
        unobservable, and the bag EDB itself need not be observed
        either: base and replacement rules carry their full signed EDB
        literals, so the rule that fires at a node is always the one
        for the realized bag data.  The remaining observables are the
        sentence acceptance bit and the selection answers, which seed
        and drive :func:`~repro.core.typealg.fold_partition` over the
        *class-level* step maps (single-valued by the congruence
        property of ``cls``)."""
        n_cls = max(cls) + 1 if cls else 0

        def put(table: dict, key, value) -> None:
            prev = table.setdefault(key, value)
            if prev != value:
                raise AssertionError(
                    "class-level step map not single-valued -- "
                    "minimization congruence violated"
                )

        perm_maps: dict = {p: {} for p in self._perms}
        for (i, p), j in self._perm.items():
            put(perm_maps[p], cls[i], cls[j])
        repl_maps: dict = {c: {} for c in self._chosen_list}
        for (i, c), j in self._repl.items():
            put(repl_maps[c], cls[i], cls[j])
        glue: dict[tuple[int, int], int] = {}
        sel: dict[tuple[int, int], tuple[int, ...]] = {}
        for (i, j), g in self._glue_map.items():
            a, b = cls[i], cls[j]
            put(glue, (a, b) if a <= b else (b, a), cls[g])
        for (i, j), answers in self._sel.items():
            a, b = cls[i], cls[j]
            put(sel, (a, b) if a <= b else (b, a), answers)

        observations: list = [None] * n_cls
        for i, accepted in accept.items():
            observations[cls[i]] = accepted

        fold = fold_partition(
            n_cls,
            observations,
            maps=tuple(perm_maps.values()) + tuple(repl_maps.values()),
            pair_maps=(glue,),
            pair_observations=(sel,),
        )
        return [fold[c] for c in cls]

    # ------------------------------------------------------------------
    # rule emission
    # ------------------------------------------------------------------

    def _edb_literals(
        self, present: frozenset[tuple[str, tuple[int, ...]]]
    ) -> list[Literal]:
        literals = []
        for name, indices in self.patterns:
            args = tuple(self._bag_vars[i] for i in indices)
            literals.append(Literal(Atom(name, args), (name, indices) in present))
        return literals

    def _emit(self, cls: list[int], accept: dict[int, bool]) -> Program:
        """Replay the step maps through the class assignment.

        Distinct type ids in one class replay to identical rules, which
        the dedup set collapses -- completeness and soundness of the
        class-level program are exactly the congruence property of
        ``cls`` (every member reaches the class's steps, and all
        members agree on every observation).
        """
        rules: list[Rule] = []
        rule_set: set[Rule] = set()

        def add(rule: Rule) -> None:
            if rule not in rule_set:
                rule_set.add(rule)
                rules.append(rule)

        unary = self.free_var is not None
        entry_of = self._table.entry_of
        bag_vars = self._bag_vars
        v, vc = Variable("V"), Variable("Vc")
        v1, v2 = Variable("V1"), Variable("V2")
        up = [f"up{c}" for c in cls]
        down = [f"down{c}" for c in cls]

        # base types: leaf rules (Θ↑) and root rules (Θ↓)
        for i in self._base_ids:
            edb = self._edb_literals(entry_of(i).edb)
            add(
                Rule(
                    Atom(up[i], (v,)),
                    (pos("bag", v, *bag_vars), pos("leaf", v), *edb),
                )
            )
            if unary:
                add(
                    Rule(
                        Atom(down[i], (v,)),
                        (pos("bag", v, *bag_vars), pos("root", v), *edb),
                    )
                )

        # permutation nodes: the node's bag is a reordering of the
        # neighbour's (child below for Θ↑, parent above for Θ↓)
        for (i, perm), j in self._perm.items():
            permuted = tuple(bag_vars[perm[p]] for p in range(self.width + 1))
            add(
                Rule(
                    Atom(up[j], (v,)),
                    (
                        pos("bag", v, *permuted),
                        pos("child1", vc, v),
                        pos(up[i], vc),
                        pos("bag", vc, *bag_vars),
                    ),
                )
            )
            if unary:
                add(
                    Rule(
                        Atom(down[j], (v,)),
                        (
                            pos("bag", v, *permuted),
                            pos("child1", v, vc),
                            pos(down[i], vc),
                            pos("bag", vc, *bag_vars),
                        ),
                    )
                )

        # element-replacement nodes: position 0 is fresh, the EDB over
        # the new bag is part of the result type's rank-0 data
        old_x0 = Variable("Xold0")
        neighbour_bag = (old_x0,) + bag_vars[1:]
        for (i, _chosen), j in self._repl.items():
            edb = self._edb_literals(entry_of(j).edb)
            add(
                Rule(
                    Atom(up[j], (v,)),
                    (
                        pos("bag", v, *bag_vars),
                        pos("child1", vc, v),
                        pos(up[i], vc),
                        pos("bag", vc, *neighbour_bag),
                        *edb,
                    ),
                )
            )
            if unary:
                add(
                    Rule(
                        Atom(down[j], (v,)),
                        (
                            pos("bag", v, *bag_vars),
                            pos("child1", v, vc),
                            pos(down[i], vc),
                            pos("bag", vc, *neighbour_bag),
                            *edb,
                        ),
                    )
                )

        # branch nodes, from the symmetric glue map: Θ↑ combines the
        # two children below; Θ↓ extends to a new leaf whose sibling
        # carries a Θ↑ type
        for (i, j), g in self._glue_map.items():
            ordered = ((i, j),) if i == j else ((i, j), (j, i))
            for a, b in ordered:
                add(
                    Rule(
                        Atom(up[g], (v,)),
                        (
                            pos("bag", v, *bag_vars),
                            pos("child1", v1, v),
                            pos(up[a], v1),
                            pos("child2", v2, v),
                            pos(up[b], v2),
                            pos("bag", v1, *bag_vars),
                            pos("bag", v2, *bag_vars),
                        ),
                    )
                )
                if unary:
                    for new_leaf, sibling in ((v1, v2), (v2, v1)):
                        add(
                            Rule(
                                Atom(down[g], (new_leaf,)),
                                (
                                    pos("bag", new_leaf, *bag_vars),
                                    pos("child1", v1, v),
                                    pos("child2", v2, v),
                                    pos(down[a], v),
                                    pos(up[b], sibling),
                                    pos("bag", v, *bag_vars),
                                    pos("bag", sibling, *bag_vars),
                                ),
                            )
                        )

        if unary:
            # element selection (Lemma 3.7): a node whose Θ↑ and Θ↓
            # types glue to an answer-bearing structure
            for (i, j), answers in self._sel.items():
                ordered = ((i, j),) if i == j else ((i, j), (j, i))
                for u_id, d_id in ordered:
                    for position in answers:
                        add(
                            Rule(
                                Atom(
                                    ANSWER_PREDICATE,
                                    (bag_vars[position],),
                                ),
                                (
                                    pos(up[u_id], v),
                                    pos(down[d_id], v),
                                    pos("bag", v, *bag_vars),
                                ),
                            )
                        )
        else:
            # decision-variant simplification: φ ← root(v), θ(v)
            for i, accepted in accept.items():
                if accepted:
                    add(
                        Rule(
                            Atom(ANSWER_PREDICATE, ()),
                            (pos("root", v), pos(up[i], v)),
                        )
                    )
        return Program(rules)

    # ------------------------------------------------------------------

    def compile(self) -> CompiledQuery:
        self.build_table()
        accept: dict[int, bool] = {}
        if self.free_var is None:
            accept = {
                entry.type_id: bool(evaluate(entry.structure, self.formula))
                for entry in self._table
            }
        if self.minimize:
            cls = self._minimize_classes(accept)
        else:
            cls = list(range(len(self._table)))
        n_classes = len(set(cls))

        assign = cls
        classes_folded = 0
        if "fold" in self.passes:
            assign = self._fold_classes(cls, accept)
            classes_folded = n_classes - len(set(assign))
        program = self._emit(assign, accept)
        if classes_folded:
            # the pre-pass rule count backs the fold-only-shrinks gate
            rules_emitted = len(self._emit(cls, accept))
        else:
            rules_emitted = len(program)

        bounded_count = 0
        if "unfold" in self.passes:
            program, unfold_report = eliminate_recursion(
                program, keep=frozenset((ANSWER_PREDICATE,))
            )
            bounded_count = len(unfold_report.bounded)

        n_emitted = len(set(assign))
        astats = self.algebra.stats
        is_sentence = self.free_var is None
        stats = CompilerStats(
            up_types=len(self._table),
            down_types=0 if is_sentence else len(self._table),
            up_classes=n_emitted,
            down_classes=0 if is_sentence else n_emitted,
            rules=rules_emitted,
            type_computations=astats.type_computations,
            max_witness_typed=astats.max_witness_typed,
            max_reduced_witness=astats.max_reduced_witness,
            reductions=astats.reductions,
            elements_deleted=astats.elements_deleted,
            glue_pairs=len(self._glue_map),
            classes_folded=classes_folded,
            rules_after_passes=len(program),
            bounded_predicates=bounded_count,
        )
        return CompiledQuery(
            program=program,
            signature=self.signature,
            width=self.width,
            quantifier_depth=self.k,
            free_var=self.free_var,
            up_type_count=len(self._table),
            down_type_count=0 if is_sentence else len(self._table),
            stats=stats,
            passes=self.passes,
        )


def _powerset(items):
    from .._util import powerset

    return powerset(items)


def undirected_graph_filter(structure: Structure) -> bool:
    """Restrict compilation to symmetric, loop-free {e}-structures.

    The class of (encodings of) undirected simple graphs is closed under
    induced substructures and bag-glued unions, so compiling relative to
    it is sound; it shrinks the type space from the astronomically many
    directed-graph types to a handful.
    """
    edges = structure.relation("e")
    for u, v in edges:
        if u == v or (v, u) not in edges:
            return False
    return True


def grid_graph_filter(structure: Structure) -> bool:
    """Restrict compilation to the grid class: symmetric, loop-free,
    triangle-free {e}-structures of maximum degree 3.

    Every induced subgraph of a 2 x n grid (ladder) graph satisfies all
    three constraints, and the class is closed under induced
    substructures (each constraint is universal), so compiling relative
    to it is sound for ladder inputs -- the width-2 grid family of the
    solver benchmarks.  Rejecting out-of-class glues additionally keeps
    the fixpoint inside the class (a branch/selection structure of an
    in-class input is an induced subgraph of that input), which is what
    makes the width-2 type space practical: the rank-1 type count drops
    from ~1000 (all undirected graphs) to a few hundred, and the
    minimized program to a few hundred rules.
    """
    edges = structure.relation("e")
    degree: dict = {}
    for u, v in edges:
        if u == v or (v, u) not in edges:
            return False
        count = degree.get(u, 0) + 1
        if count > 3:
            return False
        degree[u] = count
    for u, v in edges:
        for x, y in edges:
            if x == v and y != u and (y, u) in edges:
                return False  # triangle u-v-y
    return True


def compile_unary_query(
    formula: Formula,
    signature: Signature,
    width: int,
    free_var: str = "x",
    quantifier_depth: int | None = None,
    max_witness_size: int = DEFAULT_MAX_WITNESS_SIZE,
    max_types: int = 20000,
    structure_filter=None,
    minimize: bool = True,
    passes: Sequence[str] | None = None,
) -> CompiledQuery:
    """Theorem 4.5 for a unary query φ(x)."""
    return MSOToDatalogCompiler(
        formula,
        signature,
        width,
        free_var=free_var,
        quantifier_depth=quantifier_depth,
        max_witness_size=max_witness_size,
        max_types=max_types,
        structure_filter=structure_filter,
        minimize=minimize,
        passes=passes,
    ).compile()


def compile_sentence(
    formula: Formula,
    signature: Signature,
    width: int,
    quantifier_depth: int | None = None,
    max_witness_size: int = DEFAULT_MAX_WITNESS_SIZE,
    max_types: int = 20000,
    structure_filter=None,
    minimize: bool = True,
    passes: Sequence[str] | None = None,
) -> CompiledQuery:
    """Theorem 4.5's decision variant for a sentence φ."""
    return MSOToDatalogCompiler(
        formula,
        signature,
        width,
        free_var=None,
        quantifier_depth=quantifier_depth,
        max_witness_size=max_witness_size,
        max_types=max_types,
        structure_filter=structure_filter,
        minimize=minimize,
        passes=passes,
    ).compile()
