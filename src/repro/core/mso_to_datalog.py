"""The generic MSO-to-monadic-datalog compiler (Theorem 4.5).

Every MSO-definable unary query over tau-structures of treewidth w is
definable in the quasi-guarded fragment of monadic datalog over tau_td.
The constructive proof enumerates MSO k-types (k = quantifier depth of
the query) of decomposition-shaped structures:

* Θ↑ ("bottom-up"): types of structures pointed at the *root* bag of a
  normalized tree decomposition.  Base case: all structures over a
  single full bag.  Induction: extend the decomposition upward by a
  permutation node, an element-replacement node, or a branch node
  (Lemma 3.5 guarantees the resulting type only depends on the child
  types and the bag data, so working on stored witnesses is sound).
* Θ↓ ("top-down"): types of structures pointed at a *leaf* bag,
  extended downward (Lemma 3.6).
* Element selection: gluing a Θ↑ witness onto a Θ↓ witness covers the
  whole structure; Lemma 3.7 makes the query answer a function of the
  two types, checked on the glued witness by direct MSO evaluation.

Every step emits one datalog rule; the result is quasi-guarded
(``bag(v, ...)`` is the guard; v1/v2 hang off v via child1/child2).
The program size is exponential in |φ| and w -- the paper says so
explicitly ("inevitably leads to programs of exponential size") and
Section 5 exists precisely because of it.  Practical instantiations
keep k and w tiny; the growth itself is measured in
``benchmarks/bench_state_explosion.py``.

For 0-ary queries (decision problems) the Θ↓ construction and the
element-selection step collapse to ``φ ← root(v), θ(v)`` rules -- the
simplification described after Corollary 4.6.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..datalog.ast import Atom, Literal, Program, Rule, Variable, atom, neg, pos
from ..datalog.guards import td_key_dependencies
from ..mso.eval import evaluate
from ..mso.syntax import Formula
from ..mso.types import MSOType, mso_type
from ..structures.signature import Signature
from ..structures.structure import Element, Fact, Structure

ANSWER_PREDICATE = "phi"


class CompilerLimitError(RuntimeError):
    """Witness structures outgrew the configured bound.

    The construction is exponential; this error is the honest signal
    that the requested (signature, w, k) combination is out of the
    practical envelope -- precisely the regime where the paper switches
    to the hand-crafted Section 5 programs.
    """


@dataclass(frozen=True)
class TypeEntry:
    """A k-type with its witness ``(A, bag)``."""

    name: str
    structure: Structure
    bag: tuple[Element, ...]


@dataclass
class CompiledQuery:
    """The output of the compiler, ready to run on encoded structures."""

    program: Program
    signature: Signature
    width: int
    quantifier_depth: int
    free_var: str | None  # None for sentences
    up_type_count: int
    down_type_count: int

    @property
    def is_sentence(self) -> bool:
        return self.free_var is None

    def dependencies(self):
        return td_key_dependencies(self.width + 2)

    def prepared(self, registry=None, cache=None):
        """Stratification + join plans for this program, fetched from
        (or added to) the compiled-program cache under this query's
        (fingerprint, signature, width) context -- the solver pre-warms
        through this so planning happens at construction, not first
        solve."""
        from ..datalog.backends import default_cache

        cache = cache if cache is not None else default_cache()
        return cache.prepared(
            self.program,
            registry,
            signature=str(self.signature),
            width=self.width,
        )


def _atom_patterns(
    signature: Signature, positions: int
) -> list[tuple[str, tuple[int, ...]]]:
    """Every (predicate, index-tuple) over ``positions`` bag slots --
    the index form of the paper's R(ā)."""
    patterns = []
    for name in signature:
        arity = signature.arity(name)
        for indices in itertools.product(range(positions), repeat=arity):
            patterns.append((name, indices))
    return patterns


def _facts_over(
    structure: Structure,
    bag: Sequence[Element],
    patterns: Iterable[tuple[str, tuple[int, ...]]],
) -> frozenset[tuple[str, tuple[int, ...]]]:
    """Which R(ā) patterns hold in the structure (as index patterns)."""
    present = set()
    for name, indices in patterns:
        if structure.holds(name, *(bag[i] for i in indices)):
            present.add((name, indices))
    return frozenset(present)


class MSOToDatalogCompiler:
    """Compile one MSO query for a fixed signature and treewidth."""

    def __init__(
        self,
        formula: Formula,
        signature: Signature,
        width: int,
        free_var: str | None = None,
        quantifier_depth: int | None = None,
        max_witness_size: int = 16,
        max_types: int = 20000,
        structure_filter=None,
    ):
        if width < 1:
            raise ValueError("Theorem 4.5 assumes treewidth w >= 1")
        self.formula = formula
        self.signature = signature
        self.width = width
        self.free_var = free_var
        self.k = (
            quantifier_depth
            if quantifier_depth is not None
            else formula.quantifier_depth()
        )
        self.max_witness_size = max_witness_size
        self.max_types = max_types
        #: Optional predicate restricting compilation to a *class* of
        #: structures (e.g. symmetric loop-free graphs).  Sound whenever
        #: the class is closed under induced substructures and under the
        #: bag-glued unions of the construction, which holds for any
        #: class defined by a universal constraint on the relations.
        #: Without it, the full generality of Theorem 4.5 applies -- and
        #: so does its full exponential type space.
        self.structure_filter = structure_filter
        self.patterns = _atom_patterns(signature, width + 1)
        self._up: dict[MSOType, TypeEntry] = {}
        self._down: dict[MSOType, TypeEntry] = {}
        self._rules: list[Rule] = []
        self._rule_set: set[Rule] = set()
        self._fresh = itertools.count(width + 1)
        self._bag_vars = tuple(Variable(f"X{i}") for i in range(width + 1))

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------

    def _type_of(self, structure: Structure, bag: tuple[Element, ...]) -> MSOType:
        if len(structure.domain) > self.max_witness_size:
            raise CompilerLimitError(
                f"witness grew to {len(structure.domain)} elements "
                f"(limit {self.max_witness_size}); signature/width/depth "
                "combination is outside the practical envelope of the "
                "generic construction"
            )
        return mso_type(structure, bag, self.k)

    def _register(
        self,
        table: dict[MSOType, TypeEntry],
        prefix: str,
        structure: Structure,
        bag: tuple[Element, ...],
    ) -> tuple[TypeEntry, bool]:
        t = self._type_of(structure, bag)
        entry = table.get(t)
        if entry is not None:
            return entry, False
        if len(table) >= self.max_types:
            raise CompilerLimitError(
                f"more than {self.max_types} {prefix}-types; the "
                "(signature, width, depth) combination is outside the "
                "practical envelope -- consider a structure_filter"
            )
        entry = TypeEntry(f"{prefix}{len(table)}", structure, bag)
        table[t] = entry
        return entry, True

    def _add_rule(self, rule: Rule) -> None:
        if rule not in self._rule_set:
            self._rule_set.add(rule)
            self._rules.append(rule)

    def _edb_literals(
        self, present: frozenset[tuple[str, tuple[int, ...]]]
    ) -> list[Literal]:
        literals = []
        for name, indices in self.patterns:
            args = tuple(self._bag_vars[i] for i in indices)
            literals.append(Literal(Atom(name, args), (name, indices) in present))
        return literals

    def _fresh_element(self) -> int:
        return next(self._fresh)

    def _rename_disjoint(
        self, keep: Structure, entry: TypeEntry, onto: tuple[Element, ...]
    ) -> Structure:
        """Rename ``entry``'s witness: its bag onto ``onto``, every other
        element to something fresh w.r.t. ``keep``."""
        mapping: dict[Element, Element] = dict(zip(entry.bag, onto))
        for element in sorted(entry.structure.domain, key=repr):
            if element not in mapping:
                fresh = self._fresh_element()
                while fresh in keep.domain:
                    fresh = self._fresh_element()
                mapping[element] = fresh
        return entry.structure.renamed(mapping)

    # ------------------------------------------------------------------
    # Θ↑ construction
    # ------------------------------------------------------------------

    def _base_structures(self) -> Iterator[tuple[Structure, tuple[Element, ...]]]:
        bag = tuple(range(self.width + 1))
        for chosen in _powerset(self.patterns):
            facts = [
                Fact(name, tuple(bag[i] for i in indices))
                for name, indices in chosen
            ]
            structure = Structure(self.signature, bag).with_facts(facts)
            if self.structure_filter and not self.structure_filter(structure):
                continue
            yield structure, bag

    def _saturate(
        self,
        table: dict[MSOType, TypeEntry],
        prefix: str,
        base_rule: "callable",
        unary_steps: "list[callable]",
        branch_step: "callable",
    ) -> None:
        pending: list[TypeEntry] = []
        for structure, bag in self._base_structures():
            entry, new = self._register(table, prefix, structure, bag)
            base_rule(entry, structure, bag)
            if new:
                pending.append(entry)
        processed: list[TypeEntry] = []
        while pending:
            entry = pending.pop(0)
            processed.append(entry)
            for step in unary_steps:
                for fresh_entry in step(entry):
                    pending.append(fresh_entry)
            for other in list(processed):
                for fresh_entry in branch_step(entry, other):
                    pending.append(fresh_entry)
                if other is not entry:
                    for fresh_entry in branch_step(other, entry):
                        pending.append(fresh_entry)

    # -- Θ↑ steps ---------------------------------------------------------

    def _up_base_rule(self, entry, structure, bag) -> None:
        present = _facts_over(structure, bag, self.patterns)
        self._add_rule(
            Rule(
                Atom(entry.name, (Variable("V"),)),
                (
                    pos("bag", Variable("V"), *self._bag_vars),
                    pos("leaf", Variable("V")),
                    *self._edb_literals(present),
                ),
            )
        )

    def _up_permutation(self, child: TypeEntry) -> Iterator[TypeEntry]:
        for perm in itertools.permutations(range(self.width + 1)):
            new_bag = tuple(child.bag[perm[i]] for i in range(self.width + 1))
            entry, new = self._register(
                self._up, "up", child.structure, new_bag
            )
            v, vc = Variable("V"), Variable("Vc")
            self._add_rule(
                Rule(
                    Atom(entry.name, (v,)),
                    (
                        pos("bag", v, *(self._bag_vars[perm[i]] for i in range(self.width + 1))),
                        pos("child1", vc, v),
                        pos(child.name, vc),
                        pos("bag", vc, *self._bag_vars),
                    ),
                )
            )
            if new:
                yield entry

    def _up_replacement(self, child: TypeEntry) -> Iterator[TypeEntry]:
        yield from self._replacement(child, self._up, "up", upward=True)

    def _replacement(
        self,
        child: TypeEntry,
        table: dict[MSOType, TypeEntry],
        prefix: str,
        upward: bool,
    ) -> Iterator[TypeEntry]:
        """Element replacement, shared by Θ↑ and Θ↓ (the new node is the
        parent when ``upward`` else the child, but the structure growth
        and the EDB-literal block are identical)."""
        fresh = self._fresh_element()
        while fresh in child.structure.domain:
            fresh = self._fresh_element()
        new_bag = (fresh,) + child.bag[1:]
        grown = child.structure.with_elements([fresh])
        candidate_patterns = [
            (name, indices) for name, indices in self.patterns if 0 in indices
        ]
        for chosen in _powerset(candidate_patterns):
            facts = [
                Fact(name, tuple(new_bag[i] for i in indices))
                for name, indices in chosen
            ]
            structure = grown.with_facts(facts)
            if self.structure_filter and not self.structure_filter(structure):
                continue
            entry, new = self._register(table, prefix, structure, new_bag)
            present = _facts_over(structure, new_bag, self.patterns)
            v, vc = Variable("V"), Variable("Vc")
            old_x0 = Variable("Xold0")
            child_bag_vars = (old_x0,) + self._bag_vars[1:]
            if upward:
                tree_edge = pos("child1", vc, v)
            else:
                tree_edge = pos("child1", v, vc)
            self._add_rule(
                Rule(
                    Atom(entry.name, (v,)),
                    (
                        pos("bag", v, *self._bag_vars),
                        tree_edge,
                        pos(child.name, vc),
                        pos("bag", vc, *child_bag_vars),
                        *self._edb_literals(present),
                    ),
                )
            )
            if new:
                yield entry

    def _up_branch(
        self, first: TypeEntry, second: TypeEntry
    ) -> Iterator[TypeEntry]:
        glued = self._glue(first, second)
        if glued is None:
            return
        entry, new = self._register(self._up, "up", glued, first.bag)
        v, v1, v2 = Variable("V"), Variable("V1"), Variable("V2")
        self._add_rule(
            Rule(
                Atom(entry.name, (v,)),
                (
                    pos("bag", v, *self._bag_vars),
                    pos("child1", v1, v),
                    pos(first.name, v1),
                    pos("child2", v2, v),
                    pos(second.name, v2),
                    pos("bag", v1, *self._bag_vars),
                    pos("bag", v2, *self._bag_vars),
                ),
            )
        )
        if new:
            yield entry

    def _glue(self, first: TypeEntry, second: TypeEntry) -> Structure | None:
        """Rename ``second`` onto ``first``'s bag and union, provided the
        bag EDBs agree (the paper's consistency check)."""
        renamed = self._rename_disjoint(first.structure, second, first.bag)
        first_edb = _facts_over(first.structure, first.bag, self.patterns)
        second_edb = _facts_over(renamed, first.bag, self.patterns)
        if first_edb != second_edb:
            return None
        return first.structure.disjoint_union(renamed)

    def build_up(self) -> None:
        self._saturate(
            self._up,
            "up",
            self._up_base_rule,
            [self._up_permutation, self._up_replacement],
            self._up_branch,
        )

    # ------------------------------------------------------------------
    # Θ↓ construction
    # ------------------------------------------------------------------

    def _down_base_rule(self, entry, structure, bag) -> None:
        present = _facts_over(structure, bag, self.patterns)
        self._add_rule(
            Rule(
                Atom(entry.name, (Variable("V"),)),
                (
                    pos("bag", Variable("V"), *self._bag_vars),
                    pos("root", Variable("V")),
                    *self._edb_literals(present),
                ),
            )
        )

    def _down_permutation(self, parent: TypeEntry) -> Iterator[TypeEntry]:
        for perm in itertools.permutations(range(self.width + 1)):
            new_bag = tuple(parent.bag[perm[i]] for i in range(self.width + 1))
            entry, new = self._register(
                self._down, "down", parent.structure, new_bag
            )
            v, vp = Variable("V"), Variable("Vc")
            self._add_rule(
                Rule(
                    Atom(entry.name, (v,)),
                    (
                        pos("bag", v, *(self._bag_vars[perm[i]] for i in range(self.width + 1))),
                        pos("child1", v, vp),
                        pos(parent.name, vp),
                        pos("bag", vp, *self._bag_vars),
                    ),
                )
            )
            if new:
                yield entry

    def _down_replacement(self, parent: TypeEntry) -> Iterator[TypeEntry]:
        yield from self._replacement(parent, self._down, "down", upward=False)

    def _down_branch(
        self, down_entry: TypeEntry, up_entry: TypeEntry
    ) -> Iterator[TypeEntry]:
        """Attach an Θ↑ subtree as a sibling: the new leaf s1 sees the
        whole of ``down_entry``'s structure plus ``up_entry``'s."""
        glued = self._glue(down_entry, up_entry)
        if glued is None:
            return
        entry, new = self._register(self._down, "down", glued, down_entry.bag)
        v, v1, v2 = Variable("V"), Variable("V1"), Variable("V2")
        for new_leaf, sibling in ((v1, v2), (v2, v1)):
            self._add_rule(
                Rule(
                    Atom(entry.name, (new_leaf,)),
                    (
                        pos("bag", new_leaf, *self._bag_vars),
                        pos("child1", v1, v),
                        pos("child2", v2, v),
                        pos(down_entry.name, v),
                        pos(up_entry.name, sibling),
                        pos("bag", v, *self._bag_vars),
                        pos("bag", sibling, *self._bag_vars),
                    ),
                )
            )
        if new:
            yield entry

    def build_down(self) -> None:
        pending: list[TypeEntry] = []
        for structure, bag in self._base_structures():
            entry, new = self._register(self._down, "down", structure, bag)
            self._down_base_rule(entry, structure, bag)
            if new:
                pending.append(entry)
        processed: list[TypeEntry] = []
        up_entries = list(self._up.values())
        while pending:
            entry = pending.pop(0)
            processed.append(entry)
            for step in (self._down_permutation, self._down_replacement):
                pending.extend(step(entry))
            for up_entry in up_entries:
                pending.extend(self._down_branch(entry, up_entry))

    # ------------------------------------------------------------------
    # Answer rules
    # ------------------------------------------------------------------

    def build_selection(self) -> None:
        """Element selection (part 3 of the proof): glue each Θ↑ type to
        each Θ↓ type and test the query on the combined witness."""
        v = Variable("V")
        for up_entry in self._up.values():
            for down_entry in self._down.values():
                glued = self._glue(up_entry, down_entry)
                if glued is None:
                    continue
                for i, element in enumerate(up_entry.bag):
                    if evaluate(glued, self.formula, {self.free_var: element}):
                        self._add_rule(
                            Rule(
                                Atom(ANSWER_PREDICATE, (self._bag_vars[i],)),
                                (
                                    pos(up_entry.name, v),
                                    pos(down_entry.name, v),
                                    pos("bag", v, *self._bag_vars),
                                ),
                            )
                        )

    def build_sentence_rules(self) -> None:
        """Decision-variant simplification: φ ← root(v), θ(v)."""
        v = Variable("V")
        for t, entry in self._up.items():
            if evaluate(entry.structure, self.formula):
                self._add_rule(
                    Rule(
                        Atom(ANSWER_PREDICATE, ()),
                        (pos("root", v), pos(entry.name, v)),
                    )
                )

    # ------------------------------------------------------------------

    def compile(self) -> CompiledQuery:
        self.build_up()
        if self.free_var is None:
            self.build_sentence_rules()
        else:
            self.build_down()
            self.build_selection()
        program = Program(self._rules)
        return CompiledQuery(
            program=program,
            signature=self.signature,
            width=self.width,
            quantifier_depth=self.k,
            free_var=self.free_var,
            up_type_count=len(self._up),
            down_type_count=len(self._down),
        )


def _powerset(items):
    from .._util import powerset

    return powerset(items)


def undirected_graph_filter(structure: Structure) -> bool:
    """Restrict compilation to symmetric, loop-free {e}-structures.

    The class of (encodings of) undirected simple graphs is closed under
    induced substructures and bag-glued unions, so compiling relative to
    it is sound; it shrinks the type space from the astronomically many
    directed-graph types to a handful.
    """
    edges = structure.relation("e")
    for u, v in edges:
        if u == v or (v, u) not in edges:
            return False
    return True


def compile_unary_query(
    formula: Formula,
    signature: Signature,
    width: int,
    free_var: str = "x",
    quantifier_depth: int | None = None,
    max_witness_size: int = 16,
    max_types: int = 20000,
    structure_filter=None,
) -> CompiledQuery:
    """Theorem 4.5 for a unary query φ(x)."""
    return MSOToDatalogCompiler(
        formula,
        signature,
        width,
        free_var=free_var,
        quantifier_depth=quantifier_depth,
        max_witness_size=max_witness_size,
        max_types=max_types,
        structure_filter=structure_filter,
    ).compile()


def compile_sentence(
    formula: Formula,
    signature: Signature,
    width: int,
    quantifier_depth: int | None = None,
    max_witness_size: int = 16,
    max_types: int = 20000,
    structure_filter=None,
) -> CompiledQuery:
    """Theorem 4.5's decision variant for a sentence φ."""
    return MSOToDatalogCompiler(
        formula,
        signature,
        width,
        free_var=None,
        quantifier_depth=quantifier_depth,
        max_witness_size=max_witness_size,
        max_types=max_types,
        structure_filter=structure_filter,
    ).compile()
