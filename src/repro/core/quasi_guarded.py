"""The Theorem 4.4 evaluation pipeline.

A quasi-guarded program P over a structure A is evaluated in
O(|P| * |A|): instantiate each rule's guard against the database (at
most |A| instantiations, each determining every variable of the rule),
then solve the resulting ground program by linear-time unit resolution.
This module packages the two halves
(:mod:`repro.datalog.grounding` + :mod:`repro.datalog.horn`) behind a
checked facade and is what the generic Theorem 4.5 programs run on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.ast import Program
from ..datalog.backends import ProgramCache, default_cache
from ..datalog.builtins import BuiltinRegistry
from ..datalog.evaluate import Database
from ..datalog.grounding import GroundingStats, evaluate_via_grounding
from ..datalog.guards import KeyDependency, is_quasi_guarded, td_key_dependencies
from ..structures.structure import Fact, Structure


@dataclass
class QuasiGuardedResult:
    facts: frozenset[Fact]
    ground_rules: int

    def holds(self, predicate: str, *args) -> bool:
        return Fact(predicate, tuple(args)) in self.facts

    def unary_answers(self, predicate: str) -> frozenset:
        return frozenset(
            f.args[0] for f in self.facts if f.predicate == predicate
        )


class QuasiGuardedEvaluator:
    """Evaluate a quasi-guarded program per Theorem 4.4.

    ``dependencies`` are the key constraints used to witness functional
    dependence (Definition 4.3); they default to the ``A_td``
    constraints for the given bag arity.
    """

    def __init__(
        self,
        program: Program,
        bag_arity: int | None = None,
        dependencies: tuple[KeyDependency, ...] | None = None,
        registry: BuiltinRegistry | None = None,
        require_quasi_guarded: bool = True,
        cache: ProgramCache | None = None,
    ):
        self.program = program
        if dependencies is None:
            dependencies = (
                td_key_dependencies(bag_arity) if bag_arity is not None else ()
            )
        self.dependencies = dependencies
        self.registry = registry
        if require_quasi_guarded and not is_quasi_guarded(program, dependencies):
            raise ValueError(
                "program is not quasi-guarded under the declared key "
                "dependencies (Definition 4.3)"
            )
        cache = cache if cache is not None else default_cache()
        # body ordering is per-program work; do it once, share via cache
        self._prepared = cache.grounding(program, registry)

    def evaluate(self, data: Structure | Database) -> QuasiGuardedResult:
        stats = GroundingStats()
        facts = evaluate_via_grounding(
            self.program,
            data,
            registry=self.registry,
            stats=stats,
            prepared=self._prepared,
        )
        return QuasiGuardedResult(frozenset(facts), stats.ground_rules)
