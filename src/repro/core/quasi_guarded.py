"""The Theorem 4.4 evaluation pipeline.

A quasi-guarded program P over a structure A is evaluated in
O(|P| * |A|): instantiate each rule's guard against the database (at
most |A| instantiations, each determining every variable of the rule),
then solve the resulting ground program by linear-time unit resolution.
This module packages the two halves
(:mod:`repro.datalog.grounding` + :mod:`repro.datalog.horn`) behind a
checked facade and is what the generic Theorem 4.5 programs run on.

The production path is fully *interned*: the structure is loaded once
into a :class:`~repro.datalog.setengine.SetDatabase` (dense-int fact
tuples), one :class:`~repro.datalog.interning.InternPool` is threaded
from that load through grounding, unit resolution, and result decoding
-- a fact is interned exactly once per solve, the grounding -> horn
boundary is pure integers, and :class:`QuasiGuardedResult` decodes
lazily on access (a ``query()`` for one unary predicate never
materializes the rest of the model).  The PR 2-era raw-value pipeline
is retained behind ``interned=False`` as the ablation baseline of
``bench_datalog_engine.py``'s solver workloads.
"""

from __future__ import annotations

from ..datalog.ast import Program
from ..datalog.backends import ProgramCache, default_cache
from ..datalog.builtins import BuiltinRegistry
from ..datalog.evaluate import Database
from ..datalog.grounding import (
    GroundingStats,
    ground_program,
    ground_program_ids,
)
from ..datalog.guards import KeyDependency, is_quasi_guarded, td_key_dependencies
from ..datalog.horn import horn_least_model, horn_least_model_ids
from ..datalog.interning import InternPool
from ..datalog.setengine import SetDatabase
from ..structures.structure import Fact, Structure


class QuasiGuardedResult:
    """The derived intensional model of one Theorem 4.4 solve.

    Interned solves keep the model as dense atom ids (``pool`` +
    ``flags``) and decode **lazily**: ``holds`` and ``unary_answers``
    answer straight off the interned model, and the full ``facts``
    set is only materialized on first access.  Raw-path results (the
    ablation) are constructed from an eager fact set and behave
    identically.
    """

    __slots__ = ("ground_rules", "pool", "_flags", "_facts")

    def __init__(
        self,
        facts: frozenset[Fact] | None = None,
        ground_rules: int = 0,
        *,
        pool: InternPool | None = None,
        flags: bytearray | None = None,
    ):
        if facts is None and (pool is None or flags is None):
            raise ValueError("need either eager facts or pool + flags")
        self.ground_rules = ground_rules
        #: the solve's shared interning context (``None`` on the raw path)
        self.pool = pool
        self._flags = flags
        self._facts = facts

    @property
    def facts(self) -> frozenset[Fact]:
        """The derived facts, decoded (and cached) on first access."""
        if self._facts is None:
            decode = self.pool.decode_atom
            self._facts = frozenset(
                decode(i) for i, flag in enumerate(self._flags) if flag
            )
        return self._facts

    def holds(self, predicate: str, *args) -> bool:
        if self.pool is None:
            return Fact(predicate, tuple(args)) in self._facts
        id_of = self.pool.interner.id_of
        ids = []
        for value in args:
            ident = id_of(value)
            if ident is None:  # value never occurred in this solve
                return False
            ids.append(ident)
        atom = self.pool.lookup_atom(predicate, tuple(ids))
        return atom is not None and bool(self._flags[atom])

    def unary_answers(self, predicate: str) -> frozenset:
        """The elements ``x`` with ``predicate(x)`` in the model.

        Raises :class:`ValueError` if the model holds a fact of
        ``predicate`` with arity != 1 -- silently truncating a
        non-unary fact to its first argument would mask a compiler or
        program bug.
        """
        if self.pool is None:
            answers = []
            for f in self._facts:
                if f.predicate != predicate:
                    continue
                if len(f.args) != 1:
                    raise ValueError(
                        f"unary_answers({predicate!r}): fact {f} has "
                        f"arity {len(f.args)}, not 1"
                    )
                answers.append(f.args[0])
            return frozenset(answers)
        pool = self.pool
        atom_of = pool.atom_of
        value_of = pool.interner.value_of
        answers = []
        for i, flag in enumerate(self._flags):
            if not flag:
                continue
            pred, args = atom_of(i)
            if pred != predicate:
                continue
            if len(args) != 1:
                raise ValueError(
                    f"unary_answers({predicate!r}): fact "
                    f"{pool.decode_atom(i)} has arity {len(args)}, not 1"
                )
            answers.append(value_of(args[0]))
        return frozenset(answers)


class QuasiGuardedEvaluator:
    """Evaluate a quasi-guarded program per Theorem 4.4.

    ``dependencies`` are the key constraints used to witness functional
    dependence (Definition 4.3); they default to the ``A_td``
    constraints for the given bag arity.  ``interned=True`` (the
    default) runs the fully interned grounding -> horn pipeline;
    ``interned=False`` keeps the raw-value ablation path.
    """

    def __init__(
        self,
        program: Program,
        bag_arity: int | None = None,
        dependencies: tuple[KeyDependency, ...] | None = None,
        registry: BuiltinRegistry | None = None,
        require_quasi_guarded: bool = True,
        cache: ProgramCache | None = None,
        interned: bool = True,
    ):
        self.program = program
        if dependencies is None:
            dependencies = (
                td_key_dependencies(bag_arity) if bag_arity is not None else ()
            )
        self.dependencies = dependencies
        self.registry = registry
        self.interned = interned
        if require_quasi_guarded and not is_quasi_guarded(program, dependencies):
            raise ValueError(
                "program is not quasi-guarded under the declared key "
                "dependencies (Definition 4.3)"
            )
        cache = cache if cache is not None else default_cache()
        # body ordering is per-program work; do it once, share via cache
        self._prepared = cache.grounding(program, registry)

    def evaluate(
        self, data: Structure | Database | SetDatabase
    ) -> QuasiGuardedResult:
        stats = GroundingStats()
        if not self.interned:
            rules = ground_program(
                self.program,
                data,
                registry=self.registry,
                stats=stats,
                prepared=self._prepared,
            )
            facts = frozenset(horn_least_model(rules))
            return QuasiGuardedResult(facts, stats.ground_rules)
        # one interning context per solve: structure load, grounding,
        # horn, and result decoding all share sdb.interner via the pool
        sdb = (
            data
            if isinstance(data, SetDatabase)
            else SetDatabase.from_edb(data)
        )
        pool = InternPool(sdb.interner)
        rules = ground_program_ids(self._prepared, sdb, pool, stats)
        flags = horn_least_model_ids(rules, len(pool))
        return QuasiGuardedResult(
            ground_rules=stats.ground_rules, pool=pool, flags=flags
        )
