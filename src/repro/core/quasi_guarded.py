"""The Theorem 4.4 evaluation pipeline.

A quasi-guarded program P over a structure A is evaluated in
O(|P| * |A|): instantiate each rule's guard against the database (at
most |A| instantiations, each determining every variable of the rule),
then solve the resulting ground program by linear-time unit resolution.
This module packages the two halves
(:mod:`repro.datalog.grounding` + :mod:`repro.datalog.horn`) behind a
checked facade and is what the generic Theorem 4.5 programs run on.

Three execution modes share the cached per-program plans:

* ``"streamed"`` (the default, the production path of
  :class:`repro.core.solver.CourcelleSolver`): grounding is a
  push-based emitter feeding an online LTUR
  (:class:`~repro.datalog.horn.StreamingHorn`) -- ground rules are
  instantiated on demand as their driving intensional atoms derive,
  whole rules are demand-pruned relative to ``demand`` (magic-style
  relevance at grounding time), and peak live-rule residency is the
  waiting frontier, not the ground program;
* ``"eager"`` (the PR 3 pipeline, retained as the
  ``quasi-guarded-eager`` ablation): the full ground program is
  materialized interned, then solved by batch LTUR;
* ``"raw"`` (the PR 2 pipeline, the ``quasi-guarded-raw`` ablation):
  the same eager materialization over raw values.

All interned modes thread one
:class:`~repro.datalog.interning.InternPool` from structure load
through grounding, unit resolution, and result decoding -- a fact is
interned exactly once per solve, the grounding -> horn boundary is pure
integers, and :class:`QuasiGuardedResult` decodes lazily on access (a
``query()`` for one unary predicate never materializes the rest of the
model).
"""

from __future__ import annotations

from ..datalog.ast import Program
from ..datalog.backends import ProgramCache, default_cache
from ..datalog.budget import as_meter
from ..datalog.builtins import BuiltinRegistry
from ..datalog.evaluate import Database
from ..datalog.grounding import (
    GroundingStats,
    ground_program,
    ground_program_ids,
    ground_program_streamed,
    resolve_demand,
)
from ..datalog.guards import KeyDependency, is_quasi_guarded, td_key_dependencies
from ..datalog.horn import horn_least_model, horn_least_model_ids
from ..datalog.interning import InternPool
from ..datalog.setengine import SetDatabase
from ..structures.structure import Fact, Structure

_MODES = ("streamed", "eager", "raw")
_UNRESOLVED = object()  # sentinel: derive the relevance set here


class QuasiGuardedResult:
    """The derived intensional model of one Theorem 4.4 solve.

    Interned solves keep the model as dense atom ids (``pool`` +
    ``flags``) and decode **lazily**: ``holds`` and ``unary_answers``
    answer straight off the interned model, and the full ``facts``
    set is only materialized on first access.  Raw-path results (the
    ablation) are constructed from an eager fact set and behave
    identically.

    A *demand-pruned* solve (streamed mode with ``demand`` set) is
    exact only for the demanded predicates and their relevance cone;
    predicates outside it are simply absent from the model.

    ``stats`` carries the solve's :class:`GroundingStats` (pruning and
    residency counters for the streamed mode).
    """

    __slots__ = ("ground_rules", "pool", "stats", "_flags", "_facts")

    def __init__(
        self,
        facts: frozenset[Fact] | None = None,
        ground_rules: int = 0,
        *,
        pool: InternPool | None = None,
        flags: bytearray | None = None,
        stats: GroundingStats | None = None,
    ):
        if facts is None and (pool is None or flags is None):
            raise ValueError("need either eager facts or pool + flags")
        self.ground_rules = ground_rules
        #: the solve's shared interning context (``None`` on the raw path)
        self.pool = pool
        self.stats = stats
        self._flags = flags
        self._facts = facts

    @property
    def facts(self) -> frozenset[Fact]:
        """The derived facts, decoded (and cached) on first access."""
        if self._facts is None:
            decode = self.pool.decode_atom
            self._facts = frozenset(
                decode(i) for i, flag in enumerate(self._flags) if flag
            )
        return self._facts

    def holds(self, predicate: str, *args) -> bool:
        if self.pool is None:
            return Fact(predicate, tuple(args)) in self._facts
        id_of = self.pool.interner.id_of
        ids = []
        for value in args:
            ident = id_of(value)
            if ident is None:  # value never occurred in this solve
                return False
            ids.append(ident)
        atom = self.pool.lookup_atom(predicate, tuple(ids))
        return atom is not None and bool(self._flags[atom])

    def unary_answers(self, predicate: str) -> frozenset:
        """The elements ``x`` with ``predicate(x)`` in the model.

        Raises :class:`ValueError` if the model holds a fact of
        ``predicate`` with arity != 1 -- silently truncating a
        non-unary fact to its first argument would mask a compiler or
        program bug.
        """
        if self.pool is None:
            answers = []
            for f in self._facts:
                if f.predicate != predicate:
                    continue
                if len(f.args) != 1:
                    raise ValueError(
                        f"unary_answers({predicate!r}): fact {f} has "
                        f"arity {len(f.args)}, not 1"
                    )
                answers.append(f.args[0])
            return frozenset(answers)
        pool = self.pool
        value_of = pool.interner.value_of
        return frozenset(
            value_of(i)
            for i in pool.unary_arg_ids(predicate, self._flags)
        )


class QuasiGuardedEvaluator:
    """Evaluate a quasi-guarded program per Theorem 4.4.

    ``dependencies`` are the key constraints used to witness functional
    dependence (Definition 4.3); they default to the ``A_td``
    constraints for the given bag arity.  ``mode`` selects the
    execution form (``"streamed"`` by default; ``"eager"`` /
    ``"raw"`` are the ablation pipelines); the legacy ``interned``
    flag maps ``False`` to ``"raw"``.  ``demand`` (streamed mode only)
    restricts grounding to rules relevant to the given query
    predicate(s); the result is then exact only for those predicates
    and their relevance cone.

    ``prepared`` / ``relevant`` hand pre-computed per-program artifacts
    straight in (the pickle-safe ``solve_many`` worker handoff: the
    parent resolves them once, workers skip the per-program work).

    ``profile`` (a :class:`~repro.datalog.profile.PlanProfile`) turns
    on profiling: interned solves record per-signature probe fanout and
    relation sizes into it.  ``replan`` feeds a previously recorded
    profile back: the per-rule join orders are re-derived under its
    cost model (cached per (program, profile fingerprint) in the
    program cache).
    """

    def __init__(
        self,
        program: Program,
        bag_arity: int | None = None,
        dependencies: tuple[KeyDependency, ...] | None = None,
        registry: BuiltinRegistry | None = None,
        require_quasi_guarded: bool = True,
        cache: ProgramCache | None = None,
        interned: bool | None = None,
        mode: str | None = None,
        demand=None,
        prepared=None,
        relevant=_UNRESOLVED,
        profile=None,
        replan=None,
        single_pass: bool = True,
    ):
        self.program = program
        if dependencies is None:
            dependencies = (
                td_key_dependencies(bag_arity) if bag_arity is not None else ()
            )
        self.dependencies = dependencies
        self.registry = registry
        if mode is None:
            mode = "streamed" if interned in (None, True) else "raw"
        elif interned is not None and interned != (mode != "raw"):
            raise ValueError(
                f"mode={mode!r} contradicts interned={interned!r}"
            )
        if mode not in _MODES:
            raise ValueError(
                f"unknown mode {mode!r}; expected one of {_MODES}"
            )
        self.mode = mode
        self.interned = mode != "raw"
        if demand is not None and mode != "streamed":
            raise ValueError(
                "demand pruning is only available in streamed mode -- "
                "the eager pipelines materialize everything by design"
            )
        self.demand = demand
        if require_quasi_guarded and not is_quasi_guarded(program, dependencies):
            raise ValueError(
                "program is not quasi-guarded under the declared key "
                "dependencies (Definition 4.3)"
            )
        self.profile = profile
        if profile is not None and mode == "raw":
            raise ValueError(
                "profiling records interned-index fanout; the raw "
                "ablation path has none to record"
            )
        if prepared is not None:
            self._prepared = prepared
        else:
            cache = cache if cache is not None else default_cache()
            # body ordering is per-program work; do once, share via cache
            self._prepared = cache.grounding(
                program, registry, profile=replan, single_pass=single_pass
            )
        if relevant is not _UNRESOLVED:
            self._relevant = relevant
        else:
            # demand resolution (the adorned relevance traversal) is
            # also per-program work: resolve it here, not per structure
            self._relevant = resolve_demand(
                program, demand, self._prepared.registry
            )

    def evaluate(
        self, data: Structure | Database | SetDatabase, budget=None
    ) -> QuasiGuardedResult:
        """Evaluate over one structure/database.

        ``budget`` -- a :class:`~repro.datalog.budget.SolveBudget` (armed
        here) or an already-armed
        :class:`~repro.datalog.budget.BudgetMeter` (so one clock can
        span decompose -> encode -> solve) -- makes the grounding and
        propagation loops raise
        :class:`~repro.datalog.budget.BudgetExceeded` cooperatively
        instead of running away on a pathological input."""
        meter = as_meter(budget)
        stats = GroundingStats()
        if self.mode == "raw":
            rules = ground_program(
                self.program,
                data,
                registry=self.registry,
                stats=stats,
                prepared=self._prepared,
                meter=meter,
            )
            facts = frozenset(horn_least_model(rules))
            return QuasiGuardedResult(
                facts, stats.ground_rules, stats=stats
            )
        # one interning context per solve: structure load, grounding,
        # horn, and result decoding all share sdb.interner via the pool
        sdb = (
            data
            if isinstance(data, SetDatabase)
            else SetDatabase.from_edb(data)
        )
        pool = InternPool(sdb.interner)
        if self.mode == "eager":
            rules = ground_program_ids(
                self._prepared, sdb, pool, stats, meter=meter
            )
            flags = horn_least_model_ids(rules, len(pool))
            if self.profile is not None:
                # the eager path has no per-probe hooks; sizes alone
                # still give the cost model its scan estimates
                self.profile.record_sizes(sdb)
        else:
            sink = ground_program_streamed(
                self._prepared,
                sdb,
                pool,
                stats=stats,
                relevant=self._relevant,
                meter=meter,
                profile=self.profile,
            )
            flags = sink.flags(len(pool))
        return QuasiGuardedResult(
            ground_rules=stats.ground_rules,
            pool=pool,
            flags=flags,
            stats=stats,
        )
