"""End-to-end Courcelle-style solving (Corollary 4.6).

``CourcelleSolver`` wires the whole pipeline together:

    structure  --decompose-->  TD  --normalize-->  Def. 2.3 form
              --encode-->  A_td  --compiled datalog-->  answers

The datalog program comes from the Theorem 4.5 compiler (built once per
(query, signature, width) and reusable over any number of structures,
which is what makes the data complexity linear), and is evaluated by the
Theorem 4.4 quasi-guarded pipeline.

Batch workloads go through :meth:`CourcelleSolver.solve_many`, which
shards independent structures across a ``multiprocessing`` pool: the
solver pickles as (formula, compiled program, backend) -- compilation
is *not* repeated per worker -- and results come back in input order
regardless of worker count.
"""

from __future__ import annotations

import dataclasses
import os
import pickle

from ..admission import POLICIES, MeterBudget, admit
from ..datalog.backends import ProgramCache, default_cache, get_backend
from ..datalog.budget import BudgetExceeded, as_meter
from ..datalog.guards import is_quasi_guarded
from ..errors import AdmissionRejected, WidthExceeded
from ..mso.syntax import Formula
from ..structures.signature import Signature
from ..structures.structure import Element, Structure, structure_fingerprint
from ..treewidth.decomposition import TreeDecomposition
from ..treewidth.encode import encode_normalized
from ..treewidth.heuristics import decompose_structure
from ..treewidth.normalize import normalize, widen
from .mso_to_datalog import (
    ANSWER_PREDICATE,
    CompiledQuery,
    compile_sentence,
    compile_unary_query,
)
from .quasi_guarded import _UNRESOLVED, QuasiGuardedEvaluator

#: CourcelleSolver backend name -> QuasiGuardedEvaluator mode
_QG_MODES = {
    "quasi-guarded": "streamed",
    "quasi-guarded-eager": "eager",
    "quasi-guarded-raw": "raw",
}


class CourcelleSolver:
    """Solve one MSO query over arbitrarily many width-w structures.

    ``backend`` selects how the compiled datalog program is evaluated
    per structure: ``"quasi-guarded"`` (the default) runs the streamed,
    demand-pruned Theorem 4.4 pipeline (ground rules instantiated on
    demand into an online LTUR, rules irrelevant to the answer
    predicate pruned at grounding time, one shared intern pool from
    structure load to answer decoding); ``"quasi-guarded-eager"`` is
    the same interned pipeline materializing the full ground program
    (the PR 3 path, kept as the measured ablation);
    ``"quasi-guarded-raw"`` is the eager pipeline over raw values (the
    pre-interning ablation); any name registered in
    :mod:`repro.datalog.backends` (``"naive"``, ``"semi-naive"`` --
    the set-at-a-time engine, ``"semi-naive-tuple"``, ``"magic"``)
    runs that bottom-up backend instead, with the magic backend
    evaluating goal-directed on the answer predicate.  Backends that
    can stay in interned-id space (``semi-naive``, ``magic``) do, and
    only the answer relation is decoded.  All choices share the
    compiled-program cache, so per-program planning happens once per
    (program fingerprint, signature, width).
    """

    def __init__(
        self,
        formula: Formula,
        signature: Signature,
        width: int,
        free_var: str | None = None,
        max_witness_size: int = 16,
        structure_filter=None,
        backend: str = "quasi-guarded",
        cache: ProgramCache | None = None,
        minimize: bool = True,
        passes=None,
        profile=None,
        replan=None,
        admission: str | None = None,
        admission_budget=None,
    ):
        self._formula = formula
        self.backend_name = backend
        self.cache = cache if cache is not None else default_cache()
        #: default admission policy (``"strict"`` / ``"repair"`` /
        #: ``"degrade"``); ``None`` keeps the legacy trusting paths --
        #: no verification, first-fail ``ValueError`` on bad input
        if admission is not None and admission not in POLICIES:
            raise ValueError(
                f"unknown admission policy {admission!r}; "
                f"expected one of {POLICIES}"
            )
        self.admission = admission
        self.admission_budget = admission_budget
        #: set via ``profile=`` (a PlanProfile): interned quasi-guarded
        #: solves record probe fanout / relation sizes into it; hand it
        #: to :meth:`replanned` (or a fresh solver's ``replan=``) to
        #: close the profile -> replan loop
        self.plan_profile = profile
        self._replan = replan
        if (profile is not None or replan is not None) and (
            backend not in _QG_MODES
        ):
            raise ValueError(
                "profile=/replan= apply to the quasi-guarded backends; "
                f"backend {backend!r} plans through the program cache "
                "directly (use ProgramCache.prepared(profile=...))"
            )
        if free_var is None:
            self.compiled: CompiledQuery = compile_sentence(
                formula,
                signature,
                width,
                max_witness_size=max_witness_size,
                structure_filter=structure_filter,
                minimize=minimize,
                passes=passes,
            )
        else:
            self.compiled = compile_unary_query(
                formula,
                signature,
                width,
                free_var=free_var,
                max_witness_size=max_witness_size,
                structure_filter=structure_filter,
                minimize=minimize,
                passes=passes,
            )
        #: the shrinking-pass configuration actually applied (``passes=None``
        #: resolved to the production default by the compiler); ``"unfold"``
        #: additionally routes evaluation through the single-pass
        #: (fire-once / deferred-sink) engine fast paths
        self.passes = self.compiled.passes
        self._wire_backend()

    @property
    def _single_pass(self) -> bool:
        """Whether evaluation takes the single-pass route (tied to the
        ``"unfold"`` pass so ``passes=()`` ablates the engine fast paths
        together with the program shrinking)."""
        return "unfold" in self.passes

    def _wire_backend(self, prepared=None, relevant=_UNRESOLVED) -> None:
        """Build the per-backend evaluation machinery.

        ``prepared`` / ``relevant`` are the pickle handoff: a
        ``solve_many`` worker rebuilds from the parent's per-program
        artifacts (and trusts the parent's quasi-guardedness check)
        instead of re-deriving them."""
        backend = self.backend_name
        trusted = prepared is not None
        if not trusted and not is_quasi_guarded(
            self.compiled.program, self.compiled.dependencies()
        ):
            raise AssertionError(
                "compiled program is not quasi-guarded -- Theorem 4.5 violated"
            )
        if backend in _QG_MODES:
            self._backend = None
            mode = _QG_MODES[backend]
            self.evaluator = QuasiGuardedEvaluator(
                self.compiled.program,
                dependencies=self.compiled.dependencies(),
                cache=self.cache,
                mode=mode,
                demand=ANSWER_PREDICATE if mode == "streamed" else None,
                require_quasi_guarded=not trusted,
                prepared=prepared,
                relevant=relevant,
                profile=self.plan_profile,
                replan=self._replan,
                single_pass=self._single_pass,
            )
        else:
            self._backend = get_backend(backend, self.cache)
            self.evaluator = None
            if backend != "magic":
                # pay the planning cost now, not on the first solve
                # (magic plans its rewritten program instead)
                self.compiled.prepared(cache=self.cache)

    # -- pickling (the solve_many handoff) -----------------------------

    def __getstate__(self):
        # carry the compiled program and its per-program solve
        # artifacts (grounding plans + demand relevance), not the
        # runtime wiring: caches hold locks/closures, and a worker must
        # neither recompile the Theorem 4.5 program nor re-derive the
        # plans it hands to every solve
        state = {
            "formula": self._formula,
            "compiled": self.compiled,
            "backend": self.backend_name,
            "admission": self.admission,
            "admission_budget": self.admission_budget,
        }
        if self.evaluator is not None:
            # the builtin registry holds closures; CourcelleSolver
            # always evaluates with the standard registry, so ship the
            # plans bare and re-attach it on the other side
            state["prepared"] = dataclasses.replace(
                self.evaluator._prepared, registry=None
            )
            state["relevant"] = self.evaluator._relevant
        return state

    def __setstate__(self, state):
        self._formula = state["formula"]
        self.compiled = state["compiled"]
        self.passes = getattr(self.compiled, "passes", ())
        self.backend_name = state["backend"]
        self.admission = state.get("admission")
        self.admission_budget = state.get("admission_budget")
        self.cache = default_cache()
        # profiles stay in the parent process; the *replanned plans*
        # cross the boundary inside the prepared artifact below
        self.plan_profile = None
        self._replan = None
        prepared = state.get("prepared")
        if prepared is not None and prepared.registry is None:
            from ..datalog.builtins import standard_registry

            prepared = dataclasses.replace(
                prepared, registry=standard_registry()
            )
        self._wire_backend(
            prepared=prepared,
            relevant=state.get("relevant", _UNRESOLVED),
        )

    def _backend_answers(self, encoded) -> frozenset:
        """Evaluate via the pluggable backend; the set of phi-tuples.

        Backends exposing ``evaluate_interned`` keep the whole fixpoint
        in interned-id space and only the answer relation is decoded --
        the backend-boundary analogue of the quasi-guarded path's lazy
        result decoding."""
        program = self.compiled.program
        if ANSWER_PREDICATE not in program.intensional_predicates():
            return frozenset()  # the compiler emitted no answer rules
        context = dict(
            query=ANSWER_PREDICATE,
            signature=str(self.compiled.signature),
            width=self.compiled.width,
        )
        interned = getattr(self._backend, "evaluate_interned", None)
        if interned is not None:
            sdb = interned(program, encoded, **context)
            return frozenset(sdb.decode_relation(ANSWER_PREDICATE))
        db = self._backend.evaluate(program, encoded, **context)
        return frozenset(db.relation(ANSWER_PREDICATE))

    # ------------------------------------------------------------------

    def _prepare(
        self,
        structure: Structure,
        td: TreeDecomposition | None,
        verified: bool = False,
    ):
        if td is None:
            td = decompose_structure(structure)
        if td.width > self.compiled.width:
            raise WidthExceeded(
                f"decomposition width {td.width} exceeds the compiled "
                f"width {self.compiled.width} "
                f"(structure {structure_fingerprint(structure)})",
                width=td.width,
                limit=self.compiled.width,
                fingerprint=structure_fingerprint(structure),
            )
        if td.width < self.compiled.width:
            td = widen(td, self.compiled.width)
        ntd = normalize(td)
        # admission already checked the Section 2.2 axioms against the
        # structure; re-check only the Definition 2.3 shape then
        ntd.validate(None if verified else structure)
        return encode_normalized(structure, ntd)

    def _too_small(self, structure: Structure) -> bool:
        """Theorem 4.5 assumes |dom| >= w + 1; below that threshold the
        structure has constant size and direct evaluation is the
        "w.l.o.g." escape hatch (still O(1) per structure)."""
        return len(structure.domain) < self.compiled.width + 1

    def _finish(self, encoded, budget=None):
        """Evaluate an encoded structure and decode the answer
        (``decide`` boolean or ``query`` answer set)."""
        if self._backend is not None:
            answers = self._backend_answers(encoded)
            if self.compiled.is_sentence:
                return () in answers
            return frozenset(args[0] for args in answers)
        result = self.evaluator.evaluate(encoded, budget=budget)
        if self.compiled.is_sentence:
            return result.holds(ANSWER_PREDICATE)
        return result.unary_answers(ANSWER_PREDICATE)

    def _direct_answer(self, structure: Structure, budget=None):
        """Direct MSO evaluation -- the small-structure escape hatch
        and the admission ladder's degraded serving path."""
        from ..mso.eval import evaluate
        from ..mso.eval import query as direct_query

        if self.compiled.is_sentence:
            return evaluate(structure, self.compiled_formula(), budget=budget)
        return direct_query(
            structure,
            self.compiled_formula(),
            self.compiled.free_var,
            budget=budget,
        )

    def decide(
        self,
        structure: Structure,
        td: TreeDecomposition | None = None,
        budget=None,
        admission: str | None = None,
    ) -> bool:
        """Evaluate a compiled *sentence* on a structure.

        ``budget`` (a :class:`repro.datalog.SolveBudget`) makes the
        quasi-guarded fixpoint loops raise
        :class:`repro.datalog.BudgetExceeded` cooperatively instead of
        running away; the O(1) small-structure path and the bottom-up
        ablation backends ignore it.

        ``admission`` (or the solver-wide ``admission=`` default) routes
        the request through :func:`repro.admission.admit` first: the
        input is verified, repaired or degraded per the policy, and
        unservable requests raise
        :class:`repro.errors.AdmissionRejected` instead of whatever the
        trusting pipeline would have hit."""
        if not self.compiled.is_sentence:
            raise ValueError("compiled query is unary; use .query()")
        policy = admission if admission is not None else self.admission
        if policy is not None:
            answer, _ = self.solve_admitted(
                structure, td, policy=policy, budget=budget
            )
            return answer
        if self._too_small(structure):
            return self._direct_answer(structure)
        encoded = self._prepare(structure, td)
        return self._finish(encoded, budget)

    def query(
        self,
        structure: Structure,
        td: TreeDecomposition | None = None,
        budget=None,
        admission: str | None = None,
    ) -> frozenset[Element]:
        """Evaluate a compiled *unary query*: the set of answers.

        ``budget`` and ``admission`` behave as in :meth:`decide`."""
        if self.compiled.is_sentence:
            raise ValueError("compiled query is a sentence; use .decide()")
        policy = admission if admission is not None else self.admission
        if policy is not None:
            answer, _ = self.solve_admitted(
                structure, td, policy=policy, budget=budget
            )
            return answer
        if self._too_small(structure):
            return self._direct_answer(structure)
        encoded = self._prepare(structure, td)
        return self._finish(encoded, budget)

    def solve_admitted(
        self,
        structure,
        td: TreeDecomposition | None = None,
        *,
        policy: str | None = None,
        budget=None,
    ):
        """Solve one request through the admission ladder.

        Returns ``(answer, report)`` -- the ``decide``/``query`` answer
        plus the :class:`repro.admission.AdmissionReport` saying how the
        input was served (``admitted`` / ``repaired`` / ``degraded``).
        Raises :class:`repro.errors.AdmissionRejected` when the policy
        ladder runs out: on any violation under ``"strict"``, when
        repair and re-decomposition fail under ``"repair"``, and when
        even the budgeted direct evaluation cannot finish under
        ``"degrade"``.

        ``budget`` spans the whole request -- admission work, the
        compiled solve *and* the degraded direct evaluation all draw on
        one meter; ``None`` leaves the solve unbudgeted and bounds only
        the admission layer's own work
        (:data:`repro.admission.DEFAULT_ADMISSION_BUDGET`, overridable
        per solver via ``admission_budget=``).
        """
        policy = policy if policy is not None else (self.admission or "repair")
        meter = as_meter(budget)
        result = admit(
            structure,
            signature=self.compiled.signature,
            width=self.compiled.width,
            td=td,
            policy=policy,
            budget=meter if meter is not None else self.admission_budget,
        )
        report = result.report
        if result.action == "direct":
            return self._direct_answer(result.structure), report
        if result.action == "degrade":
            try:
                answer = self._direct_answer(
                    result.structure,
                    budget=(
                        MeterBudget(result.meter)
                        if result.meter is not None
                        else None
                    ),
                )
            except BudgetExceeded as exc:
                report.verdict = "rejected"
                report.degrade_reason = (
                    f"{report.degrade_reason}; degraded evaluation "
                    f"exhausted its budget ({exc})"
                )
                raise AdmissionRejected(
                    f"admission rejected (policy {policy}, structure "
                    f"{report.fingerprint}): degraded evaluation "
                    f"exhausted its budget ({exc})",
                    report.violations,
                    report=report,
                ) from exc
            return answer, report
        encoded = self._prepare(result.structure, result.td, verified=True)
        return self._finish(encoded, budget=meter), report

    def solve_many(
        self,
        structures,
        tds=None,
        workers: "int | str | None" = None,
        chunksize: int | None = None,
        service=None,
        admission: str | None = None,
    ) -> list:
        """Solve a batch of independent structures, optionally sharded.

        Returns one result per structure **in input order** --
        ``query()`` answer sets for unary queries, ``decide()`` booleans
        for sentences.  ``workers=None`` or ``1`` solves serially in
        process; ``workers > 1`` shards the batch across a
        ``multiprocessing`` pool, handing each worker the pickled
        compiled program once (compilation is never repeated) and
        mapping structures in order, so the result list is identical
        whatever the worker count (ROADMAP item (c): batch workloads
        scale with cores because each structure's decompose -> encode
        -> solve chain is independent).  ``workers="auto"`` resolves to
        :func:`default_worker_count` capped at the batch size.

        ``service`` routes the batch through a caller-held persistent
        :class:`repro.service.SolverService` instead of the one-shot
        pool above: the workers are already running and hold this
        solver's compiled program warm, so repeated small batches skip
        the pool startup and solver re-pickle that the one-shot path
        pays on every call (``workers``/``chunksize`` are then ignored
        -- the service owns its worker count).

        ``admission`` (or the solver-wide default) runs every item
        through the admission ladder and turns the batch's failure mode
        per-item: a malformed structure no longer kills the whole
        batch; its slot holds the :class:`repro.errors.AdmissionRejected`
        instance (report attached) while every other slot holds its
        answer.
        """
        structures = list(structures)
        if tds is None:
            tds = [None] * len(structures)
        else:
            tds = list(tds)
            if len(tds) != len(structures):
                raise ValueError(
                    f"{len(structures)} structures but {len(tds)} "
                    "decompositions"
                )
        policy = admission if admission is not None else self.admission
        if service is not None:
            return service.solve_many(self, structures, tds, admission=policy)
        if workers == "auto":
            workers = default_worker_count(len(structures))
        elif workers is None:
            workers = 1
        if workers <= 1 or len(structures) <= 1:
            return [
                _solve_item(self, s, td, policy)
                for s, td in zip(structures, tds)
            ]
        import multiprocessing

        workers = min(workers, len(structures))
        if chunksize is None:
            chunksize = max(1, len(structures) // (workers * 4))
        payload = pickle.dumps(self)
        context = multiprocessing.get_context()
        with context.Pool(
            workers, initializer=_solve_many_init, initargs=(payload,)
        ) as pool:
            # Pool.map preserves input order, so the shard assignment
            # (and any interleaving of completions) cannot reorder or
            # change the results
            return pool.map(
                _solve_many_task,
                [(s, td, policy) for s, td in zip(structures, tds)],
                chunksize,
            )

    def with_backend(self, backend: str) -> "CourcelleSolver":
        """A sibling solver over the *same* compiled program.

        The clone shares ``compiled`` (and the cache), so no
        recompilation happens -- only the evaluation wiring differs.
        This is the service layer's budget-fallback route: e.g. retry a
        ``BudgetExceeded`` streamed solve on the eager pipeline.  The
        quasi-guardedness check is trusted from this solver's own
        construction."""
        if backend == self.backend_name:
            return self
        clone = object.__new__(CourcelleSolver)
        clone._formula = self._formula
        clone.compiled = self.compiled
        clone.passes = self.passes
        clone.backend_name = backend
        clone.cache = self.cache
        clone.admission = self.admission
        clone.admission_budget = self.admission_budget
        clone.plan_profile = (
            self.plan_profile if backend in _QG_MODES else None
        )
        clone._replan = self._replan if backend in _QG_MODES else None
        if backend in _QG_MODES and self.evaluator is not None:
            clone._wire_backend(
                prepared=self.evaluator._prepared,
                relevant=(
                    self.evaluator._relevant
                    if _QG_MODES[backend] == "streamed"
                    else None
                ),
            )
        else:
            clone._wire_backend(
                prepared=self.cache.grounding(
                    self.compiled.program,
                    self.evaluator.registry if self.evaluator else None,
                    profile=clone._replan,
                    single_pass=clone._single_pass,
                )
                if backend in _QG_MODES
                else None,
            )
        return clone

    def replanned(self, profile=None) -> "CourcelleSolver":
        """A sibling solver whose join plans are re-derived under a
        recorded profile's cost model -- the replan half of the
        profile -> replan loop.

        ``profile`` defaults to this solver's own ``plan_profile``
        (populated by solves made with ``profile=`` set).  Like
        :meth:`with_backend`, the clone shares the compiled program and
        the cache; only the per-rule join orders (and the index
        selection derived from them) differ, and the replanned prepared
        plans ride the same pickle handoff to ``solve_many`` workers.
        """
        profile = profile if profile is not None else self.plan_profile
        if profile is None:
            raise ValueError(
                "no profile to replan from: pass profile= or run solves "
                "on a solver constructed with profile=PlanProfile()"
            )
        if self.backend_name not in _QG_MODES:
            raise ValueError(
                "replanned() applies to the quasi-guarded backends; "
                f"backend {self.backend_name!r} plans through the "
                "program cache (use ProgramCache.prepared(profile=...))"
            )
        clone = object.__new__(CourcelleSolver)
        clone._formula = self._formula
        clone.compiled = self.compiled
        clone.passes = self.passes
        clone.backend_name = self.backend_name
        clone.cache = self.cache
        clone.admission = self.admission
        clone.admission_budget = self.admission_budget
        clone.plan_profile = None
        clone._replan = profile
        clone._wire_backend(
            prepared=self.cache.grounding(
                self.compiled.program,
                self.evaluator.registry if self.evaluator else None,
                profile=profile,
                single_pass=self._single_pass,
            ),
            relevant=(
                self.evaluator._relevant
                if self.evaluator is not None
                else _UNRESOLVED
            ),
        )
        return clone

    def compiled_formula(self) -> Formula:
        return self._formula


def default_worker_count(batch_size: int | None = None) -> int:
    """A sensible ``workers=`` for :meth:`CourcelleSolver.solve_many`:
    the scheduler-visible CPU count, capped at ``batch_size`` so small
    batches on big machines don't drown in pool startup (a 4-structure
    batch on a 64-core machine gets 4 workers, not 64)."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    if batch_size is not None:
        cpus = min(cpus, batch_size)
    return max(1, cpus)


#: per-worker solver rebuilt once from the pickled handoff
_WORKER_SOLVER: CourcelleSolver | None = None


def _solve_many_init(payload: bytes) -> None:
    global _WORKER_SOLVER
    _WORKER_SOLVER = pickle.loads(payload)


def _solve_item(solver, structure, td, admission):
    """One batch slot: the answer, or -- under admission -- the
    ``AdmissionRejected`` instance as a per-item verdict."""
    if admission is not None:
        try:
            answer, _ = solver.solve_admitted(structure, td, policy=admission)
            return answer
        except AdmissionRejected as exc:
            return exc
    solve_one = (
        solver.decide if solver.compiled.is_sentence else solver.query
    )
    return solve_one(structure, td)


def _solve_many_task(item):
    structure, td, admission = (
        item if len(item) == 3 else (item[0], item[1], None)
    )
    return _solve_item(_WORKER_SOLVER, structure, td, admission)
