"""End-to-end Courcelle-style solving (Corollary 4.6).

``CourcelleSolver`` wires the whole pipeline together:

    structure  --decompose-->  TD  --normalize-->  Def. 2.3 form
              --encode-->  A_td  --compiled datalog-->  answers

The datalog program comes from the Theorem 4.5 compiler (built once per
(query, signature, width) and reusable over any number of structures,
which is what makes the data complexity linear), and is evaluated by the
Theorem 4.4 quasi-guarded pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.backends import ProgramCache, default_cache, get_backend
from ..datalog.guards import is_quasi_guarded
from ..mso.syntax import Formula
from ..structures.signature import Signature
from ..structures.structure import Element, Structure
from ..treewidth.decomposition import TreeDecomposition
from ..treewidth.encode import encode_normalized
from ..treewidth.heuristics import decompose_structure
from ..treewidth.normalize import normalize, widen
from .mso_to_datalog import (
    ANSWER_PREDICATE,
    CompiledQuery,
    compile_sentence,
    compile_unary_query,
)
from .quasi_guarded import QuasiGuardedEvaluator


class CourcelleSolver:
    """Solve one MSO query over arbitrarily many width-w structures.

    ``backend`` selects how the compiled datalog program is evaluated
    per structure: ``"quasi-guarded"`` (the default) runs the fully
    interned Theorem 4.4 grounding + Horn pipeline (one shared intern
    pool from structure load to answer decoding);
    ``"quasi-guarded-raw"`` is the same pipeline over raw values (the
    pre-interning ablation); any name registered in
    :mod:`repro.datalog.backends` (``"naive"``, ``"semi-naive"`` --
    the set-at-a-time engine, ``"semi-naive-tuple"``, ``"magic"``)
    runs that bottom-up backend instead, with the magic backend
    evaluating goal-directed on the answer predicate.  Backends that
    can stay in interned-id space (``semi-naive``, ``magic``) do, and
    only the answer relation is decoded.  All choices share the
    compiled-program cache, so per-program planning happens once per
    (program fingerprint, signature, width).
    """

    def __init__(
        self,
        formula: Formula,
        signature: Signature,
        width: int,
        free_var: str | None = None,
        max_witness_size: int = 16,
        structure_filter=None,
        backend: str = "quasi-guarded",
        cache: ProgramCache | None = None,
    ):
        self._formula = formula
        self.backend_name = backend
        self.cache = cache if cache is not None else default_cache()
        if free_var is None:
            self.compiled: CompiledQuery = compile_sentence(
                formula,
                signature,
                width,
                max_witness_size=max_witness_size,
                structure_filter=structure_filter,
            )
        else:
            self.compiled = compile_unary_query(
                formula,
                signature,
                width,
                free_var=free_var,
                max_witness_size=max_witness_size,
                structure_filter=structure_filter,
            )
        if not is_quasi_guarded(
            self.compiled.program, self.compiled.dependencies()
        ):
            raise AssertionError(
                "compiled program is not quasi-guarded -- Theorem 4.5 violated"
            )
        if backend in ("quasi-guarded", "quasi-guarded-raw"):
            self._backend = None
            self.evaluator = QuasiGuardedEvaluator(
                self.compiled.program,
                dependencies=self.compiled.dependencies(),
                cache=self.cache,
                interned=(backend == "quasi-guarded"),
            )
        else:
            self._backend = get_backend(backend, self.cache)
            self.evaluator = None
            if backend != "magic":
                # pay the planning cost now, not on the first solve
                # (magic plans its rewritten program instead)
                self.compiled.prepared(cache=self.cache)

    def _backend_answers(self, encoded) -> frozenset:
        """Evaluate via the pluggable backend; the set of phi-tuples.

        Backends exposing ``evaluate_interned`` keep the whole fixpoint
        in interned-id space and only the answer relation is decoded --
        the backend-boundary analogue of the quasi-guarded path's lazy
        result decoding."""
        program = self.compiled.program
        if ANSWER_PREDICATE not in program.intensional_predicates():
            return frozenset()  # the compiler emitted no answer rules
        context = dict(
            query=ANSWER_PREDICATE,
            signature=str(self.compiled.signature),
            width=self.compiled.width,
        )
        interned = getattr(self._backend, "evaluate_interned", None)
        if interned is not None:
            sdb = interned(program, encoded, **context)
            return frozenset(sdb.decode_relation(ANSWER_PREDICATE))
        db = self._backend.evaluate(program, encoded, **context)
        return frozenset(db.relation(ANSWER_PREDICATE))

    # ------------------------------------------------------------------

    def _prepare(self, structure: Structure, td: TreeDecomposition | None):
        if td is None:
            td = decompose_structure(structure)
        if td.width > self.compiled.width:
            raise ValueError(
                f"decomposition width {td.width} exceeds the compiled "
                f"width {self.compiled.width}"
            )
        if td.width < self.compiled.width:
            td = widen(td, self.compiled.width)
        ntd = normalize(td)
        ntd.validate(structure)
        return encode_normalized(structure, ntd)

    def _too_small(self, structure: Structure) -> bool:
        """Theorem 4.5 assumes |dom| >= w + 1; below that threshold the
        structure has constant size and direct evaluation is the
        "w.l.o.g." escape hatch (still O(1) per structure)."""
        return len(structure.domain) < self.compiled.width + 1

    def decide(
        self, structure: Structure, td: TreeDecomposition | None = None
    ) -> bool:
        """Evaluate a compiled *sentence* on a structure."""
        if not self.compiled.is_sentence:
            raise ValueError("compiled query is unary; use .query()")
        if self._too_small(structure):
            from ..mso.eval import evaluate

            return evaluate(structure, self.compiled_formula())
        encoded = self._prepare(structure, td)
        if self._backend is not None:
            return () in self._backend_answers(encoded)
        result = self.evaluator.evaluate(encoded)
        return result.holds(ANSWER_PREDICATE)

    def query(
        self, structure: Structure, td: TreeDecomposition | None = None
    ) -> frozenset[Element]:
        """Evaluate a compiled *unary query*: the set of answers."""
        if self.compiled.is_sentence:
            raise ValueError("compiled query is a sentence; use .decide()")
        if self._too_small(structure):
            from ..mso.eval import query as direct_query

            return direct_query(
                structure, self.compiled_formula(), self.compiled.free_var
            )
        encoded = self._prepare(structure, td)
        if self._backend is not None:
            return frozenset(
                args[0] for args in self._backend_answers(encoded)
            )
        result = self.evaluator.evaluate(encoded)
        return result.unary_answers(ANSWER_PREDICATE)

    def compiled_formula(self) -> Formula:
        return self._formula
