"""The interned type algebra behind the Theorem 4.5 compiler.

Lemmas 3.5-3.7 make the rank-k MSO type of an extended decomposition
step a function of the *types* of its parts (plus the bag data alone):
nothing in the construction ever needs the witness structures
themselves except as a device to compute types and to evaluate the
query on (and both depend only on the type).  This module makes that
compositional view the compiler's native currency:

* :class:`TypeTable` interns canonical k-types into **dense type ids**
  (the :class:`~repro.datalog.interning.InternPool` style: consecutive
  ints, list-indexed decoding), with exactly one canonical witness
  stored per id;
* :class:`TypeAlgebra` owns the typing machinery shared by one compile
  -- a structure-scoped :class:`~repro.mso.types.TypeContext` memo per
  witness (so re-typing one witness under many bags reuses all shared
  subproblems) -- and **witness reduction**: shrinking a freshly
  registered witness to a minimal representative of its type by greedy
  deletion of non-bag elements with a type re-check after each
  deletion.

Reduction is what bounds the working set: the old compiler re-glued
ever-growing witnesses up the induction (witness size grew
monotonically until it tripped ``max_witness_size``), while every step
here starts from minimal representatives, so witness size is bounded
by the minimal-representative closure of the type space instead.
Soundness is exactly Lemma 3.5/3.6: rule emission consults only the
type (and the bag EDB, which is part of the rank-0 type), never the
witness's identity, so any witness of the same type -- in particular
the reduced one -- yields the same program.  When a
``structure_filter`` restricts compilation to a class of structures,
reduction stays inside the class because deletion produces induced
substructures and the filter's documented soundness condition is
closure under induced substructures (the filter is still re-checked
per deletion, so a non-closed filter degrades to less reduction, never
to an out-of-class witness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from ..mso.types import MSOType, TypeContext
from ..structures.structure import Element, Structure


class CompilerLimitError(RuntimeError):
    """Witness structures or type tables outgrew the configured bound.

    The construction is exponential; this error is the honest signal
    that the requested (signature, w, k) combination is out of the
    practical envelope -- precisely the regime where the paper switches
    to the hand-crafted Section 5 programs.
    """


@dataclass(frozen=True)
class TypeEntry:
    """One interned k-type: dense id, canonical minimal witness, bag EDB.

    Witnesses are stored in *canonical coordinates*: the domain is
    ``0..n-1`` with the bag at ``(0, ..., w)`` -- so gluing two
    entries is an integer-offset fact union, no renaming maps needed.
    ``edb`` is the set of ``(predicate, index-tuple)`` patterns holding
    on the bag (the rank-0 bag data): two entries can share a branch /
    selection node iff their ``edb`` agree, which is what lets the
    compiler bucket glue candidates instead of attempting all pairs.
    """

    type_id: int
    structure: Structure
    bag: tuple[Element, ...]
    edb: frozenset[tuple[str, tuple[int, ...]]]


class TypeTable:
    """Dense type-id interning with one canonical witness per type.

    Canonical k-types map to consecutive ids ``0, 1, ...`` (decoded by
    list lookup, exactly like
    :class:`~repro.datalog.interning.InternPool` atoms), and the entry
    stores the *reduced* witness registered for the type -- every later
    step against this type works on that one small representative.

    The Θ↑ and Θ↓ tables of the construction share a single
    ``TypeTable``: both are the closure of the same base types (all
    structures over one full bag) under the same three type-level
    operations (bag permutation, element replacement, bag-glued
    union), so they contain exactly the same types -- only the datalog
    rules emitted from the table differ between the two roles.
    """

    __slots__ = ("max_types", "_ids", "_entries")

    def __init__(self, max_types: int):
        self.max_types = max_types
        self._ids: dict[MSOType, int] = {}
        self._entries: list[TypeEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TypeEntry]:
        return iter(self._entries)

    def get(self, t: MSOType) -> TypeEntry | None:
        """The entry interned for ``t``, or ``None``."""
        found = self._ids.get(t)
        return None if found is None else self._entries[found]

    def entry_of(self, type_id: int) -> TypeEntry:
        """Decode a dense id (list lookup)."""
        return self._entries[type_id]

    def add(
        self,
        t: MSOType,
        structure: Structure,
        bag: tuple[Element, ...],
        edb: frozenset[tuple[str, tuple[int, ...]]],
    ) -> TypeEntry:
        """Intern ``t`` with its canonical witness; ``t`` must be new."""
        if t in self._ids:
            raise ValueError(
                f"type already interned as id {self._ids[t]}"
            )
        if len(self._entries) >= self.max_types:
            raise CompilerLimitError(
                f"more than {self.max_types} types; the "
                "(signature, width, depth) combination is outside the "
                "practical envelope -- consider a structure_filter"
            )
        type_id = len(self._entries)
        entry = TypeEntry(type_id, structure, bag, edb)
        self._ids[t] = type_id
        self._entries.append(entry)
        return entry


@dataclass
class TypeAlgebraStats:
    """Counters surfaced in ``BENCH_compiler.json`` and the compiler
    stats: how hard the type algebra worked and how small reduction
    kept the working set."""

    type_computations: int = 0
    #: largest witness ever *typed* (pre-reduction: glued/grown inputs)
    max_witness_typed: int = 0
    #: largest witness surviving reduction into a type table
    max_reduced_witness: int = 0
    reductions: int = 0
    elements_deleted: int = 0


class TypeAlgebra:
    """One compile's typing machinery: shared memos, limits, reduction.

    ``k`` is the quantifier depth, ``max_witness_size`` the honest
    envelope bound (typing a structure past it raises
    :class:`CompilerLimitError`), ``structure_filter`` the optional
    class restriction (see the module docstring for why reduction
    respects it).
    """

    def __init__(
        self,
        k: int,
        max_witness_size: int,
        structure_filter: Callable[[Structure], bool] | None = None,
    ):
        self.k = k
        self.max_witness_size = max_witness_size
        self.structure_filter = structure_filter
        self.stats = TypeAlgebraStats()
        #: one TypeContext per witness structure -- the structure-scoped
        #: memo of :mod:`repro.mso.types`, shared across every typing of
        #: the same structure (permutation steps re-type one structure
        #: under all bag orders)
        self._contexts: dict[Structure, TypeContext] = {}

    def context(self, structure: Structure) -> TypeContext:
        found = self._contexts.get(structure)
        if found is None:
            found = self._contexts[structure] = TypeContext(structure)
        return found

    def type_of(
        self,
        structure: Structure,
        bag: tuple[Element, ...],
        transient: bool = False,
    ) -> MSOType:
        """The canonical rank-k type of ``(structure, bag)``.

        ``max_witness_size`` bounds the *stored* working set (the
        reduced witnesses of the type tables; :meth:`reduce` enforces
        it); a structure handed in here is transient -- at worst the
        glue of two stored witnesses overlapping on a bag, hence under
        ``2 * max_witness_size`` -- so that is the honest typing
        limit.  Exceeding it means growth is outrunning reduction and
        the combination is genuinely outside the envelope.

        ``transient`` skips the per-structure context memo: a glued
        structure is typed exactly once (the compiler memoizes the
        result by the pair of type ids), so storing its context would
        only leak memory.
        """
        size = len(structure.domain)
        if size > 2 * self.max_witness_size:
            raise CompilerLimitError(
                f"transient witness grew to {size} elements "
                f"(limit {2 * self.max_witness_size} = 2x the "
                f"max_witness_size bound of {self.max_witness_size}); "
                "signature/width/depth combination is outside the "
                "practical envelope of the generic construction"
            )
        stats = self.stats
        stats.type_computations += 1
        if size > stats.max_witness_typed:
            stats.max_witness_typed = size
        if transient:
            return TypeContext(structure).type_of(bag, self.k)
        return self.context(structure).type_of(bag, self.k)

    def canonicalize(
        self, structure: Structure, bag: tuple[Element, ...]
    ) -> tuple[Structure, tuple[Element, ...]]:
        """Rename a witness into canonical coordinates: the bag becomes
        ``(0, ..., w)``, every other element ``w+1, ..., n-1`` in
        repr-sorted order.  Deterministic, so one type always stores
        one concrete witness structure -- and gluing two canonical
        witnesses is a plain integer-offset fact union."""
        mapping: dict[Element, Element] = {
            element: i for i, element in enumerate(bag)
        }
        fresh = len(bag)
        for element in sorted(structure.domain - set(bag), key=repr):
            mapping[element] = fresh
            fresh += 1
        return structure.renamed(mapping), tuple(range(len(bag)))

    def reduce(
        self,
        structure: Structure,
        bag: tuple[Element, ...],
        expected_type: MSOType,
    ) -> Structure:
        """A minimal witness of ``expected_type``: greedily delete
        non-bag elements, keeping a deletion iff the induced
        substructure still has the expected type (and still passes the
        structure filter).  Deterministic (repr-sorted deletion order),
        so one type always reduces to one canonical witness."""
        stats = self.stats
        stats.reductions += 1
        bag_set = frozenset(bag)
        structure_filter = self.structure_filter
        changed = True
        while changed:
            changed = False
            for element in sorted(structure.domain - bag_set, key=repr):
                candidate = structure.induced(structure.domain - {element})
                if structure_filter and not structure_filter(candidate):
                    continue
                # reduction candidates are typed with their own fresh
                # context (no reuse value: each candidate is typed once)
                if TypeContext(candidate).type_of(bag, self.k) != expected_type:
                    continue
                structure = candidate
                stats.elements_deleted += 1
                changed = True
        size = len(structure.domain)
        if size > self.max_witness_size:
            raise CompilerLimitError(
                f"minimal witness has {size} elements "
                f"(limit {self.max_witness_size}); even the reduced "
                "representatives outgrow the bound -- the "
                "signature/width/depth combination is outside the "
                "practical envelope of the generic construction"
            )
        if size > stats.max_reduced_witness:
            stats.max_reduced_witness = size
        return structure


def reduce_witness(
    structure: Structure,
    bag: tuple[Element, ...],
    k: int,
    structure_filter: Callable[[Structure], bool] | None = None,
) -> Structure:
    """Standalone witness reduction: the minimal representative of
    ``(structure, bag)``'s rank-k type (see :meth:`TypeAlgebra.reduce`).

    Convenience wrapper for tests and interactive use; the compiler
    goes through a shared :class:`TypeAlgebra`.
    """
    algebra = TypeAlgebra(
        k, max_witness_size=len(structure.domain), structure_filter=structure_filter
    )
    return algebra.reduce(structure, bag, algebra.type_of(structure, bag))


def fold_partition(
    n: int,
    observations: Sequence,
    maps: Sequence[dict[int, int]] = (),
    pair_maps: Sequence[dict[tuple[int, int], int]] = (),
    pair_observations: Sequence[dict[tuple[int, int], object]] = (),
) -> list[int]:
    """The coarsest ⊥-insensitive wildcard congruence over ``0..n-1``.

    Myhill-Nerode minimization (:meth:`MSOToDatalogCompiler`'s
    ``_minimize_classes``) treats an *undefined* step entry -- a
    filter-rejected permutation/replacement result, a glue pair that no
    reachable witness realizes -- as an observable outcome of its own:
    two classes whose behaviours agree everywhere both are defined but
    differ in *where* they are defined stay split.  For programs
    compiled relative to a witness-faithful ``structure_filter`` those
    ⊥ entries can never fire on an in-class input, so the distinction
    is unobservable; this function folds it away.

    Partition refinement with wildcards, splits only:

    * start from the coarsest partition agreeing on ``observations``
      (one block per distinct value);
    * for each (possibly partial) unary map in ``maps``, members of a
      block whose *defined* images land in different blocks split
      apart; members with no image (⊥) are wildcards and stay with the
      largest defined bucket;
    * for each symmetric pair map (``pair_maps`` compare result items
      via their current block, ``pair_observations`` compare opaque
      values directly), a member that sees two different outcomes
      across one partner block forces that partner block apart
      (pivot split), and members of one block that disagree on their
      outcome against a common partner block split apart -- ⊥ entries
      are wildcards in both cases.

    Every applied split strictly refines the partition, so the loop
    terminates after at most ``n`` splits; on exit every defined entry
    of every map is single-valued at the block level.  Because the
    procedure only splits, feeding it the blocks of a *minimized* type
    table can never produce a partition finer than the input items --
    folding only merges.

    Returns the dense block assignment (ids by first occurrence).
    """
    ids: dict = {}
    group = []
    for obs in observations:
        found = ids.get(obs)
        if found is None:
            found = ids[obs] = len(ids)
        group.append(found)
    counter = len(ids)

    # member-level symmetric adjacency per pair structure; outcomes are
    # items (compared through their current group) or opaque values
    adjacencies: list[tuple[list[list[tuple[int, object]]], bool]] = []
    for tables, is_item in ((pair_maps, True), (pair_observations, False)):
        for table in tables:
            adj: list[list[tuple[int, object]]] = [[] for _ in range(n)]
            for (i, j), out in table.items():
                adj[i].append((j, out))
                if i != j:
                    adj[j].append((i, out))
            adjacencies.append((adj, is_item))

    def members_of() -> dict[int, list[int]]:
        blocks: dict[int, list[int]] = {}
        for i in range(n):
            blocks.setdefault(group[i], []).append(i)
        return blocks

    def apply_split(members: list[int], key_of) -> bool:
        """Bucket ``members`` by key (``None`` = wildcard).  With >= 2
        defined buckets, split: the largest defined bucket (first
        occurrence breaks ties) keeps the old group id along with the
        wildcards; every other bucket gets a fresh id."""
        nonlocal counter
        buckets: dict = {}
        for i in members:
            key = key_of(i)
            if key is not None:
                buckets.setdefault(key, []).append(i)
        if len(buckets) < 2:
            return False
        keep = max(buckets.values(), key=len)
        for bucket in buckets.values():
            if bucket is keep:
                continue
            fresh = counter
            counter += 1
            for i in bucket:
                group[i] = fresh
        return True

    def find_and_split() -> bool:
        blocks = members_of()
        multi = [b for b in blocks.values() if len(b) > 1]
        for table in maps:
            get = table.get
            for block in multi:
                def unary_key(i):
                    j = get(i)
                    return None if j is None else group[j]

                if apply_split(block, unary_key):
                    return True
        for adj, is_item in adjacencies:
            # pivot splits: one member, one partner block, two outcomes
            for i in range(n):
                per_partner: dict[int, dict[int, object]] = {}
                for j, out in adj[i]:
                    key = group[out] if is_item else out
                    per_partner.setdefault(group[j], {})[j] = key
                for partner, outcomes in per_partner.items():
                    if len(set(outcomes.values())) > 1:
                        if apply_split(
                            blocks[partner], outcomes.get
                        ):
                            return True
            # cross-member splits: members of one block disagree on a
            # partner block (each member's outcome is unambiguous here,
            # or the pivot scan above would have fired)
            for block in multi:
                rows: dict[int, dict[int, object]] = {}
                partners: set[int] = set()
                for i in block:
                    row: dict[int, object] = {}
                    for j, out in adj[i]:
                        row[group[j]] = group[out] if is_item else out
                    rows[i] = row
                    partners.update(row)
                for partner in partners:
                    def pair_key(i, partner=partner):
                        return rows[i].get(partner)

                    if apply_split(block, pair_key):
                        return True
        return False

    while find_and_split():
        pass

    dense: dict[int, int] = {}
    out = []
    for g in group:
        found = dense.get(g)
        if found is None:
            found = dense[g] = len(dense)
        out.append(found)
    return out
