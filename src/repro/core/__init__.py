"""Core contribution: Theorem 4.4 pipeline, Theorem 4.5 compiler, solver."""

from .mso_to_datalog import (
    ANSWER_PREDICATE,
    CompiledQuery,
    CompilerLimitError,
    CompilerStats,
    MSOToDatalogCompiler,
    grid_graph_filter,
    compile_sentence,
    compile_unary_query,
    undirected_graph_filter,
)
from .quasi_guarded import QuasiGuardedEvaluator, QuasiGuardedResult
from .solver import CourcelleSolver, default_worker_count
from .typealg import (
    TypeAlgebra,
    TypeEntry,
    TypeTable,
    fold_partition,
    reduce_witness,
)

__all__ = [
    "ANSWER_PREDICATE",
    "CompiledQuery",
    "CompilerLimitError",
    "CompilerStats",
    "CourcelleSolver",
    "MSOToDatalogCompiler",
    "QuasiGuardedEvaluator",
    "QuasiGuardedResult",
    "TypeAlgebra",
    "TypeEntry",
    "TypeTable",
    "compile_sentence",
    "default_worker_count",
    "fold_partition",
    "grid_graph_filter",
    "reduce_witness",
    "undirected_graph_filter",
    "compile_unary_query",
]
