"""Core contribution: Theorem 4.4 pipeline, Theorem 4.5 compiler, solver."""

from .mso_to_datalog import (
    ANSWER_PREDICATE,
    CompiledQuery,
    CompilerLimitError,
    MSOToDatalogCompiler,
    compile_sentence,
    compile_unary_query,
    undirected_graph_filter,
)
from .quasi_guarded import QuasiGuardedEvaluator, QuasiGuardedResult
from .solver import CourcelleSolver, default_worker_count

__all__ = [
    "ANSWER_PREDICATE",
    "CompiledQuery",
    "CompilerLimitError",
    "CourcelleSolver",
    "MSOToDatalogCompiler",
    "QuasiGuardedEvaluator",
    "QuasiGuardedResult",
    "compile_sentence",
    "default_worker_count",
    "undirected_graph_filter",
    "compile_unary_query",
]
