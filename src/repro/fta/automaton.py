"""Bottom-up finite tree automata over labeled binary trees.

The classic MSO-on-trees toolchain (Thatcher-Wright [29], Doner [6])
that Courcelle-style algorithms traditionally compile into, and whose
"state explosion" (Sections 1 and 6, citing [15, 26]) motivated the
paper's datalog alternative.  We implement the machinery honestly --
nondeterministic bottom-up automata, the subset (determinization)
construction, product automata, emptiness -- so that the explosion can
be *measured* rather than asserted (``benchmarks/bench_state_explosion.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Hashable, Iterable, Iterator, Mapping

State = Hashable
Label = Hashable


@dataclass(frozen=True)
class LabeledTree:
    """An ordered tree with at most binary branching and node labels."""

    label: Label
    children: tuple["LabeledTree", ...] = ()

    def __post_init__(self) -> None:
        if len(self.children) > 2:
            raise ValueError("labeled trees are at most binary")

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def labels(self) -> Iterator[Label]:
        yield self.label
        for child in self.children:
            yield from child.labels()


class TreeAutomaton:
    """A (possibly nondeterministic) bottom-up finite tree automaton.

    Transitions map ``(label, child_states)`` -- with 0, 1 or 2 child
    states -- to a set of successor states.  A run assigns states
    bottom-up; the tree is accepted iff some run reaches an accepting
    state at the root.
    """

    def __init__(
        self,
        states: Iterable[State],
        accepting: Iterable[State],
        transitions: Mapping[tuple, Iterable[State]],
    ):
        self.states = frozenset(states)
        self.accepting = frozenset(accepting)
        self.transitions: dict[tuple, frozenset[State]] = {
            key: frozenset(targets) for key, targets in transitions.items()
        }
        unknown = self.accepting - self.states
        if unknown:
            raise ValueError(f"accepting states not declared: {unknown}")
        for key, targets in self.transitions.items():
            if not targets <= self.states:
                raise ValueError(f"transition {key} targets unknown states")

    def state_count(self) -> int:
        return len(self.states)

    def transition_count(self) -> int:
        return sum(len(t) for t in self.transitions.values())

    # ------------------------------------------------------------------

    def run_states(self, tree: LabeledTree) -> frozenset[State]:
        """All states reachable at the root of ``tree``."""
        child_state_sets = [self.run_states(c) for c in tree.children]
        if not child_state_sets:
            return self.transitions.get((tree.label,), frozenset())
        reachable: set[State] = set()
        for combo in product(*child_state_sets):
            reachable |= self.transitions.get(
                (tree.label, *combo), frozenset()
            )
        return frozenset(reachable)

    def accepts(self, tree: LabeledTree) -> bool:
        return bool(self.run_states(tree) & self.accepting)

    # ------------------------------------------------------------------

    def determinize(self) -> "TreeAutomaton":
        """Subset construction; worst case 2^|Q| states.

        This is the step where the MSO-to-FTA route explodes -- each
        quantifier alternation of the source formula costs one
        determinization (complementation needs a deterministic
        automaton), squaring the exponent every time.
        """
        labels = {key[0] for key in self.transitions}
        # group transitions by (label, arity) for successor computation
        by_shape: dict[tuple[Label, int], list[tuple]] = {}
        for key in self.transitions:
            by_shape.setdefault((key[0], len(key) - 1), []).append(key)

        initial: dict[Label, frozenset[State]] = {}
        for label in labels:
            initial[label] = self.transitions.get((label,), frozenset())

        subset_states: set[frozenset[State]] = set(initial.values())
        transitions: dict[tuple, frozenset] = {
            (label,): frozenset([subset]) for label, subset in initial.items()
        }
        worklist = list(subset_states)
        while worklist:
            current = worklist.pop()
            # unary successors
            for (label, arity), keys in by_shape.items():
                if arity == 1:
                    successor: set[State] = set()
                    for key in keys:
                        if key[1] in current:
                            successor |= self.transitions[key]
                    target = frozenset(successor)
                    transitions[(label, current)] = frozenset([target])
                    if target not in subset_states:
                        subset_states.add(target)
                        worklist.append(target)
                elif arity == 2:
                    for other in list(subset_states):
                        for left, right in ((current, other), (other, current)):
                            successor = set()
                            for key in keys:
                                if key[1] in left and key[2] in right:
                                    successor |= self.transitions[key]
                            target = frozenset(successor)
                            transitions[(label, left, right)] = frozenset([target])
                            if target not in subset_states:
                                subset_states.add(target)
                                worklist.append(target)
        accepting = frozenset(
            subset for subset in subset_states if subset & self.accepting
        )
        return TreeAutomaton(subset_states, accepting, transitions)

    def reachable_states(self, trees: Iterable[LabeledTree]) -> frozenset[State]:
        out: set[State] = set()
        for tree in trees:
            out |= self.run_states(tree)
        return frozenset(out)

    def __repr__(self) -> str:
        return (
            f"TreeAutomaton(states={len(self.states)}, "
            f"transitions={self.transition_count()}, "
            f"accepting={len(self.accepting)})"
        )
