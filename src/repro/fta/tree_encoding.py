"""Encoding normalized tree decompositions as labeled binary trees.

The MSO-to-FTA route first turns the structure-plus-decomposition into a
colored binary tree (Section 1: "translate the MSO evaluation problem
over finite structures into an equivalent MSO evaluation problem over
colored binary trees").  The labels below carry exactly the information
the type transitions of Lemma 3.5 need:

* ``("leaf", pattern)`` -- which R(ā) atoms hold on the leaf bag, as
  position patterns;
* ``("perm", pi)`` -- a permutation node; ``parent_bag[i] ==
  child_bag[pi[i]]``;
* ``("repl", pattern)`` -- an element-replacement node, annotated with
  the atom pattern of the *parent* bag;
* ``("branch",)`` -- a branch node.
"""

from __future__ import annotations

from typing import Hashable

from ..structures.structure import Structure
from ..treewidth.decomposition import NodeId
from ..treewidth.normalize import (
    NormalizedNodeKind,
    NormalizedTreeDecomposition,
)
from .automaton import LabeledTree

Pattern = frozenset[tuple[str, tuple[int, ...]]]


def bag_pattern(
    structure: Structure, bag: tuple[Hashable, ...]
) -> Pattern:
    """The R(ā) atoms of the bag, abstracted to index patterns."""
    from itertools import product

    present = set()
    for name in structure.signature:
        arity = structure.signature.arity(name)
        for indices in product(range(len(bag)), repeat=arity):
            if structure.holds(name, *(bag[i] for i in indices)):
                present.add((name, indices))
    return frozenset(present)


def decomposition_to_tree(
    structure: Structure, ntd: NormalizedTreeDecomposition
) -> LabeledTree:
    """The labeled binary tree for a Definition 2.3 decomposition."""

    def encode(node: NodeId) -> LabeledTree:
        kind = ntd.node_kind(node)
        children = ntd.tree.children(node)
        bag = ntd.bag(node)
        if kind is NormalizedNodeKind.LEAF:
            return LabeledTree(("leaf", bag_pattern(structure, bag)))
        if kind is NormalizedNodeKind.BRANCH:
            return LabeledTree(
                ("branch",), tuple(encode(c) for c in children)
            )
        (child,) = children
        child_bag = ntd.bag(child)
        if kind is NormalizedNodeKind.PERMUTATION:
            position = {x: i for i, x in enumerate(child_bag)}
            pi = tuple(position[x] for x in bag)
            return LabeledTree(("perm", pi), (encode(child),))
        # element replacement: annotate with the parent-bag pattern
        return LabeledTree(
            ("repl", bag_pattern(structure, bag)), (encode(child),)
        )

    return encode(ntd.tree.root)
