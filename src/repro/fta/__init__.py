"""Finite tree automata: the MSO-to-FTA baseline route."""

from .automaton import LabeledTree, TreeAutomaton
from .mso_to_fta import (
    FTAConstructionBudgetExceeded,
    TypeAutomatonBuilder,
    build_type_automaton,
)
from .tree_encoding import bag_pattern, decomposition_to_tree

__all__ = [
    "FTAConstructionBudgetExceeded",
    "LabeledTree",
    "TreeAutomaton",
    "TypeAutomatonBuilder",
    "bag_pattern",
    "build_type_automaton",
    "decomposition_to_tree",
]
