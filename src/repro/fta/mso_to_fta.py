"""The MSO-to-FTA construction (the paper's baseline approach).

States are MSO k-types of root-pointed decomposition-shaped structures
-- the same type space as the Θ↑ table of Theorem 4.5 -- and the
transition function is the Lemma 3.5 type algebra, keyed by the labels
of :mod:`repro.fta.tree_encoding`.  Running the automaton over the
encoded decomposition tree decides the sentence.

This is the approach whose practical failure motivates the paper ("even
relatively simple MSO formulae may lead to a 'state explosion' of the
FTA", Section 1).  The explosion lives in the *construction*: the state
space and the label alphabet are exponential in the signature size and
the treewidth, and each quantifier alternation of a complementation-
based pipeline squares it.  ``benchmarks/bench_state_explosion.py``
measures exactly that, and the budgeted construction below fails fast --
our analogue of MONA's out-of-memory -- when the budget is exceeded.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core.mso_to_datalog import _atom_patterns, _facts_over
from ..mso.eval import evaluate
from ..mso.syntax import Formula
from ..mso.types import MSOType, mso_type
from ..structures.signature import Signature
from ..structures.structure import Element, Fact, Structure
from .automaton import LabeledTree, TreeAutomaton
from .tree_encoding import Pattern


class FTAConstructionBudgetExceeded(RuntimeError):
    """The automaton outgrew the configured budget (MONA analogue)."""


@dataclass(frozen=True)
class _Witness:
    structure: Structure
    bag: tuple[Element, ...]


class TypeAutomatonBuilder:
    """Build the deterministic type automaton for a sentence."""

    def __init__(
        self,
        formula: Formula,
        signature: Signature,
        width: int,
        quantifier_depth: int | None = None,
        max_states: int = 5000,
        max_witness_size: int = 16,
        structure_filter=None,
    ):
        self.formula = formula
        self.signature = signature
        self.width = width
        self.structure_filter = structure_filter
        self.k = (
            quantifier_depth
            if quantifier_depth is not None
            else formula.quantifier_depth()
        )
        self.max_states = max_states
        self.max_witness_size = max_witness_size
        self.patterns = _atom_patterns(signature, width + 1)
        self._fresh = itertools.count(width + 1)
        self._witness: dict[MSOType, _Witness] = {}
        self._transitions: dict[tuple, set[MSOType]] = {}

    # -- helpers ----------------------------------------------------------

    def _type_of(self, structure: Structure, bag: tuple) -> MSOType:
        if len(structure.domain) > self.max_witness_size:
            raise FTAConstructionBudgetExceeded(
                f"witness grew to {len(structure.domain)} elements"
            )
        return mso_type(structure, bag, self.k)

    def _register(self, structure: Structure, bag: tuple) -> tuple[MSOType, bool]:
        t = self._type_of(structure, bag)
        if t in self._witness:
            return t, False
        if len(self._witness) >= self.max_states:
            raise FTAConstructionBudgetExceeded(
                f"more than {self.max_states} automaton states"
            )
        self._witness[t] = _Witness(structure, bag)
        return t, True

    def _add_transition(self, key: tuple, target: MSOType) -> None:
        self._transitions.setdefault(key, set()).add(target)

    def _fresh_element(self, avoid: Structure) -> int:
        fresh = next(self._fresh)
        while fresh in avoid.domain:
            fresh = next(self._fresh)
        return fresh

    # -- construction -------------------------------------------------------

    def _all_patterns(self):
        from .._util import powerset

        return [frozenset(subset) for subset in powerset(self.patterns)]

    def build(self) -> TreeAutomaton:
        pending: list[MSOType] = []
        bag = tuple(range(self.width + 1))
        for pattern in self._all_patterns():
            facts = [
                Fact(name, tuple(bag[i] for i in indices))
                for name, indices in pattern
            ]
            structure = Structure(self.signature, bag).with_facts(facts)
            if self.structure_filter and not self.structure_filter(structure):
                continue
            t, new = self._register(structure, bag)
            self._add_transition((("leaf", frozenset(pattern)),), t)
            if new:
                pending.append(t)

        processed: list[MSOType] = []
        perms = list(itertools.permutations(range(self.width + 1)))
        all_patterns = self._all_patterns()
        while pending:
            current = pending.pop(0)
            processed.append(current)
            witness = self._witness[current]

            # permutation transitions
            for pi in perms:
                new_bag = tuple(witness.bag[pi[i]] for i in range(self.width + 1))
                t, new = self._register(witness.structure, new_bag)
                self._add_transition((("perm", pi), current), t)
                if new:
                    pending.append(t)

            # element-replacement transitions, keyed by the parent pattern
            fresh = self._fresh_element(witness.structure)
            new_bag = (fresh,) + witness.bag[1:]
            grown = witness.structure.with_elements([fresh])
            old_pattern = _facts_over(
                witness.structure, witness.bag, self.patterns
            )
            retained = frozenset(
                (name, indices)
                for name, indices in old_pattern
                if 0 not in indices
            )
            with_zero = [p for p in self.patterns if 0 in p[1]]
            from .._util import powerset

            for chosen in powerset(with_zero):
                pattern = retained | frozenset(chosen)
                facts = [
                    Fact(name, tuple(new_bag[i] for i in indices))
                    for name, indices in chosen
                ]
                structure = grown.with_facts(facts)
                if self.structure_filter and not self.structure_filter(structure):
                    continue
                t, new = self._register(structure, new_bag)
                self._add_transition((("repl", pattern), current), t)
                if new:
                    pending.append(t)

            # branch transitions with every processed state (both orders)
            for other in list(processed):
                for left, right in ((current, other), (other, current)):
                    glued = self._glue(left, right)
                    if glued is None:
                        continue
                    t, new = self._register(glued, self._witness[left].bag)
                    self._add_transition((("branch",), left, right), t)
                    if new:
                        pending.append(t)
                    if left is right:
                        break

        accepting = {
            t
            for t, witness in self._witness.items()
            if evaluate(witness.structure, self.formula)
        }
        return TreeAutomaton(
            states=self._witness.keys(),
            accepting=accepting,
            transitions={k: frozenset(v) for k, v in self._transitions.items()},
        )

    def _glue(self, left: MSOType, right: MSOType) -> Structure | None:
        lw, rw = self._witness[left], self._witness[right]
        mapping: dict = dict(zip(rw.bag, lw.bag))
        for element in sorted(rw.structure.domain, key=repr):
            if element not in mapping:
                mapping[element] = self._fresh_element(lw.structure)
        renamed = rw.structure.renamed(mapping)
        left_edb = _facts_over(lw.structure, lw.bag, self.patterns)
        right_edb = _facts_over(renamed, lw.bag, self.patterns)
        if left_edb != right_edb:
            return None
        return lw.structure.disjoint_union(renamed)


def build_type_automaton(
    formula: Formula,
    signature: Signature,
    width: int,
    quantifier_depth: int | None = None,
    max_states: int = 5000,
    max_witness_size: int = 16,
    structure_filter=None,
) -> TreeAutomaton:
    """The deterministic type automaton deciding ``formula`` on encoded
    width-``width`` decomposition trees."""
    return TypeAutomatonBuilder(
        formula,
        signature,
        width,
        quantifier_depth=quantifier_depth,
        max_states=max_states,
        max_witness_size=max_witness_size,
        structure_filter=structure_filter,
    ).build()
