"""Untrusted-input admission control: verify, repair, degrade, reject.

Theorem 4.4's linear-time guarantee presupposes that every structure
arrives well-formed *and* with a valid width-<=k tree decomposition --
a precondition production traffic violates constantly.  This module is
the layer every solve path routes through before the Theorem 4.4
pipeline sees the input.  The policy ladder:

1. **Verify.**  :func:`verify_structure` checks the structure against
   the compiled signature (unknown predicates, arity mismatches,
   domain closure -- and survives arbitrarily corrupt duck-typed
   objects); :func:`verify_decomposition` checks tree integrity
   (cycles, orphans, missing bags -- with its own cycle-safe traversal,
   since a corrupted ``RootedTree`` can make ``preorder()`` spin
   forever) and then the Section 2.2 axioms, collecting **all**
   violations as structured :class:`repro.errors.Violation` records.
2. **Repair.**  :func:`repair_decomposition` fixes repairable
   decompositions in place: drops alien bag elements, covers missed
   elements and tuples with fresh leaf bags, splices connectedness
   violations along Steiner paths, and widens under-width trees.  When
   in-place repair fails (or no decomposition was supplied),
   :func:`redecompose` rebuilds one from scratch via the
   :mod:`repro.treewidth.heuristics` orderings, escalating through
   strategies under a time budget.
3. **Degrade.**  When the width still exceeds the compiled envelope,
   policy ``"degrade"`` falls back to direct MSO evaluation
   (:mod:`repro.mso.eval`) under a :class:`repro.datalog.SolveBudget`
   (bridged by :class:`MeterBudget`); only then is the request rejected
   with a typed :class:`repro.errors.AdmissionRejected` carrying the
   full :class:`AdmissionReport`.

:func:`admit` implements the ladder; ``CourcelleSolver`` (the
``admission=`` policy) and ``SolverService`` route through it.  The
module also hosts the malformed-input corpus (de)serialization used by
``tests/data/`` and the admission benchmark.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from .datalog.budget import BudgetExceeded, BudgetMeter, SolveBudget, as_meter
from .errors import AdmissionRejected, Violation, summarize_violations
from .mso.eval import Budget as _EvalBudget
from .structures.signature import Signature
from .structures.structure import Fact, Structure, structure_fingerprint
from .treewidth.decomposition import RootedTree, TreeDecomposition
from .treewidth.heuristics import decompose_structure
from .treewidth.normalize import widen

__all__ = [
    "DEFAULT_ADMISSION_BUDGET",
    "POLICIES",
    "AdmissionReport",
    "AdmissionResult",
    "MeterBudget",
    "RawStructure",
    "admit",
    "coerce_structure",
    "decomposition_from_spec",
    "load_corpus",
    "load_corpus_case",
    "redecompose",
    "repair_decomposition",
    "structure_from_spec",
    "tree_violations",
    "verify_decomposition",
    "verify_structure",
]

#: the admission policies, in increasing order of leniency
POLICIES = ("strict", "repair", "degrade")

#: bounds the admission layer's own work (re-decomposition attempts,
#: degraded direct-MSO evaluation) when the caller supplies no budget;
#: generous, because it is the backstop against pathological inputs,
#: not a latency target -- services pass their own ``SolveBudget``
DEFAULT_ADMISSION_BUDGET = SolveBudget(max_seconds=30.0)


@dataclass
class AdmissionReport:
    """The machine-readable outcome of one trip through the ladder.

    ``verdict`` is ``"admitted"`` (input was clean), ``"repaired"``
    (violations found and fixed -- in place or by re-decomposition),
    ``"degraded"`` (served by direct MSO evaluation outside the
    compiled envelope) or ``"rejected"``.  ``violations`` is everything
    verification found, ``repairs`` what the repair pass did about it,
    ``residual`` what was still standing when the ladder stopped.
    """

    policy: str
    verdict: str = "admitted"
    fingerprint: str | None = None
    violations: tuple[Violation, ...] = ()
    repairs: tuple[str, ...] = ()
    residual: tuple[Violation, ...] = ()
    #: width of the decomposition actually used (None when degraded)
    width: int | None = None
    #: the compiled envelope the input was admitted against
    width_limit: int | None = None
    #: the supplied decomposition was discarded and rebuilt from scratch
    redecomposed: bool = False
    degrade_reason: str | None = None

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "verdict": self.verdict,
            "fingerprint": self.fingerprint,
            "violations": [v.to_dict() for v in self.violations],
            "repairs": list(self.repairs),
            "residual": [v.to_dict() for v in self.residual],
            "width": self.width,
            "width_limit": self.width_limit,
            "redecomposed": self.redecomposed,
            "degrade_reason": self.degrade_reason,
        }


@dataclass
class AdmissionResult:
    """What :func:`admit` hands back to the solver.

    ``action`` tells the solver how to serve the request: ``"solve"``
    runs the compiled Theorem 4.4 pipeline on ``td``; ``"direct"`` is
    the O(1) small-structure escape (|dom| < w + 1, evaluate directly);
    ``"degrade"`` is the budgeted direct-MSO fallback for structures
    outside the width envelope.  ``structure`` is the (possibly
    coerced) structure to serve; ``meter`` the armed budget spanning
    the rest of the request.
    """

    report: AdmissionReport
    structure: Structure
    td: TreeDecomposition | None
    action: str
    meter: BudgetMeter | None = None


class MeterBudget(_EvalBudget):
    """Bridges :mod:`repro.mso.eval`'s step budget onto a
    :class:`repro.datalog.BudgetMeter`, so the exponential degrade path
    honours the same ``SolveBudget`` (wall clock, memory) as the rest
    of the serving stack.  Checks the meter every ``stride`` formula
    steps -- cooperative, like every other budget checkpoint."""

    def __init__(self, meter: BudgetMeter, stride: int = 1024):
        super().__init__(limit=None)
        self._meter = meter
        self._stride = stride

    def tick(self) -> None:
        self.steps += 1
        if self.steps % self._stride == 0:
            self._meter.check()


# ----------------------------------------------------------------------
# Verify
# ----------------------------------------------------------------------


def verify_structure(structure, signature: Signature) -> list[Violation]:
    """All structure-vs-signature violations (no raise).

    For genuine :class:`Structure` instances whose signature matches
    the compiled one this is two comparisons -- the clean-traffic fast
    path; the constructor already enforced arity and domain closure.
    Signature mismatches decompose into per-predicate violations
    (``unknown-predicate`` and ``missing-predicate`` are repairable by
    :func:`coerce_structure`; ``arity-mismatch`` is fatal).  Arbitrary
    duck-typed objects get the full distrustful scan, and an object too
    corrupt to read yields a single fatal ``unreadable-structure``
    violation instead of an escaped exception.
    """
    if isinstance(structure, Structure) and structure.signature == signature:
        return []
    violations: list[Violation] = []
    trusted = isinstance(structure, Structure)
    try:
        own = structure.signature
        own_names = list(own)
        for name in own_names:
            if name not in signature:
                violations.append(
                    Violation(
                        "unknown-predicate",
                        f"unknown predicate {name!r}",
                        subject=(name,),
                        repairable=True,
                    )
                )
            elif signature.arity(name) != own.arity(name):
                violations.append(
                    Violation(
                        "arity-mismatch",
                        f"{name} expects arity {signature.arity(name)}, "
                        f"declared with arity {own.arity(name)}",
                        subject=(name,),
                    )
                )
        for name in signature:
            if name not in own:
                violations.append(
                    Violation(
                        "missing-predicate",
                        f"predicate {name!r} missing from the structure's "
                        "signature (treated as empty)",
                        subject=(name,),
                        repairable=True,
                    )
                )
        if not trusted:
            # a duck-typed structure's tuples earn no trust: re-check
            # arity and domain closure the way the constructor would
            domain = frozenset(structure.domain)
            for name in own_names:
                arity = own.arity(name)
                for tup in structure.relation(name):
                    tup = tuple(tup)
                    if len(tup) != arity:
                        violations.append(
                            Violation(
                                "arity-mismatch",
                                f"{name} expects arity {arity}, got {tup!r}",
                                subject=(name, tup),
                            )
                        )
                        continue
                    loose = [x for x in tup if x not in domain]
                    if loose:
                        violations.append(
                            Violation(
                                "domain-closure",
                                f"element {loose[0]!r} of {name}{tup!r} is "
                                "not in the domain",
                                subject=(name, tup),
                            )
                        )
    except Exception as exc:
        return [
            Violation(
                "unreadable-structure",
                "structure cannot be read: "
                f"{type(exc).__name__}: {exc}",
            )
        ]
    return violations


def coerce_structure(structure, signature: Signature, violations) -> Structure | None:
    """Rebuild ``structure`` as a genuine :class:`Structure` over the
    compiled ``signature``, dropping unknown predicates -- the repair
    for repairable structure violations.  Returns ``None`` when any
    violation is fatal or the rebuild itself fails."""
    if any(not v.repairable for v in violations):
        return None
    try:
        relations = {
            name: structure.relation(name)
            for name in signature
            if name in structure.signature
        }
        return Structure(signature, structure.domain, relations)
    except Exception:
        return None


def tree_violations(td) -> list[Violation]:
    """Integrity violations of the decomposition's rooted tree.

    Uses its own seen-set traversal (never ``preorder()``): a corrupted
    tree can contain cycles, and the admission layer must diagnose such
    a tree, not hang on it.  All integrity violations are
    non-repairable -- a corrupt tree is re-decomposed, not patched.
    """
    violations: list[Violation] = []
    tree = td.tree
    try:
        children = tree._children
        parent = tree._parent
        bags = td.bags
        root = tree.root
    except AttributeError as exc:
        return [
            Violation(
                "tree-corrupt",
                f"decomposition cannot be read: {exc}",
            )
        ]
    if root not in children or root not in parent:
        return [
            Violation(
                "tree-corrupt",
                f"root {root!r} is not a tree node",
                subject=(root,),
            )
        ]
    seen = {root}
    stack = [root]
    while stack:
        node = stack.pop()
        for child in children.get(node, ()):
            if child in seen:
                violations.append(
                    Violation(
                        "tree-corrupt",
                        f"edge {node!r} -> {child!r} creates a cycle",
                        subject=(node, child),
                    )
                )
                continue
            if child not in children or child not in parent:
                violations.append(
                    Violation(
                        "tree-corrupt",
                        f"child {child!r} of {node!r} is not a tree node",
                        subject=(node, child),
                    )
                )
                continue
            if parent.get(child) != node:
                violations.append(
                    Violation(
                        "tree-corrupt",
                        f"node {child!r} records parent "
                        f"{parent.get(child)!r} but is a child of {node!r}",
                        subject=(node, child),
                    )
                )
            seen.add(child)
            stack.append(child)
    unreachable = sorted(set(bags) - seen, key=repr)
    if unreachable:
        violations.append(
            Violation(
                "tree-corrupt",
                f"nodes {unreachable} are unreachable from the root",
                subject=tuple(unreachable),
            )
        )
    bagless = sorted(seen - set(bags), key=repr)
    if bagless:
        violations.append(
            Violation(
                "tree-corrupt",
                f"nodes {bagless} have no bag",
                subject=tuple(bagless),
            )
        )
    return violations


def verify_decomposition(
    td, structure: Structure, width_limit: int | None = None
) -> list[Violation]:
    """All decomposition violations: tree integrity, then the Section
    2.2 axioms, then the width envelope.  Axiom checks are skipped on a
    corrupt tree (they would be meaningless -- and unsafe)."""
    violations = tree_violations(td)
    if violations:
        return violations
    violations = td.structure_violations(structure)
    if width_limit is not None and td.width > width_limit:
        violations.append(_width_violation(td.width, width_limit))
    return violations


def _width_violation(width: int, limit: int) -> Violation:
    # "exceeds" is the historical message pin of the solver's refusal
    return Violation(
        "width-exceeded",
        f"decomposition width {width} exceeds the compiled width {limit}",
        subject=(width, limit),
    )


# ----------------------------------------------------------------------
# Repair
# ----------------------------------------------------------------------


def repair_decomposition(
    td, structure: Structure
) -> tuple[TreeDecomposition | None, tuple[str, ...]]:
    """Fix a repairable decomposition in place (on a copy).

    Four passes: (1) intersect every bag with the domain (alien
    elements), (2) attach a fresh leaf bag per uncovered tuple at the
    node of maximal overlap, (3) attach leaf bags for elements covered
    by no bag, (4) splice each disconnected element along the Steiner
    closure of its occurrence nodes (union of root-paths, pruned back
    to the occurrences).  Splicing only ever *adds* elements to bags,
    so passes never undo each other; the price is possible width growth,
    which the caller's envelope check arbitrates.

    Returns ``(repaired, repairs)`` with ``repaired`` clean under
    :meth:`TreeDecomposition.validate_for_structure`, or ``(None,
    repairs_attempted)`` when the result still fails re-verification.
    The tree must already be integrity-clean (:func:`tree_violations`).
    """
    tree = td.tree.copy()
    bags = {n: frozenset(b) for n, b in td.bags.items()}
    domain = structure.domain
    repairs: list[str] = []

    # (1) alien elements: bags may only mention domain elements
    dropped = 0
    for node, bag in bags.items():
        kept = bag & domain
        if kept != bag:
            dropped += len(bag - kept)
            bags[node] = kept
    if dropped:
        repairs.append(f"dropped-alien-elements:{dropped}")

    def best_anchor(needed: frozenset) -> int:
        return max(
            bags,
            key=lambda n: (len(bags[n] & needed), -n),
        )

    # (2) uncovered tuples: a fresh leaf bag holding the whole tuple,
    # attached where the overlap is largest (the splice pass below
    # reconnects any element this leaves with split occurrences)
    patched_tuples = 0
    for name in structure.signature:
        for tup in structure.relation(name):
            needed = frozenset(tup)
            if any(needed <= bag for bag in bags.values()):
                continue
            anchor = best_anchor(needed)
            leaf = tree.add_child(anchor)
            bags[leaf] = needed
            patched_tuples += 1
    if patched_tuples:
        repairs.append(f"covered-missing-tuples:{patched_tuples}")

    # (3) elements in no bag at all
    covered: set = set()
    for bag in bags.values():
        covered |= bag
    missing = sorted(domain - covered, key=repr)
    if missing:
        for element in missing:
            leaf = tree.add_child(tree.root)
            bags[leaf] = frozenset((element,))
        repairs.append(f"covered-missing-elements:{len(missing)}")

    # (4) connectedness: Steiner-splice each disconnected element
    working = TreeDecomposition(tree, bags)
    spliced = 0
    for element in sorted(working.connectedness_violations(), key=repr):
        occurrences = working.occurrences(element)
        closure: set[int] = set()
        for node in occurrences:
            path = []
            cursor: int | None = node
            while cursor is not None and cursor not in closure:
                path.append(cursor)
                cursor = tree.parent(cursor)
            closure.update(path)
        # prune: peel closure-leaves that are not occurrence nodes
        changed = True
        while changed:
            changed = False
            for node in list(closure):
                if node in occurrences:
                    continue
                degree = sum(
                    1 for c in tree.children(node) if c in closure
                )
                p = tree.parent(node)
                if p is not None and p in closure:
                    degree += 1
                if degree <= 1:
                    closure.discard(node)
                    changed = True
        for node in closure - occurrences:
            working.bags[node] = working.bags[node] | {element}
            spliced += 1
    if spliced:
        repairs.append(f"spliced-connectedness:{spliced}")

    if working.structure_violations(structure):
        return None, tuple(repairs)
    return working, tuple(repairs)


def redecompose(
    structure: Structure,
    width_limit: int,
    meter: BudgetMeter | None = None,
    methods: tuple[str, ...] = ("min_fill", "min_degree"),
) -> tuple[TreeDecomposition | None, str | None]:
    """Build a decomposition from scratch, escalating through ordering
    strategies until one fits the envelope or the budget runs out.

    ``min_fill`` first (it matches the legacy default, so clean
    td-less traffic decomposes identically with or without admission),
    ``min_degree`` as the escalation.  Returns the best decomposition
    found (lowest width -- possibly still over the envelope, which the
    degrade rung then arbitrates) and the strategy that produced it.
    """
    best: TreeDecomposition | None = None
    best_method: str | None = None
    try:
        for method in methods:
            if meter is not None:
                meter.check()
            try:
                candidate = decompose_structure(structure, method=method)
            except Exception:
                continue
            if best is None or candidate.width < best.width:
                best, best_method = candidate, method
            if best.width <= width_limit:
                break
    except BudgetExceeded:
        pass  # keep whatever the budget allowed us to build
    return best, best_method


# ----------------------------------------------------------------------
# The ladder
# ----------------------------------------------------------------------


def admit(
    structure,
    *,
    signature: Signature,
    width: int,
    td=None,
    policy: str = "repair",
    budget=None,
) -> AdmissionResult:
    """Run one request through the admission ladder.

    Verifies the structure against ``signature`` and the (optional)
    decomposition against the Section 2.2 axioms and the ``width``
    envelope; repairs or re-decomposes what the ``policy`` allows;
    returns an :class:`AdmissionResult` telling the solver how to
    serve the request (``solve`` / ``direct`` / ``degrade``).  Raises
    :class:`repro.errors.AdmissionRejected` -- carrying the full
    :class:`AdmissionReport` -- when the ladder runs out of rungs:
    immediately on any violation under ``"strict"``, after repair and
    re-decomposition fail under ``"repair"``, and only when even the
    degraded direct evaluation is unavailable under ``"degrade"``
    (the degrade *budget* rung lives in the solver, which owns the
    formula).

    ``budget`` (a ``SolveBudget`` or armed ``BudgetMeter``) spans the
    admission work itself -- re-decomposition attempts check it
    between strategies -- and rides the result for the degrade path;
    ``None`` arms :data:`DEFAULT_ADMISSION_BUDGET`.
    """
    if policy not in POLICIES:
        raise ValueError(
            f"unknown admission policy {policy!r}; expected one of {POLICIES}"
        )
    meter = (
        as_meter(budget)
        if budget is not None
        else DEFAULT_ADMISSION_BUDGET.start()
    )
    report = AdmissionReport(policy=policy, width_limit=width)

    # -- rung 1: the structure itself ----------------------------------
    violations = verify_structure(structure, signature)
    if violations:
        report.violations += tuple(violations)
        report.fingerprint = structure_fingerprint(structure)
        if policy == "strict" or any(not v.repairable for v in violations):
            _reject(report)
        coerced = coerce_structure(structure, signature, violations)
        if coerced is None:
            _reject(report)
        structure = coerced
        report.repairs += ("restricted-structure-to-signature",)

    # -- the O(1) small-structure escape (|dom| < w + 1) ---------------
    if len(structure.domain) < width + 1:
        report.verdict = "repaired" if report.repairs else "admitted"
        return AdmissionResult(report, structure, None, "direct", meter)

    # -- rung 2: the decomposition -------------------------------------
    if td is not None:
        violations = verify_decomposition(td, structure, width)
        if not violations:
            report.width = td.width
            report.verdict = "repaired" if report.repairs else "admitted"
            return AdmissionResult(report, structure, td, "solve", meter)
        report.violations += tuple(violations)
        if report.fingerprint is None:
            report.fingerprint = structure_fingerprint(structure)
        if policy == "strict":
            _reject(report)
        # a width overshoot alone does not block the in-place attempt:
        # dropping alien bag elements can bring the width back under
        # the envelope, and the repaired result is re-checked anyway
        blocking = [
            v
            for v in violations
            if not v.repairable and v.code != "width-exceeded"
        ]
        if not blocking and any(v.repairable for v in violations):
            repaired, attempted = repair_decomposition(td, structure)
            report.repairs += attempted
            if repaired is not None and repaired.width <= width:
                if repaired.width < width:
                    before = repaired.width
                    repaired = widen(repaired, width)
                    report.repairs += (f"widened:{before}->{width}",)
                report.width = repaired.width
                report.verdict = "repaired"
                return AdmissionResult(
                    report, structure, repaired, "solve", meter
                )

    # -- rung 3: re-decompose from scratch -----------------------------
    rebuilt, method = redecompose(structure, width, meter)
    if rebuilt is not None and rebuilt.width <= width:
        if td is not None:
            report.redecomposed = True
        if td is not None or report.repairs:
            report.repairs += (f"redecomposed:{method}",)
            report.verdict = "repaired"
        report.width = rebuilt.width
        return AdmissionResult(report, structure, rebuilt, "solve", meter)

    # -- rung 4: outside the envelope ----------------------------------
    achieved = rebuilt.width if rebuilt is not None else None
    residual = _width_violation(
        achieved if achieved is not None else (td.width if td is not None else -1),
        width,
    )
    if not any(v.code == "width-exceeded" for v in report.violations):
        report.violations += (residual,)
    report.residual += (residual,)
    if report.fingerprint is None:
        report.fingerprint = structure_fingerprint(structure)
    if policy == "degrade":
        report.verdict = "degraded"
        report.width = None
        report.degrade_reason = (
            f"best achievable width {achieved} exceeds the compiled "
            f"width {width}; serving by direct MSO evaluation under budget"
            if achieved is not None
            else "no decomposition could be built within the admission "
            f"budget; serving by direct MSO evaluation under budget"
        )
        return AdmissionResult(report, structure, None, "degrade", meter)
    _reject(report)


def _reject(report: AdmissionReport) -> None:
    report.verdict = "rejected"
    report.residual = report.residual or tuple(
        v for v in report.violations if not v.repairable
    ) or report.violations
    raise AdmissionRejected(
        f"admission rejected (policy {report.policy}, structure "
        f"{report.fingerprint}): {summarize_violations(report.violations)}",
        report.violations,
        report=report,
    )


# ----------------------------------------------------------------------
# Malformed-input corpus (de)serialization
# ----------------------------------------------------------------------


class RawStructure:
    """A duck-typed stand-in for structures too malformed for
    :class:`Structure`'s constructor (which rightly refuses arity and
    domain-closure breaks).  Exposes just enough surface --
    ``signature`` / ``domain`` / ``relation()`` / ``facts()`` -- for
    verification and fingerprinting, and pickles across the service's
    worker boundary so malformed corpus entries can be served end to
    end."""

    def __init__(self, signature: Signature, domain, relations):
        self.signature = signature
        self.domain = frozenset(domain)
        self._relations = {
            name: frozenset(tuple(t) for t in tuples)
            for name, tuples in (relations or {}).items()
        }

    def relation(self, name: str) -> frozenset:
        return self._relations.get(name, frozenset())

    def facts(self):
        for name in sorted(self._relations):
            for tup in sorted(self._relations[name], key=repr):
                yield Fact(name, tup)

    def __repr__(self) -> str:
        return (
            f"RawStructure(|dom|={len(self.domain)}, "
            f"relations={sorted(self._relations)})"
        )


def structure_from_spec(spec: dict):
    """Build a structure from its corpus JSON spec; falls back to
    :class:`RawStructure` when the spec is (deliberately) too malformed
    for the real constructor."""
    signature = Signature({name: int(a) for name, a in spec["signature"].items()})
    domain = list(spec.get("domain", ()))
    relations = {
        name: [tuple(t) for t in tuples]
        for name, tuples in spec.get("relations", {}).items()
    }
    try:
        return Structure(signature, domain, relations)
    except (ValueError, KeyError, TypeError):
        return RawStructure(signature, domain, relations)


def decomposition_from_spec(spec: dict | None):
    """Build a (possibly invalid) decomposition from its corpus spec.

    Deliberately bypasses the constructors: corpus entries encode
    corruptions -- cycles, orphan nodes, missing bags -- that
    ``RootedTree`` / ``TreeDecomposition`` would refuse (or loop on),
    and the whole point is to hand them to admission as-is.
    """
    if spec is None:
        return None
    nodes = {int(node): d for node, d in spec["nodes"].items()}
    tree = RootedTree.__new__(RootedTree)
    tree.root = int(spec["root"])
    tree._children = {
        node: [int(c) for c in d.get("children", ())]
        for node, d in nodes.items()
    }
    tree._parent = {}
    for node, d in nodes.items():
        for child in d.get("children", ()):
            tree._parent[int(child)] = node
    for node in nodes:
        tree._parent.setdefault(node, None)
    tree._next_id = max(nodes, default=0) + 1
    td = TreeDecomposition.__new__(TreeDecomposition)
    td.tree = tree
    td.bags = {
        node: frozenset(d["bag"]) for node, d in nodes.items() if "bag" in d
    }
    return td


def load_corpus_case(source) -> dict:
    """Load one corpus case (a path or an already-parsed dict) into
    ``{"name", "structure", "td", "expect", "defects"}``."""
    if isinstance(source, (str, os.PathLike)):
        with open(source) as handle:
            spec = json.load(handle)
    else:
        spec = source
    return {
        "name": spec.get("name", "unnamed"),
        "structure": structure_from_spec(spec["structure"]),
        "td": decomposition_from_spec(spec.get("decomposition")),
        "expect": spec.get("expect"),
        "defects": tuple(spec.get("defects", ())),
    }


def load_corpus(directory) -> list[dict]:
    """Load every ``*.json`` case under ``directory``, sorted by name."""
    cases = []
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(".json"):
            cases.append(load_corpus_case(os.path.join(directory, entry)))
    return cases
