"""Small shared helpers used across the package.

Nothing here is part of the public API; import from the subpackages
instead.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")


def powerset(items: Iterable[T]) -> Iterator[tuple[T, ...]]:
    """Yield every subset of ``items`` as a tuple, smallest first.

    >>> [set(s) for s in powerset([1, 2])]
    [set(), {1}, {2}, {1, 2}]
    """
    pool = list(items)
    return chain.from_iterable(combinations(pool, r) for r in range(len(pool) + 1))


def nonempty_subsets(items: Iterable[T]) -> Iterator[tuple[T, ...]]:
    """Yield every non-empty subset of ``items`` as a tuple."""
    pool = list(items)
    return chain.from_iterable(combinations(pool, r) for r in range(1, len(pool) + 1))


def all_distinct(items: Sequence[T]) -> bool:
    """True iff no two entries of ``items`` are equal."""
    return len(set(items)) == len(items)


def interleavings(prefix: Sequence[T], item: T) -> Iterator[tuple[T, ...]]:
    """Yield every tuple obtained by inserting ``item`` into ``prefix``.

    The relative order of ``prefix`` is preserved; ``item`` takes each of
    the ``len(prefix) + 1`` possible positions.
    """
    seq = tuple(prefix)
    for i in range(len(seq) + 1):
        yield seq[:i] + (item,) + seq[i:]


def fresh_names(base: str, taken: Iterable[str]) -> Iterator[str]:
    """Yield ``base0, base1, ...`` skipping names already in ``taken``."""
    used = set(taken)
    i = 0
    while True:
        candidate = f"{base}{i}"
        if candidate not in used:
            used.add(candidate)
            yield candidate
        i += 1
