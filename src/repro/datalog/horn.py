"""Linear-time least model of propositional Horn programs.

"Propositional datalog (i.e., all rules are ground) can be evaluated in
linear time" (Section 2.4, citing Dowling & Gallier [7] and Minoux's
LTUR [27]).  This is the back half of the Theorem 4.4 pipeline: after
guard-driven grounding, the remaining ground program is solved here.

The algorithm is the classic forward chaining with per-rule counters of
unsatisfied body atoms: each rule is touched once per body atom, so the
total work is linear in the program size.

Propositional atoms are *interned* into dense integer ids up front (the
same representation decision as :mod:`repro.datalog.interning` makes for
domain elements): the unit-resolution inner loop then walks flat lists
indexed by atom id -- no re-hashing of the (often large, e.g.
``Fact``-valued) atoms per propagation step, and the derived set is a
byte array until it is translated back at the end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

PropAtom = Hashable


@dataclass(frozen=True)
class GroundRule:
    """``head <- body`` over opaque propositional atoms."""

    head: PropAtom
    body: tuple[PropAtom, ...] = ()

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(map(str, self.body))}."


def horn_least_model(rules: Iterable[GroundRule]) -> set[PropAtom]:
    """The least model of a set of ground Horn rules.

    Dowling-Gallier / LTUR: O(total size of the rules).  Atoms are
    interned to dense ids once; propagation is pure integer work.
    """
    ids: dict[PropAtom, int] = {}
    atoms: list[PropAtom] = []
    waiting: list[list[int]] = []  # atom id -> rules waiting on it
    derived = bytearray()  # atom id -> 0/1

    def intern(atom: PropAtom) -> int:
        ident = ids.get(atom)
        if ident is None:
            ident = len(atoms)
            ids[atom] = ident
            atoms.append(atom)
            waiting.append([])
            derived.append(0)
        return ident

    heads: list[int] = []  # rule index -> head atom id
    counters: list[int] = []  # rule index -> unsatisfied body atoms
    queue: list[int] = []

    for index, rule in enumerate(rules):
        head_id = intern(rule.head)
        heads.append(head_id)
        body_ids = {intern(atom) for atom in rule.body}
        counters.append(len(body_ids))
        for body_id in body_ids:
            waiting[body_id].append(index)
        if not body_ids and not derived[head_id]:
            derived[head_id] = 1
            queue.append(head_id)

    while queue:
        atom_id = queue.pop()
        for index in waiting[atom_id]:
            counters[index] -= 1
            if counters[index] == 0:
                head_id = heads[index]
                if not derived[head_id]:
                    derived[head_id] = 1
                    queue.append(head_id)
    return {atom for atom, flag in zip(atoms, derived) if flag}


def horn_entails(rules: Iterable[GroundRule], goal: PropAtom) -> bool:
    return goal in horn_least_model(rules)


def horn_least_model_ids(
    rules: Iterable[tuple[int, tuple[int, ...]]], atom_count: int
) -> bytearray:
    """The least model of ground Horn rules over pre-interned atom ids.

    The native back half of the interned Theorem 4.4 pipeline: callers
    (:func:`repro.datalog.grounding.ground_program_ids`) already hold
    atoms as dense ids from a shared
    :class:`~repro.datalog.interning.InternPool`, so unlike
    :func:`horn_least_model` nothing is hashed here at all -- rules are
    ``(head_id, body_ids)`` pairs, propagation walks flat lists, and
    the result is the 0/1 flag array ``derived`` indexed by atom id
    (``atom_count`` = pool size; decoding back to facts is the
    caller's -- lazy -- concern).
    """
    waiting: list[list[int]] = [[] for _ in range(atom_count)]
    derived = bytearray(atom_count)
    heads: list[int] = []  # rule index -> head atom id
    counters: list[int] = []  # rule index -> unsatisfied body atoms
    queue: list[int] = []

    for index, (head_id, body) in enumerate(rules):
        heads.append(head_id)
        body_ids = set(body)
        counters.append(len(body_ids))
        for body_id in body_ids:
            waiting[body_id].append(index)
        if not body_ids and not derived[head_id]:
            derived[head_id] = 1
            queue.append(head_id)

    while queue:
        atom_id = queue.pop()
        for index in waiting[atom_id]:
            counters[index] -= 1
            if counters[index] == 0:
                head_id = heads[index]
                if not derived[head_id]:
                    derived[head_id] = 1
                    queue.append(head_id)
    return derived
