"""Linear-time least model of propositional Horn programs.

"Propositional datalog (i.e., all rules are ground) can be evaluated in
linear time" (Section 2.4, citing Dowling & Gallier [7] and Minoux's
LTUR [27]).  This is the back half of the Theorem 4.4 pipeline: after
guard-driven grounding, the remaining ground program is solved here.

The algorithm is the classic forward chaining with per-rule counters of
unsatisfied body atoms: each rule is touched once per body atom, so the
total work is linear in the program size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

PropAtom = Hashable


@dataclass(frozen=True)
class GroundRule:
    """``head <- body`` over opaque propositional atoms."""

    head: PropAtom
    body: tuple[PropAtom, ...] = ()

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(map(str, self.body))}."


def horn_least_model(rules: Iterable[GroundRule]) -> set[PropAtom]:
    """The least model of a set of ground Horn rules.

    Dowling-Gallier / LTUR: O(total size of the rules).
    """
    rules = list(rules)
    waiting: dict[PropAtom, list[int]] = {}
    counters: list[int] = []
    derived: set[PropAtom] = set()
    queue: list[PropAtom] = []

    for index, rule in enumerate(rules):
        missing = 0
        seen_in_body: set[PropAtom] = set()
        for atom in rule.body:
            if atom in seen_in_body:
                continue
            seen_in_body.add(atom)
            missing += 1
            waiting.setdefault(atom, []).append(index)
        counters.append(missing)
        if missing == 0 and rule.head not in derived:
            derived.add(rule.head)
            queue.append(rule.head)

    while queue:
        atom = queue.pop()
        for index in waiting.get(atom, ()):
            counters[index] -= 1
            if counters[index] == 0:
                head = rules[index].head
                if head not in derived:
                    derived.add(head)
                    queue.append(head)
    return derived


def horn_entails(rules: Iterable[GroundRule], goal: PropAtom) -> bool:
    return goal in horn_least_model(rules)
