"""Linear-time least model of propositional Horn programs.

"Propositional datalog (i.e., all rules are ground) can be evaluated in
linear time" (Section 2.4, citing Dowling & Gallier [7] and Minoux's
LTUR [27]).  This is the back half of the Theorem 4.4 pipeline: after
guard-driven grounding, the remaining ground program is solved here.

The algorithm is the classic forward chaining with per-rule counters of
unsatisfied body atoms: each rule is touched once per body atom, so the
total work is linear in the program size.

Propositional atoms are *interned* into dense integer ids up front (the
same representation decision as :mod:`repro.datalog.interning` makes for
domain elements): the unit-resolution inner loop then walks flat lists
indexed by atom id -- no re-hashing of the (often large, e.g.
``Fact``-valued) atoms per propagation step, and the derived set is a
byte array until it is translated back at the end.

Two consumers sit on top:

* :func:`horn_least_model_ids` -- the batch form: the whole ground rule
  list exists up front (the eager / materializing pipeline);
* :class:`StreamingHorn` -- the online form: rules arrive one at a time
  from a push-based grounder
  (:func:`repro.datalog.grounding.ground_program_streamed`), satisfied
  rules fire immediately and are never stored, so peak live-rule
  residency is O(waiting frontier) rather than O(ground program).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

PropAtom = Hashable


@dataclass(frozen=True)
class GroundRule:
    """``head <- body`` over opaque propositional atoms."""

    head: PropAtom
    body: tuple[PropAtom, ...] = ()

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(map(str, self.body))}."


def horn_least_model(rules: Iterable[GroundRule]) -> set[PropAtom]:
    """The least model of a set of ground Horn rules.

    Dowling-Gallier / LTUR: O(total size of the rules).  Atoms are
    interned to dense ids once; propagation is pure integer work.
    """
    ids: dict[PropAtom, int] = {}
    atoms: list[PropAtom] = []
    waiting: list[list[int]] = []  # atom id -> rules waiting on it
    derived = bytearray()  # atom id -> 0/1

    def intern(atom: PropAtom) -> int:
        ident = ids.get(atom)
        if ident is None:
            ident = len(atoms)
            ids[atom] = ident
            atoms.append(atom)
            waiting.append([])
            derived.append(0)
        return ident

    heads: list[int] = []  # rule index -> head atom id
    counters: list[int] = []  # rule index -> unsatisfied body atoms
    queue: list[int] = []

    for index, rule in enumerate(rules):
        head_id = intern(rule.head)
        heads.append(head_id)
        body_ids = {intern(atom) for atom in rule.body}
        counters.append(len(body_ids))
        for body_id in body_ids:
            waiting[body_id].append(index)
        if not body_ids and not derived[head_id]:
            derived[head_id] = 1
            queue.append(head_id)

    while queue:
        atom_id = queue.pop()
        for index in waiting[atom_id]:
            counters[index] -= 1
            if counters[index] == 0:
                head_id = heads[index]
                if not derived[head_id]:
                    derived[head_id] = 1
                    queue.append(head_id)
    return {atom for atom, flag in zip(atoms, derived) if flag}


def horn_entails(rules: Iterable[GroundRule], goal: PropAtom) -> bool:
    return goal in horn_least_model(rules)


def horn_least_model_ids(
    rules: Iterable[tuple[int, tuple[int, ...]]], atom_count: int
) -> bytearray:
    """The least model of ground Horn rules over pre-interned atom ids.

    The native back half of the interned Theorem 4.4 pipeline: callers
    (:func:`repro.datalog.grounding.ground_program_ids`) already hold
    atoms as dense ids from a shared
    :class:`~repro.datalog.interning.InternPool`, so unlike
    :func:`horn_least_model` nothing is hashed here at all -- rules are
    ``(head_id, body_ids)`` pairs, propagation walks flat lists, and
    the result is the 0/1 flag array ``derived`` indexed by atom id
    (``atom_count`` = pool size; decoding back to facts is the
    caller's -- lazy -- concern).
    """
    # Waiting lists used to be eagerly allocated for *every* pool atom
    # (``[[] for _ in range(atom_count)]``), which is pure waste when
    # only a fraction of the pool occurs in rule bodies (heads of rules
    # that never fire, demanded-but-underived atoms).  Micro-benchmark
    # on this machine: on the chain-120 solver ground program (61k
    # rules, 7.7k pool atoms, 98% of them body atoms) eager lists take
    # 24.4ms vs 29.4ms for a lazy dict -- dense direct indexing wins;
    # on a sparse synthetic pool (1M atoms, 10k rules) the eager form
    # takes 415ms (list allocation dominates) vs 5.7ms for the dict.
    # So: direct lists while the pool is small enough that allocating
    # it is cheap, lazy dict above that.
    dense = atom_count <= (1 << 16)
    derived = bytearray(atom_count)
    heads: list[int] = []  # rule index -> head atom id
    counters: list[int] = []  # rule index -> unsatisfied body atoms
    queue: list[int] = []

    if dense:
        waiting: list[list[int]] = [[] for _ in range(atom_count)]
        for index, (head_id, body) in enumerate(rules):
            heads.append(head_id)
            body_ids = set(body)
            counters.append(len(body_ids))
            for body_id in body_ids:
                waiting[body_id].append(index)
            if not body_ids and not derived[head_id]:
                derived[head_id] = 1
                queue.append(head_id)
        fetch = waiting.__getitem__
    else:
        lazy: dict[int, list[int]] = {}
        setdefault = lazy.setdefault
        for index, (head_id, body) in enumerate(rules):
            heads.append(head_id)
            body_ids = set(body)
            counters.append(len(body_ids))
            for body_id in body_ids:
                setdefault(body_id, []).append(index)
            if not body_ids and not derived[head_id]:
                derived[head_id] = 1
                queue.append(head_id)
        get = lazy.get

        def fetch(atom_id: int):
            found = get(atom_id)
            return found if found is not None else ()

    while queue:
        atom_id = queue.pop()
        for index in fetch(atom_id):
            counters[index] -= 1
            if counters[index] == 0:
                head_id = heads[index]
                if not derived[head_id]:
                    derived[head_id] = 1
                    queue.append(head_id)
    return derived


class StreamingHorn:
    """Online LTUR: the least model of a ground-rule *stream*.

    The push half of the streamed Theorem 4.4 pipeline
    (:func:`repro.datalog.grounding.ground_program_streamed` is the
    producer).  Rules arrive one at a time through :meth:`add_rule`:

    * a rule whose head is already derived is dropped on the spot
      (:attr:`rules_dropped`) -- its body ids are never even stored;
    * a rule whose body is already satisfied fires immediately and is
      never stored either;
    * only rules genuinely *waiting* on underived body atoms are kept,
      indexed by the atoms they wait on -- and evicted (counted into
      :attr:`rules_dropped`) as soon as their head derives through
      some other rule, since firing them could add nothing.
      :attr:`live_rules` / :attr:`peak_live_rules` track that
      residency -- the streamed pipeline's O(frontier) claim is
      measured here, against the eager pipeline's O(ground program)
      rule list.

    Newly derived atom ids accumulate in an internal buffer;
    :meth:`take_fresh` hands them to the producer, which instantiates
    the rules they newly support (the demand loop of the streamed
    grounder).

    ``meter`` (a :class:`repro.datalog.budget.BudgetMeter`, attached by
    the producer) makes the propagation loop budget-cooperative: the
    time/memory caps are checked every :data:`_METER_STRIDE` derived
    atoms, so a derivation cascade inside one grounding round cannot
    run away unchecked between the producer's per-round checkpoints.
    """

    #: counter sentinel for evicted rules: can never be decremented to 0
    _KILLED = 1 << 60

    #: budget checkpoint stride inside the propagation loop -- cheap
    #: enough to leave always-on, frequent enough that one round's
    #: derivation cascade stays bounded
    _METER_STRIDE = 2048

    __slots__ = (
        "_derived",
        "_fresh",
        "_waiting",
        "_heads",
        "_counters",
        "_parked_by_head",
        "derived_count",
        "rules_seen",
        "rules_dropped",
        "live_rules",
        "peak_live_rules",
        "meter",
    )

    def __init__(self, atom_capacity: int = 0):
        self._derived = bytearray(atom_capacity)
        self._fresh: list[int] = []
        self._waiting: dict[int, list[int]] = {}
        self._heads: list[int] = []
        self._counters: list[int] = []
        self._parked_by_head: dict[int, list[int]] = {}
        self.derived_count = 0
        self.rules_seen = 0
        self.rules_dropped = 0
        self.live_rules = 0
        self.peak_live_rules = 0
        #: optional BudgetMeter checked inside the propagation loop
        self.meter = None

    def is_derived(self, atom_id: int) -> bool:
        derived = self._derived
        return atom_id < len(derived) and bool(derived[atom_id])

    def _ensure(self, atom_id: int) -> None:
        derived = self._derived
        if atom_id >= len(derived):
            # amortized doubling so a growing pool costs O(n) total
            derived.extend(bytes(max(atom_id + 1 - len(derived), len(derived), 16)))

    def add_rule(self, head_id: int, body_ids: tuple[int, ...] = ()) -> None:
        """Feed one ground rule ``head <- body`` into the model."""
        self.rules_seen += 1
        self._ensure(max(body_ids) if body_ids else head_id)
        self._ensure(head_id)
        derived = self._derived
        if derived[head_id]:
            self.rules_dropped += 1
            return
        unsatisfied = {b for b in body_ids if not derived[b]}
        if not unsatisfied:
            self._derive(head_id)
            return
        index = len(self._heads)
        self._heads.append(head_id)
        self._counters.append(len(unsatisfied))
        setdefault = self._waiting.setdefault
        for body_id in unsatisfied:
            setdefault(body_id, []).append(index)
        self._parked_by_head.setdefault(head_id, []).append(index)
        self.live_rules += 1
        if self.live_rules > self.peak_live_rules:
            self.peak_live_rules = self.live_rules

    def _derive(self, atom_id: int) -> None:
        derived = self._derived
        fresh = self._fresh
        waiting = self._waiting
        counters = self._counters
        heads = self._heads
        killed = self._KILLED
        meter = self.meter
        stride = self._METER_STRIDE
        stack = [atom_id]
        while stack:
            current = stack.pop()
            if derived[current]:
                continue
            derived[current] = 1
            self.derived_count += 1
            if meter is not None and not self.derived_count % stride:
                meter.check()
            fresh.append(current)
            # parked rules with this head can no longer contribute:
            # evict them from the live frontier (their waiting-list
            # entries become inert via the sentinel counter)
            parked = self._parked_by_head.pop(current, None)
            if parked:
                for index in parked:
                    if counters[index] > 0:
                        counters[index] = killed
                        self.live_rules -= 1
                        self.rules_dropped += 1
            rules = waiting.pop(current, None)
            if rules is None:
                continue
            for index in rules:
                counters[index] -= 1
                if counters[index] == 0:
                    self.live_rules -= 1
                    head_id = heads[index]
                    if not derived[head_id]:
                        stack.append(head_id)

    def take_fresh(self) -> list[int]:
        """Atom ids derived since the last call (derivation order).

        Always the caller's to keep: the internal buffer is never
        aliased, so later derivations cannot retroactively appear in a
        previously returned list."""
        fresh = self._fresh
        if not fresh:
            return []
        self._fresh = []
        return fresh

    def flags(self, atom_count: int) -> bytearray:
        """The 0/1 derived array over ``atom_count`` atom ids -- the
        same shape :func:`horn_least_model_ids` returns.  Always a
        snapshot copy: feeding more rules into the sink afterwards
        never mutates a previously returned array."""
        derived = self._derived
        if len(derived) >= atom_count:
            return derived[:atom_count]
        return derived + bytearray(atom_count - len(derived))
