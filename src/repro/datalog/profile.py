"""Feedback-directed planning: run profiles, the cost model, and
minimal index selection.

Three pieces, composing into the profile -> replan -> re-index loop
(the Souffle playbook: automatic index selection per VLDB 2018, offline
profile-then-recompile per LOPSTR 2022):

* :class:`PlanProfile` -- observed cardinalities from one or more
  evaluation runs: per-relation sizes, per-access-pattern probe fanout,
  and per-plan-step input/output row counts.  Picklable, mergeable,
  and fingerprintable so profiled plans can be cached per program.
* :class:`CostModel` -- turns a profile into the selectivity estimate
  `plan_rule` / `_order_body` use as a tie-break on equal bound-slot
  scores: exact recorded fanout when the access pattern was observed,
  otherwise a size-based independence estimate, otherwise unknown.
* :func:`min_index_selection` -- the MinIndexSelection pass: the
  search signatures (bound-position sets) of a prepared program's
  probe steps are covered by a minimum number of index structures by
  solving MinChainCover over the subset partial order (Dilworth via
  bipartite maximum matching).  Every chain of nested signatures
  s1 < s2 < ... becomes ONE shared lexicographic index whose column
  order lists s1 first, then s2-s1, ... -- each signature probes the
  index on a key prefix.  Singleton chains keep the plain hash index.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping

__all__ = [
    "CostModel",
    "IndexSelection",
    "LexSpec",
    "PlanProfile",
    "min_index_selection",
]


class PlanProfile:
    """Cardinality feedback from evaluation runs.

    ``relation_sizes`` keeps the *maximum* observed size per predicate
    (derived relations only grow during a fixpoint, so max == final).
    ``probe_counts`` maps ``(predicate, sorted bound positions)`` to
    ``[probes, matches]`` so fanout = matches / probes is exact for
    access patterns the profiled run actually executed.  ``step_rows``
    maps ``(rule_index, step_index)`` to ``[rows_in, rows_out]``.
    """

    __slots__ = ("relation_sizes", "probe_counts", "step_rows", "rounds")

    def __init__(self) -> None:
        self.relation_sizes: dict[str, int] = {}
        self.probe_counts: dict[tuple[str, tuple[int, ...]], list[int]] = {}
        self.step_rows: dict[tuple[int, int], list[int]] = {}
        #: max observed semi-naive delta rounds: the scan estimate of a
        #: delta-restricted atom is its size divided by this
        self.rounds: int = 0

    # -- recording -----------------------------------------------------

    def record_size(self, predicate: str, size: int) -> None:
        prior = self.relation_sizes.get(predicate, 0)
        if size > prior:
            self.relation_sizes[predicate] = size

    def record_sizes(self, db) -> None:
        """Record the current size of every relation in ``db`` (a
        `Database` or `SetDatabase` -- anything with ``predicates()``
        and ``relation()``)."""
        for predicate in db.predicates():
            self.record_size(predicate, len(db.relation(predicate)))

    def record_probe(
        self,
        predicate: str,
        positions: tuple[int, ...],
        probes: int,
        matches: int,
    ) -> None:
        if probes <= 0:
            return
        counts = self.probe_counts.get((predicate, positions))
        if counts is None:
            self.probe_counts[(predicate, positions)] = [probes, matches]
        else:
            counts[0] += probes
            counts[1] += matches

    def record_step(
        self, rule_index: int, step_index: int, rows_in: int, rows_out: int
    ) -> None:
        rows = self.step_rows.get((rule_index, step_index))
        if rows is None:
            self.step_rows[(rule_index, step_index)] = [rows_in, rows_out]
        else:
            rows[0] += rows_in
            rows[1] += rows_out

    def record_rounds(self, rounds: int) -> None:
        if rounds > self.rounds:
            self.rounds = rounds

    def merge(self, other: "PlanProfile") -> None:
        for predicate, size in other.relation_sizes.items():
            self.record_size(predicate, size)
        self.record_rounds(other.rounds)
        for key, (probes, matches) in other.probe_counts.items():
            self.record_probe(key[0], key[1], probes, matches)
        for (rule, step), (rin, rout) in other.step_rows.items():
            self.record_step(rule, step, rin, rout)

    # -- queries -------------------------------------------------------

    def size(self, predicate: str) -> int | None:
        return self.relation_sizes.get(predicate)

    def fanout(
        self, predicate: str, positions: tuple[int, ...]
    ) -> float | None:
        counts = self.probe_counts.get((predicate, positions))
        if counts is None or counts[0] <= 0:
            return None
        return counts[1] / counts[0]

    def fingerprint(self) -> str:
        """A stable digest of the profile *as the cost model sees it*.

        Sizes and fanouts are bucketed by power of two before hashing:
        the planner only reacts to relative magnitudes, so run-to-run
        jitter in exact counts must not fragment the program cache.
        """
        items: list = [self.rounds.bit_length()]
        for predicate in sorted(self.relation_sizes):
            items.append(
                (predicate, self.relation_sizes[predicate].bit_length())
            )
        for key in sorted(self.probe_counts):
            fan = self.fanout(key[0], key[1])
            bucket = -1 if fan is None else int(max(fan, 0.0) * 4).bit_length()
            items.append((key, bucket))
        digest = hashlib.sha256(repr(items).encode("utf-8"))
        return digest.hexdigest()[:16]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlanProfile(sizes={len(self.relation_sizes)}, "
            f"probes={len(self.probe_counts)}, "
            f"steps={len(self.step_rows)})"
        )


class CostModel:
    """Selectivity estimates backed by a :class:`PlanProfile`.

    ``estimate(predicate, arity, bound_positions)`` returns the
    expected number of rows a probe of ``predicate`` with the given
    bound positions produces, or ``None`` when the profile has no
    signal for that predicate:

    1. exact observed fanout for that access pattern, if recorded;
    2. otherwise ``size ** (1 - bound/arity)`` -- the classic
       attribute-independence estimate from the recorded size;
    3. otherwise ``None`` (caller falls back to static tie-breaks).

    ``delta=True`` marks an atom the semi-naive rounds delta-restrict:
    its *scan* estimate is the relation size divided by the observed
    round count -- the per-round delta is what a recursive step
    actually reads, and comparing its full final size against a guard
    relation would demote recursive atoms to the back of every plan.
    """

    __slots__ = ("profile",)

    def __init__(self, profile: PlanProfile) -> None:
        self.profile = profile

    def estimate(
        self,
        predicate: str,
        arity: int,
        bound_positions: Iterable[int],
        *,
        delta: bool = False,
    ) -> float | None:
        positions = tuple(sorted(bound_positions))
        fan = self.profile.fanout(predicate, positions)
        if fan is not None:
            return fan
        size = self.profile.size(predicate)
        if size is None:
            return None
        if not positions:
            if delta:
                return max(1.0, size / max(1, self.profile.rounds))
            return float(size)
        if arity <= 0 or len(positions) >= arity:
            return 1.0
        return float(size) ** (1.0 - len(positions) / arity)


class LexSpec:
    """One shared lexicographic index: a full column order plus the
    key-prefix lengths at which the covered signatures probe it."""

    __slots__ = ("predicate", "order", "prefixes")

    def __init__(
        self,
        predicate: str,
        order: tuple[int, ...],
        prefixes: tuple[int, ...],
    ) -> None:
        self.predicate = predicate
        self.order = order
        self.prefixes = prefixes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LexSpec({self.predicate}, order={self.order})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, LexSpec)
            and self.predicate == other.predicate
            and self.order == other.order
            and self.prefixes == other.prefixes
        )


class IndexSelection:
    """The result of :func:`min_index_selection`.

    ``probe_spec(predicate, positions)`` resolves a search signature
    (sorted bound positions) to ``(full lex order, prefix length)``
    when a shared lexicographic index covers it, or ``None`` when the
    signature keeps its per-pattern hash index (singleton chains).
    """

    __slots__ = ("lex_specs", "_probes", "_known", "n_signatures", "n_indexes")

    def __init__(
        self,
        lex_specs: tuple[LexSpec, ...],
        probes: dict[tuple[str, tuple[int, ...]], tuple[tuple[int, ...], int]],
        known: frozenset,
        n_signatures: int,
        n_indexes: int,
    ) -> None:
        self.lex_specs = lex_specs
        self._probes = probes
        self._known = known
        self.n_signatures = n_signatures
        self.n_indexes = n_indexes

    def probe_spec(
        self, predicate: str, positions: tuple[int, ...]
    ) -> tuple[tuple[int, ...], int] | None:
        return self._probes.get((predicate, positions))

    def covers(self, predicate: str, positions: tuple[int, ...]) -> bool:
        """Every signature handed to min_index_selection is covered:
        either by a lex prefix or by its own hash index (recorded as a
        singleton chain).  Unknown signatures are NOT covered."""
        return (predicate, positions) in self._known

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IndexSelection({self.n_signatures} signatures -> "
            f"{self.n_indexes} indexes, {len(self.lex_specs)} lex)"
        )


def _max_matching(n: int, adjacency: list[list[int]]) -> dict[int, int]:
    """Kuhn's augmenting-path maximum bipartite matching.  Left and
    right vertex sets are both the signature list; an edge u -> v means
    signature u is a strict subset of signature v.  Returns
    ``match_to``: right vertex -> matched left vertex."""
    match_to: dict[int, int] = {}

    def try_augment(u: int, visited: set[int]) -> bool:
        for v in adjacency[u]:
            if v in visited:
                continue
            visited.add(v)
            w = match_to.get(v)
            if w is None or try_augment(w, visited):
                match_to[v] = u
                return True
        return False

    for u in range(n):
        try_augment(u, set())
    return match_to


def min_index_selection(
    signatures: Mapping[str, Iterable[tuple[int, ...]]],
) -> IndexSelection:
    """Solve MinIndexSelection over per-predicate search signatures.

    ``signatures`` maps predicate -> iterable of sorted bound-position
    tuples.  Per predicate, the minimum number of indexes covering all
    signatures equals the minimum number of chains covering the subset
    partial order (Mirsky/Dilworth), computed as
    ``n - |maximum matching|`` on the strict-subset DAG.  Chains of
    length >= 2 are realized as one shared lexicographic index
    (:class:`LexSpec`); singletons keep their hash index.
    """
    lex_specs: list[LexSpec] = []
    probes: dict[tuple[str, tuple[int, ...]], tuple[tuple[int, ...], int]] = {}
    known: set[tuple[str, tuple[int, ...]]] = set()
    n_signatures = 0
    n_indexes = 0

    for predicate in sorted(signatures):
        sigs = sorted(
            {tuple(sorted(sig)) for sig in signatures[predicate] if sig},
            key=lambda s: (len(s), s),
        )
        if not sigs:
            continue
        n_signatures += len(sigs)
        for sig in sigs:
            known.add((predicate, sig))
        sets = [frozenset(sig) for sig in sigs]
        n = len(sets)
        adjacency = [
            [v for v in range(n) if u != v and sets[u] < sets[v]]
            for u in range(n)
        ]
        match_to = _max_matching(n, adjacency)
        successor = {u: v for v, u in match_to.items()}
        heads = [u for u in range(n) if u not in match_to]
        n_indexes += len(heads)
        for head in heads:
            chain = [head]
            while chain[-1] in successor:
                chain.append(successor[chain[-1]])
            if len(chain) < 2:
                continue  # singleton: keep the hash index
            order: list[int] = []
            prefixes: list[int] = []
            covered: set[int] = set()
            for u in chain:
                order.extend(sorted(sets[u] - covered))
                covered |= sets[u]
                prefixes.append(len(order))
            spec = LexSpec(predicate, tuple(order), tuple(prefixes))
            lex_specs.append(spec)
            for u in chain:
                sig = sigs[u]
                probes[(predicate, sig)] = (spec.order, len(sig))

    return IndexSelection(
        tuple(lex_specs), probes, frozenset(known), n_signatures, n_indexes
    )
